// Dense float32 tensor — the numeric substrate under the OpenEI deep-learning
// package (src/nn), the compression suite (src/compress), and the EI
// algorithms (src/eialg).
//
// Value semantics with shared-nothing storage: copying copies the buffer.
// Layout is row-major; images use NCHW.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace openei::tensor {

/// Tensor-buffer accounting for one tracking scope (see
/// AllocationTrackingScope).  peak_live_bytes is the high-water mark of
/// live_bytes within the scope — the "peak tensor bytes" a traced span
/// attributes to a forward pass.
struct AllocationStats {
  std::uint64_t allocations = 0;     // tensor buffers brought to life
  std::uint64_t allocated_bytes = 0; // cumulative bytes across them
  std::int64_t live_bytes = 0;       // currently live (may dip negative when
                                     // tensors born before the scope die
                                     // inside it; peak still means peak)
  std::int64_t peak_live_bytes = 0;
};

class AllocationTrackingScope;

namespace detail {
/// Innermost active scope on this thread (nullptr = tracking off, the normal
/// case — every Tensor ctor/dtor pays exactly one thread-local load+branch).
extern thread_local AllocationTrackingScope* active_allocation_scope;
void on_tensor_alloc(std::size_t bytes);
void on_tensor_free(std::size_t bytes);
inline void track_alloc(std::size_t bytes) {
  if (active_allocation_scope != nullptr) on_tensor_alloc(bytes);
}
inline void track_free(std::size_t bytes) {
  if (active_allocation_scope != nullptr) on_tensor_free(bytes);
}
}  // namespace detail

/// RAII window during which this thread's tensor buffer traffic is counted.
/// Scopes nest; the innermost one observes (profiling a forward pass inside
/// an already-profiled request attributes bytes to the inner stage).
class AllocationTrackingScope {
 public:
  AllocationTrackingScope() : previous_(detail::active_allocation_scope) {
    detail::active_allocation_scope = this;
  }
  ~AllocationTrackingScope() { detail::active_allocation_scope = previous_; }
  AllocationTrackingScope(const AllocationTrackingScope&) = delete;
  AllocationTrackingScope& operator=(const AllocationTrackingScope&) = delete;

  const AllocationStats& stats() const { return stats_; }

 private:
  friend void detail::on_tensor_alloc(std::size_t);
  friend void detail::on_tensor_free(std::size_t);
  AllocationStats stats_;
  AllocationTrackingScope* previous_;
};

/// Dense row-major float32 tensor.  Storage is 64-byte aligned (one cache
/// line / one 512-bit vector), so the SIMD GEMM and int8 kernels can use
/// aligned vector loads on any tensor buffer.
class Tensor {
 public:
  /// Scalar zero tensor.
  Tensor() : shape_({1}), data_(1, 0.0F) { detail::track_alloc(size_bytes()); }

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.elements(), 0.0F) {
    detail::track_alloc(size_bytes());
  }

  /// Tensor with explicit contents (size must match the shape).  The values
  /// are copied into aligned storage.
  Tensor(Shape shape, const std::vector<float>& data)
      : shape_(std::move(shape)), data_(data.begin(), data.end()) {
    OPENEI_CHECK(data_.size() == shape_.elements(), "data size ", data_.size(),
                 " does not match shape ", shape_.to_string());
    detail::track_alloc(size_bytes());
  }

  Tensor(const Tensor& other) : shape_(other.shape_), data_(other.data_) {
    detail::track_alloc(size_bytes());
  }
  /// Moves transfer buffer ownership: no bytes are born or die.  The source
  /// is left empty so its destructor reports zero.
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)), data_(std::move(other.data_)) {
    other.data_.clear();
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      detail::track_free(size_bytes());
      shape_ = other.shape_;
      data_ = other.data_;
      detail::track_alloc(size_bytes());
    }
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      detail::track_free(size_bytes());
      shape_ = std::move(other.shape_);
      data_ = std::move(other.data_);
      other.data_.clear();
    }
    return *this;
  }
  ~Tensor() { detail::track_free(size_bytes()); }

  /// Filled tensor.
  static Tensor full(Shape shape, float value);
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0F); }

  /// Uniform random in [lo, hi).
  static Tensor random_uniform(Shape shape, common::Rng& rng, float lo = -1.0F,
                               float hi = 1.0F);
  /// Gaussian random.
  static Tensor random_normal(Shape shape, common::Rng& rng, float mean = 0.0F,
                              float stddev = 1.0F);

  const Shape& shape() const { return shape_; }
  std::size_t elements() const { return data_.size(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(float); }

  std::span<const float> data() const { return data_; }
  std::span<float> data() { return data_; }

  float operator[](std::size_t flat_index) const {
    OPENEI_CHECK(flat_index < data_.size(), "flat index ", flat_index,
                 " out of range ", data_.size());
    return data_[flat_index];
  }
  float& operator[](std::size_t flat_index) {
    OPENEI_CHECK(flat_index < data_.size(), "flat index ", flat_index,
                 " out of range ", data_.size());
    return data_[flat_index];
  }

  /// 2-D accessors (matrix view); require rank 2.
  float at2(std::size_t row, std::size_t col) const;
  float& at2(std::size_t row, std::size_t col);

  /// 4-D accessors (NCHW); require rank 4.
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  /// Returns a tensor with the same data and a new shape of equal element
  /// count.
  Tensor reshaped(Shape new_shape) const;

  /// In-place elementwise transform.
  Tensor& apply(const std::function<float(float)>& fn);

  /// Elementwise arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float scalar);
  Tensor& operator+=(float scalar);

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
  friend Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

  /// Reductions.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm.
  float norm() const;
  /// Index of the maximum element (first on ties).
  std::size_t argmax() const;

  /// Count of elements whose magnitude is <= `threshold` (sparsity probe used
  /// by the pruning reports).
  std::size_t count_near_zero(float threshold = 1e-12F) const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

  /// True when all elements differ by at most `tolerance`.
  bool all_close(const Tensor& other, float tolerance = 1e-5F) const;

  std::string to_string(std::size_t max_elements = 16) const;

 private:
  Shape shape_;
  common::aligned_vector<float> data_;
};

}  // namespace openei::tensor
