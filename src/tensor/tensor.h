// Dense float32 tensor — the numeric substrate under the OpenEI deep-learning
// package (src/nn), the compression suite (src/compress), and the EI
// algorithms (src/eialg).
//
// Value semantics with shared-nothing storage: copying copies the buffer.
// Layout is row-major; images use NCHW.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace openei::tensor {

/// Dense row-major float32 tensor.
class Tensor {
 public:
  /// Scalar zero tensor.
  Tensor() : shape_({1}), data_(1, 0.0F) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.elements(), 0.0F) {}

  /// Tensor with explicit contents (size must match the shape).
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    OPENEI_CHECK(data_.size() == shape_.elements(), "data size ", data_.size(),
                 " does not match shape ", shape_.to_string());
  }

  /// Filled tensor.
  static Tensor full(Shape shape, float value);
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0F); }

  /// Uniform random in [lo, hi).
  static Tensor random_uniform(Shape shape, common::Rng& rng, float lo = -1.0F,
                               float hi = 1.0F);
  /// Gaussian random.
  static Tensor random_normal(Shape shape, common::Rng& rng, float mean = 0.0F,
                              float stddev = 1.0F);

  const Shape& shape() const { return shape_; }
  std::size_t elements() const { return data_.size(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(float); }

  std::span<const float> data() const { return data_; }
  std::span<float> data() { return data_; }

  float operator[](std::size_t flat_index) const {
    OPENEI_CHECK(flat_index < data_.size(), "flat index ", flat_index,
                 " out of range ", data_.size());
    return data_[flat_index];
  }
  float& operator[](std::size_t flat_index) {
    OPENEI_CHECK(flat_index < data_.size(), "flat index ", flat_index,
                 " out of range ", data_.size());
    return data_[flat_index];
  }

  /// 2-D accessors (matrix view); require rank 2.
  float at2(std::size_t row, std::size_t col) const;
  float& at2(std::size_t row, std::size_t col);

  /// 4-D accessors (NCHW); require rank 4.
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  /// Returns a tensor with the same data and a new shape of equal element
  /// count.
  Tensor reshaped(Shape new_shape) const;

  /// In-place elementwise transform.
  Tensor& apply(const std::function<float(float)>& fn);

  /// Elementwise arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float scalar);
  Tensor& operator+=(float scalar);

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
  friend Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

  /// Reductions.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm.
  float norm() const;
  /// Index of the maximum element (first on ties).
  std::size_t argmax() const;

  /// Count of elements whose magnitude is <= `threshold` (sparsity probe used
  /// by the pruning reports).
  std::size_t count_near_zero(float threshold = 1e-12F) const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

  /// True when all elements differ by at most `tolerance`.
  bool all_close(const Tensor& other, float tolerance = 1e-5F) const;

  std::string to_string(std::size_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace openei::tensor
