#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "tensor/linalg.h"
#include "tensor/pack.h"

namespace openei::tensor {

Tensor matmul(const Tensor& a, const Tensor& b) {
  OPENEI_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
               "matmul requires rank-2 tensors");
  std::size_t m = a.shape().dim(0);
  std::size_t k = a.shape().dim(1);
  OPENEI_CHECK(b.shape().dim(0) == k, "matmul inner dims differ: ", k, " vs ",
               b.shape().dim(0));
  std::size_t n = b.shape().dim(1);

  Tensor out(Shape{m, n});
  gemm(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  return out;
}

Tensor transpose(const Tensor& a) {
  OPENEI_CHECK(a.shape().rank() == 2, "transpose requires rank-2 tensor");
  std::size_t rows = a.shape().dim(0);
  std::size_t cols = a.shape().dim(1);
  Tensor out(Shape{cols, rows});
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out.at2(c, r) = a.at2(r, c);
  }
  return out;
}

Tensor add_row_bias(const Tensor& a, const Tensor& bias) {
  OPENEI_CHECK(a.shape().rank() == 2, "add_row_bias requires rank-2 tensor");
  std::size_t cols = a.shape().dim(1);
  OPENEI_CHECK(bias.elements() == cols, "bias size ", bias.elements(),
               " != column count ", cols);
  Tensor out = a;
  auto out_data = out.data();
  auto bias_data = bias.data();
  std::size_t rows = a.shape().dim(0);
  common::parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t c = 0; c < cols; ++c) {
            out_data[r * cols + c] += bias_data[c];
          }
        }
      },
      /*grain=*/std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, cols)));
  return out;
}

std::size_t Conv2dSpec::out_size(std::size_t in) const {
  OPENEI_CHECK(stride > 0, "zero stride");
  std::size_t padded = in + 2 * padding;
  OPENEI_CHECK(padded >= kernel, "kernel ", kernel, " larger than padded input ",
               padded);
  return (padded - kernel) / stride + 1;
}

namespace {

void check_conv_inputs(const Tensor& input, const Tensor& weights, const Tensor& bias,
                       const Conv2dSpec& spec, bool depthwise) {
  OPENEI_CHECK(input.shape().rank() == 4, "conv input must be NCHW");
  OPENEI_CHECK(weights.shape().rank() == 4, "conv weights must be rank 4");
  OPENEI_CHECK(input.shape().dim(1) == spec.in_channels, "input channels ",
               input.shape().dim(1), " != spec ", spec.in_channels);
  if (depthwise) {
    OPENEI_CHECK(weights.shape().dim(0) == spec.in_channels &&
                     weights.shape().dim(1) == 1,
                 "depthwise weights must be [C,1,k,k]");
    OPENEI_CHECK(bias.elements() == spec.in_channels, "depthwise bias size mismatch");
  } else {
    OPENEI_CHECK(weights.shape().dim(0) == spec.out_channels &&
                     weights.shape().dim(1) == spec.in_channels,
                 "weights must be [out_c,in_c,k,k]");
    OPENEI_CHECK(bias.elements() == spec.out_channels, "bias size mismatch");
  }
  OPENEI_CHECK(weights.shape().dim(2) == spec.kernel &&
                   weights.shape().dim(3) == spec.kernel,
               "kernel size mismatch");
}

float input_at_or_zero(const Tensor& input, std::size_t n, std::size_t c, long h,
                       long w) {
  if (h < 0 || w < 0) return 0.0F;
  auto uh = static_cast<std::size_t>(h);
  auto uw = static_cast<std::size_t>(w);
  if (uh >= input.shape().dim(2) || uw >= input.shape().dim(3)) return 0.0F;
  return input.at4(n, c, uh, uw);
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
              const Conv2dSpec& spec) {
  check_conv_inputs(input, weights, bias, spec, /*depthwise=*/false);
  std::size_t n = input.shape().dim(0);
  std::size_t out_h = spec.out_size(input.shape().dim(2));
  std::size_t out_w = spec.out_size(input.shape().dim(3));

  Tensor out(Shape{n, spec.out_channels, out_h, out_w});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          double acc = bias[oc];
          for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
            for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
              for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                long ih = static_cast<long>(oh * spec.stride + kh) -
                          static_cast<long>(spec.padding);
                long iw = static_cast<long>(ow * spec.stride + kw) -
                          static_cast<long>(spec.padding);
                acc += static_cast<double>(input_at_or_zero(input, b, ic, ih, iw)) *
                       weights.at4(oc, ic, kh, kw);
              }
            }
          }
          out.at4(b, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void im2col_into(const float* input, std::size_t n, std::size_t in_h,
                 std::size_t in_w, const Conv2dSpec& spec, float* out) {
  std::size_t out_h = spec.out_size(in_h);
  std::size_t out_w = spec.out_size(in_w);
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  std::size_t image_elems = spec.in_channels * in_h * in_w;

  // Each (image, output row) pair fills a disjoint block of patch rows, so
  // the gather parallelizes over the fused n*out_h index without races.
  common::parallel_for(
      0, n * out_h,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t slab = lo; slab < hi; ++slab) {
          std::size_t b = slab / out_h;
          std::size_t oh = slab % out_h;
          const float* image = input + b * image_elems;
          float* row_out = out + slab * out_w * patch;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
              const float* plane = image + ic * in_h * in_w;
              for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
                long ih = static_cast<long>(oh * spec.stride + kh) -
                          static_cast<long>(spec.padding);
                for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                  long iw = static_cast<long>(ow * spec.stride + kw) -
                            static_cast<long>(spec.padding);
                  bool inside = ih >= 0 && iw >= 0 &&
                                static_cast<std::size_t>(ih) < in_h &&
                                static_cast<std::size_t>(iw) < in_w;
                  *row_out++ = inside
                                   ? plane[static_cast<std::size_t>(ih) * in_w +
                                           static_cast<std::size_t>(iw)]
                                   : 0.0F;
                }
              }
            }
          }
        }
      },
      /*grain=*/std::max<std::size_t>(
          1, 4096 / std::max<std::size_t>(1, out_w * patch)));
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  OPENEI_CHECK(input.shape().rank() == 4, "im2col input must be NCHW");
  std::size_t n = input.shape().dim(0);
  std::size_t in_h = input.shape().dim(2);
  std::size_t in_w = input.shape().dim(3);
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;

  Tensor out(Shape{n * spec.out_size(in_h) * spec.out_size(in_w), patch});
  im2col_into(input.data().data(), n, in_h, in_w, spec, out.data().data());
  return out;
}

Tensor conv2d_im2col(const Tensor& input, const Tensor& weights, const Tensor& bias,
                     const Conv2dSpec& spec) {
  check_conv_inputs(input, weights, bias, spec, /*depthwise=*/false);
  std::size_t n = input.shape().dim(0);
  std::size_t out_h = spec.out_size(input.shape().dim(2));
  std::size_t out_w = spec.out_size(input.shape().dim(3));
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;

  Tensor patches = im2col(input, spec);                           // [N*oh*ow, patch]
  Tensor w2 = weights.reshaped(Shape{spec.out_channels, patch});  // [oc, patch]
  // Pack W^T into kernel panels and run the dispatched microkernels with the
  // bias fused into the epilogue — the same path the forward arena prepacks,
  // so the two conv routes stay bitwise-identical.
  PackedMatrix wp = PackedMatrix::pack_transposed(w2);            // B: [patch, oc]
  Tensor result(Shape{patches.shape().dim(0), spec.out_channels});
  gemm_packed(patches.data().data(), patches.shape().dim(0), wp,
              bias.data().data(), /*fuse_relu=*/false, /*accumulate=*/false,
              result.data().data());

  // Scatter [N*oh*ow, oc] back to NCHW; images write disjoint slices.
  Tensor out(Shape{n, spec.out_channels, out_h, out_w});
  std::size_t rows_per_image = out_h * out_w;
  common::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          std::size_t row = b * rows_per_image;
          for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow, ++row) {
              for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
                out.at4(b, oc, oh, ow) = result.at2(row, oc);
              }
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor depthwise_conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
                        const Conv2dSpec& spec) {
  check_conv_inputs(input, weights, bias, spec, /*depthwise=*/true);
  std::size_t n = input.shape().dim(0);
  std::size_t channels = spec.in_channels;
  std::size_t out_h = spec.out_size(input.shape().dim(2));
  std::size_t out_w = spec.out_size(input.shape().dim(3));

  Tensor out(Shape{n, channels, out_h, out_w});
  // Each (image, channel) plane is independent: disjoint output, per-plane
  // accumulation order unchanged — bit-identical at any thread count.
  common::parallel_for(
      0, n * channels,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t plane = lo; plane < hi; ++plane) {
          std::size_t b = plane / channels;
          std::size_t c = plane % channels;
          for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
              double acc = bias[c];
              for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
                for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                  long ih = static_cast<long>(oh * spec.stride + kh) -
                            static_cast<long>(spec.padding);
                  long iw = static_cast<long>(ow * spec.stride + kw) -
                            static_cast<long>(spec.padding);
                  acc +=
                      static_cast<double>(input_at_or_zero(input, b, c, ih, iw)) *
                      weights.at4(c, 0, kh, kw);
                }
              }
              out.at4(b, c, oh, ow) = static_cast<float>(acc);
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

namespace {

template <typename Reduce>
Tensor pool2d(const Tensor& input, std::size_t window, float init, Reduce reduce,
              bool average) {
  OPENEI_CHECK(input.shape().rank() == 4, "pooling input must be NCHW");
  OPENEI_CHECK(window > 0, "zero pooling window");
  std::size_t n = input.shape().dim(0);
  std::size_t c = input.shape().dim(1);
  std::size_t h = input.shape().dim(2);
  std::size_t w = input.shape().dim(3);
  OPENEI_CHECK(h >= window && w >= window, "pooling window ", window,
               " larger than input ", h, "x", w);
  std::size_t out_h = h / window;
  std::size_t out_w = w / window;

  Tensor out(Shape{n, c, out_h, out_w});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          float acc = init;
          for (std::size_t kh = 0; kh < window; ++kh) {
            for (std::size_t kw = 0; kw < window; ++kw) {
              acc = reduce(acc, input.at4(b, ch, oh * window + kh, ow * window + kw));
            }
          }
          if (average) acc /= static_cast<float>(window * window);
          out.at4(b, ch, oh, ow) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace

Tensor maxpool2d(const Tensor& input, std::size_t window) {
  return pool2d(
      input, window, -std::numeric_limits<float>::infinity(),
      [](float a, float b) { return std::max(a, b); }, /*average=*/false);
}

Tensor avgpool2d(const Tensor& input, std::size_t window) {
  return pool2d(
      input, window, 0.0F, [](float a, float b) { return a + b; }, /*average=*/true);
}

Tensor global_avgpool(const Tensor& input) {
  OPENEI_CHECK(input.shape().rank() == 4, "global_avgpool input must be NCHW");
  std::size_t n = input.shape().dim(0);
  std::size_t c = input.shape().dim(1);
  std::size_t hw = input.shape().dim(2) * input.shape().dim(3);
  Tensor out(Shape{n, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      for (std::size_t h = 0; h < input.shape().dim(2); ++h) {
        for (std::size_t w = 0; w < input.shape().dim(3); ++w) {
          acc += input.at4(b, ch, h, w);
        }
      }
      out.at2(b, ch) = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  OPENEI_CHECK(logits.shape().rank() == 2, "softmax_rows requires rank-2 tensor");
  std::size_t rows = logits.shape().dim(0);
  std::size_t cols = logits.shape().dim(1);
  Tensor out = logits;
  // Rows normalize independently (disjoint writes, per-row accumulation
  // order unchanged), so batch-parallel execution is bit-identical.
  common::parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float max_v = -std::numeric_limits<float>::infinity();
          for (std::size_t c = 0; c < cols; ++c) {
            max_v = std::max(max_v, out.at2(r, c));
          }
          double denom = 0.0;
          for (std::size_t c = 0; c < cols; ++c) {
            float e = std::exp(out.at2(r, c) - max_v);
            out.at2(r, c) = e;
            denom += e;
          }
          for (std::size_t c = 0; c < cols; ++c) {
            out.at2(r, c) = static_cast<float>(out.at2(r, c) / denom);
          }
        }
      },
      /*grain=*/std::max<std::size_t>(1, 1024 / std::max<std::size_t>(1, cols)));
  return out;
}

Tensor one_hot(const std::vector<std::size_t>& labels, std::size_t classes) {
  OPENEI_CHECK(!labels.empty(), "one_hot of empty label list");
  Tensor out(Shape{labels.size(), classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    OPENEI_CHECK(labels[i] < classes, "label ", labels[i], " out of range ", classes);
    out.at2(i, labels[i]) = 1.0F;
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  OPENEI_CHECK(!parts.empty(), "concat_rows of empty list");
  std::size_t cols = parts.front().shape().dim(1);
  std::size_t rows = 0;
  for (const Tensor& t : parts) {
    OPENEI_CHECK(t.shape().rank() == 2 && t.shape().dim(1) == cols,
                 "concat_rows column mismatch");
    rows += t.shape().dim(0);
  }
  Tensor out(Shape{rows, cols});
  std::size_t row = 0;
  for (const Tensor& t : parts) {
    for (std::size_t r = 0; r < t.shape().dim(0); ++r, ++row) {
      for (std::size_t c = 0; c < cols; ++c) out.at2(row, c) = t.at2(r, c);
    }
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end) {
  OPENEI_CHECK(a.shape().rank() == 2, "slice_rows requires rank-2 tensor");
  OPENEI_CHECK(begin < end && end <= a.shape().dim(0), "bad row slice [", begin, ",",
               end, ") of ", a.shape().dim(0));
  std::size_t cols = a.shape().dim(1);
  Tensor out(Shape{end - begin, cols});
  for (std::size_t r = begin; r < end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out.at2(r - begin, c) = a.at2(r, c);
  }
  return out;
}

}  // namespace openei::tensor
