// Dense linear-algebra routines: the blocked/multi-threaded GEMM under
// tensor::matmul (and therefore every dense, conv-im2col, and training
// path), plus the compression-suite kernels — singular value decomposition
// (low-rank factorization, paper Table I) and 1-D k-means (weight sharing /
// vector quantization, Gong et al. [21]).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace openei::tensor {

/// C(m x n) += A(m x k) * B(k x n) over raw row-major buffers.  `c` must be
/// zero-initialized (or hold a partial sum to accumulate onto).  Packs B
/// into kernel-shaped panels and runs the runtime-dispatched SIMD
/// microkernels (tensor/pack.h); bit-identical across thread counts within
/// one ISA level, tolerance-equivalent to gemm_ref across levels.
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n);

/// Exact-math scalar reference GEMM: cache-blocked over k, register-blocked
/// two output rows at a time, parallelized over row panels.  Each C element
/// accumulates in ascending-k order with plain multiply-then-add (no FMA
/// contraction), so the result is bit-identical to the naive i-k-j loop at
/// any OPENEI_THREADS setting.  The equivalence suite bounds the dispatched
/// gemm against this.
void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n);

/// Thin SVD A = U diag(S) V^T of a rank-2 tensor A (m x n).
/// U: [m, r], S: r singular values (descending), V: [n, r], r = min(m, n).
struct SvdResult {
  Tensor u;
  std::vector<float> singular_values;
  Tensor v;
};

/// One-sided Jacobi SVD.  Deterministic; converges to `tolerance` of
/// off-diagonal mass or stops after `max_sweeps`.
SvdResult svd(const Tensor& a, int max_sweeps = 60, float tolerance = 1e-7F);

/// Reconstructs U[:, :rank] diag(S[:rank]) V[:, :rank]^T.
Tensor svd_reconstruct(const SvdResult& result, std::size_t rank);

/// Lloyd's k-means on scalars.  Returns centroids (size k, sorted ascending)
/// and per-value assignment indices.  Deterministic given `rng`.
struct Kmeans1dResult {
  std::vector<float> centroids;
  std::vector<std::size_t> assignment;
};

Kmeans1dResult kmeans_1d(const std::vector<float>& values, std::size_t k,
                         common::Rng& rng, int max_iterations = 50);

}  // namespace openei::tensor
