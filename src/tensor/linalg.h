// Dense linear-algebra routines needed by the compression suite:
// singular value decomposition (low-rank factorization, paper Table I) and
// 1-D k-means (weight sharing / vector quantization, Gong et al. [21]).
#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace openei::tensor {

/// Thin SVD A = U diag(S) V^T of a rank-2 tensor A (m x n).
/// U: [m, r], S: r singular values (descending), V: [n, r], r = min(m, n).
struct SvdResult {
  Tensor u;
  std::vector<float> singular_values;
  Tensor v;
};

/// One-sided Jacobi SVD.  Deterministic; converges to `tolerance` of
/// off-diagonal mass or stops after `max_sweeps`.
SvdResult svd(const Tensor& a, int max_sweeps = 60, float tolerance = 1e-7F);

/// Reconstructs U[:, :rank] diag(S[:rank]) V[:, :rank]^T.
Tensor svd_reconstruct(const SvdResult& result, std::size_t rank);

/// Lloyd's k-means on scalars.  Returns centroids (size k, sorted ascending)
/// and per-value assignment indices.  Deterministic given `rng`.
struct Kmeans1dResult {
  std::vector<float> centroids;
  std::vector<std::size_t> assignment;
};

Kmeans1dResult kmeans_1d(const std::vector<float>& values, std::size_t k,
                         common::Rng& rng, int max_iterations = 50);

}  // namespace openei::tensor
