// Tensor kernels used by the NN engine.
//
// Convolution is implemented both directly and via im2col+matmul; the two
// paths are property-tested for equivalence and the matmul path is what the
// FLOP-based hardware cost model (src/hwsim) assumes.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace openei::tensor {

/// C = A(mxk) * B(kxn).  Rank-2 inputs required.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Adds a rank-1 bias of size `cols` to every row of a rank-2 tensor.
Tensor add_row_bias(const Tensor& a, const Tensor& bias);

/// Convolution geometry (square kernels, symmetric stride/padding).
struct Conv2dSpec {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;

  /// Output spatial size for an input of `in` pixels; throws when the
  /// geometry does not fit.
  std::size_t out_size(std::size_t in) const;
};

/// Direct 2-D convolution.  input: NCHW, weights: [out_c, in_c, k, k],
/// bias: [out_c].  Returns NCHW.
Tensor conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
              const Conv2dSpec& spec);

/// im2col patch extraction: input NCHW -> [N*out_h*out_w, in_c*k*k].
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

/// Raw-buffer im2col into a caller-provided [n*out_h*out_w, in_c*k*k] buffer
/// (no allocation — the form the forward arena uses; `im2col` delegates
/// here, so the two produce identical values).
void im2col_into(const float* input, std::size_t n, std::size_t in_h,
                 std::size_t in_w, const Conv2dSpec& spec, float* out);

/// Convolution via im2col + matmul; numerically equivalent to conv2d().
Tensor conv2d_im2col(const Tensor& input, const Tensor& weights, const Tensor& bias,
                     const Conv2dSpec& spec);

/// Depthwise convolution: weights [channels, 1, k, k], one filter per input
/// channel (the MobileNet building block, paper Sec. IV-A2).
Tensor depthwise_conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
                        const Conv2dSpec& spec);

/// 2-D max pooling over NCHW with square window and stride == window.
Tensor maxpool2d(const Tensor& input, std::size_t window);

/// 2-D average pooling over NCHW with square window and stride == window.
Tensor avgpool2d(const Tensor& input, std::size_t window);

/// Global average pooling: NCHW -> [N, C].
Tensor global_avgpool(const Tensor& input);

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// One-hot encodes labels into a [n, classes] matrix.
Tensor one_hot(const std::vector<std::size_t>& labels, std::size_t classes);

/// Concatenates rank-2 tensors along rows (equal column counts).
Tensor concat_rows(const std::vector<Tensor>& parts);

/// Extracts rows [begin, end) of a rank-2 tensor.
Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end);

}  // namespace openei::tensor
