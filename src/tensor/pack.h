// fp32 packed GEMM: kernel-shaped weight panels plus runtime-dispatched
// register-tiled SIMD microkernels — the float twin of the int8 engine's
// qgemm (tensor/quantize.h).
//
// B is packed into 16-float-wide column panels (one 512-bit vector, two
// 256-bit vectors) in 64-byte-aligned storage; the microkernels stream one
// panel row per k step and keep an MRx16 (or MRx32) accumulator tile in
// registers.  Model weights are packed once at session build by the forward
// arena; tensor::gemm packs per call into reusable scratch.
//
// Accuracy contract: unlike the int8 engine (exact integer accumulation,
// bit-identical across ISA levels), the FMA kernels reassociate nothing but
// DO contract multiply+add, so results differ from the scalar reference by
// normal rounding.  Within one ISA level every C element accumulates in
// ascending-k order in a single chain and each output tile is computed by
// exactly one microkernel invocation, so results are bit-identical across
// thread counts at any fixed level.  tensor::gemm_ref (linalg.h) is the
// exact-math baseline the property suite bounds this against.
#pragma once

#include <cstddef>

#include "common/aligned.h"
#include "tensor/tensor.h"

namespace openei::tensor {

/// Packed panel width: 16 floats = one zmm = two ymm.
inline constexpr std::size_t kPanelWidth = 16;

/// A [k, n] float matrix repacked into kPanelWidth-wide column panels.
/// Panel j holds rows 0..k of columns [16j, 16j+16) contiguously (row p at
/// offset p*16), zero-padded past cols(); storage is 64-byte aligned and
/// every panel row starts on a 64-byte boundary, so kernels use aligned
/// vector loads unconditionally.
class PackedMatrix {
 public:
  PackedMatrix() = default;

  /// Packs a row-major [k, n] buffer / rank-2 tensor.
  static PackedMatrix pack(const float* b, std::size_t k, std::size_t n);
  static PackedMatrix pack(const Tensor& b);
  /// Packs the transpose of a row-major [n, k] tensor (conv weights are
  /// [out_channels, patch]; the GEMM wants [patch, out_channels]) without
  /// materializing the transposed matrix.
  static PackedMatrix pack_transposed(const Tensor& bt);

  /// Re-packs in place, reusing storage capacity — the grow-only per-call
  /// scratch path under tensor::gemm.
  void repack(const float* b, std::size_t k, std::size_t n);

  std::size_t rows() const { return k_; }  // inner (reduction) dimension
  std::size_t cols() const { return n_; }
  std::size_t panels() const { return (n_ + kPanelWidth - 1) / kPanelWidth; }
  const float* panel(std::size_t j) const {
    return data_.data() + j * k_ * kPanelWidth;
  }
  std::size_t storage_bytes() const { return data_.size() * sizeof(float); }

  /// Reconstructs the [rows, cols] row-major matrix.  Packing is a pure
  /// copy, so the round trip is exact.
  Tensor unpack() const;

 private:
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  common::aligned_vector<float> data_;
};

/// C(m x b.cols()) = A(m x b.rows()) * B through the dispatched microkernels.
/// accumulate=true adds into `c` (bias must be null, fuse_relu false — the
/// tensor::gemm contract); accumulate=false overwrites, optionally fusing a
/// per-column bias add and a ReLU clamp into the epilogue.  Bit-identical at
/// any thread count within one ISA level; a fused bias+ReLU epilogue emits
/// the same values as gemm-into-zeroed-C + add_row_bias + relu.
void gemm_packed(const float* a, std::size_t m, const PackedMatrix& b,
                 const float* bias, bool fuse_relu, bool accumulate, float* c);

/// fp32 dispatch level in effect: 0 = scalar, 1 = AVX2+FMA, 2 = AVX-512.
int fp32_isa_level();
/// Probed hardware level, ignoring any test cap.
int fp32_isa_level_detected();
const char* fp32_isa_name(int level);
inline const char* fp32_isa_name() { return fp32_isa_name(fp32_isa_level()); }

namespace detail {
/// Test hook: clamps the fp32 dispatch level so the equivalence and
/// thread-bit-identity suites can drive every kernel the host supports.
/// Returns the previous cap; pass a large value to uncap.
int set_fp32_isa_cap(int cap);
}  // namespace detail

}  // namespace openei::tensor
