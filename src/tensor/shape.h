// Tensor shape algebra.
//
// Shapes are small value types (<= 4 dims in practice: NCHW).  Row-major
// strides; element counts use std::size_t and are overflow-checked.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.h"

namespace openei::tensor {

/// Row-major tensor shape.  Rank 0 means scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) { validate(); }

  std::size_t rank() const { return dims_.size(); }

  std::size_t dim(std::size_t axis) const {
    OPENEI_CHECK(axis < dims_.size(), "axis ", axis, " out of range for rank ",
                 dims_.size());
    return dims_[axis];
  }

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// Total element count (1 for scalars).
  std::size_t elements() const {
    std::size_t count = 1;
    for (std::size_t d : dims_) count *= d;
    return count;
  }

  /// Row-major strides, in elements.
  std::vector<std::size_t> strides() const {
    std::vector<std::size_t> out(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) {
      out[i - 1] = out[i] * dims_[i];
    }
    return out;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    std::size_t count = 1;
    for (std::size_t d : dims_) {
      OPENEI_CHECK(d > 0, "zero-sized dimension in shape");
      OPENEI_CHECK(count <= SIZE_MAX / d, "shape element count overflow");
      count *= d;
    }
  }

  std::vector<std::size_t> dims_;
};

}  // namespace openei::tensor
