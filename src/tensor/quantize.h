// Affine int8 quantization.
//
// The paper (Sec. IV-B) credits TensorFlow Lite's latency wins partly to
// "quantized kernels"; QNNPACK is an int8 inference library.  This module
// provides the same primitive: symmetric/affine per-tensor quantization of
// float32 tensors to int8 plus a quantized matmul used by the post-training-
// quantization compressor (src/compress) and measured in the E1/E10 benches.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace openei::tensor {

/// Quantization parameters: real = scale * (q - zero_point).
struct QuantParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;

  /// Chooses parameters covering [min_v, max_v] over the int8 range.
  static QuantParams choose(float min_v, float max_v);
};

/// A tensor stored as int8 with affine parameters.
class QuantizedTensor {
 public:
  QuantizedTensor(Shape shape, std::vector<std::int8_t> data, QuantParams params);

  /// Quantizes a float tensor with parameters fit to its min/max range.
  static QuantizedTensor quantize(const Tensor& input);
  /// Quantizes with explicit parameters (e.g. calibration from a dataset).
  static QuantizedTensor quantize(const Tensor& input, QuantParams params);

  /// Reconstructs the float tensor (lossy).
  Tensor dequantize() const;

  const Shape& shape() const { return shape_; }
  const QuantParams& params() const { return params_; }
  const std::vector<std::int8_t>& data() const { return data_; }
  /// Storage size — 4x smaller than the float tensor it came from.
  std::size_t size_bytes() const { return data_.size(); }

 private:
  Shape shape_;
  std::vector<std::int8_t> data_;
  QuantParams params_;
};

/// Quantized matmul: accumulates in int32, returns dequantized float result.
/// Inputs must be rank 2 with compatible inner dimensions.
Tensor quantized_matmul(const QuantizedTensor& a, const QuantizedTensor& b);

/// Worst-case absolute reconstruction error for parameters `p` (half a step).
float quantization_step_error(const QuantParams& p);

}  // namespace openei::tensor
