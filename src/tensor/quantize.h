// Affine int8 quantization and the int8 execution kernels under the real
// quantized inference path.
//
// The paper (Sec. IV-B) credits TensorFlow Lite's latency wins partly to
// "quantized kernels"; QNNPACK is an int8 inference library.  This module
// provides the same primitives: symmetric/affine quantization of float32
// tensors to int8 (per-tensor, plus per-output-channel for weights), an int8
// GEMM with int32 accumulation and a fused requantize(+ReLU) epilogue, and
// int8 im2col so convolution executes genuinely quantized.  Integer
// accumulation is exact, so the GEMM is bit-identical at any OPENEI_THREADS
// setting by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace openei::tensor {

/// Quantization parameters: real = scale * (q - zero_point).
struct QuantParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;

  /// Chooses parameters covering [min_v, max_v] over the int8 range.  The
  /// range is widened to include zero (so padding/ReLU zeros quantize
  /// exactly), the zero point is always exactly representable in int8, and
  /// the scale is floored at the smallest normal float so degenerate ranges
  /// (constant tensors, denormal spans) never produce a zero or non-finite
  /// scale.
  static QuantParams choose(float min_v, float max_v);
};

/// Quantizes one value: round-to-nearest (half away from zero), saturating
/// to [-128, 127].  Written branch-free-convertible (add-half + truncate
/// instead of std::round, clamps before every float->int conversion) so the
/// bulk activation-quantization loops auto-vectorize; this form is the
/// single definition of the quantization rounding — every bulk path must
/// produce exactly these values.
inline std::int8_t quantize_one(float v, const QuantParams& p) {
  float t = v / p.scale;
  t = (t >= 0.0F) ? t + 0.5F : t - 0.5F;  // truncation rounds half away from 0
  t = std::clamp(t, -512.0F, 512.0F);     // keeps the int conversion defined
  std::int32_t q = static_cast<std::int32_t>(t) + p.zero_point;
  return static_cast<std::int8_t>(std::clamp(q, -128, 127));
}

/// Quantizes `n` floats into `dst` with shared parameters (activation
/// quantization; the raw-buffer form the forward arena uses).
void quantize_to_int8(const float* src, std::size_t n, const QuantParams& p,
                      std::int8_t* dst);

/// A tensor stored as int8 with affine parameters.
class QuantizedTensor {
 public:
  QuantizedTensor(Shape shape, std::vector<std::int8_t> data, QuantParams params);

  /// Quantizes a float tensor with parameters fit to its min/max range.
  static QuantizedTensor quantize(const Tensor& input);
  /// Quantizes with explicit parameters (e.g. calibration from a dataset).
  static QuantizedTensor quantize(const Tensor& input, QuantParams params);

  /// Reconstructs the float tensor (lossy).
  Tensor dequantize() const;

  const Shape& shape() const { return shape_; }
  const QuantParams& params() const { return params_; }
  const std::vector<std::int8_t>& data() const { return data_; }
  /// Storage size — 4x smaller than the float tensor it came from.
  std::size_t size_bytes() const { return data_.size(); }

 private:
  Shape shape_;
  std::vector<std::int8_t> data_;
  QuantParams params_;
};

/// Weight matrix packed for the int8 GEMM: row r holds output channel r's
/// weights contiguously ([rows, cols] row-major int8), quantized either
/// per-output-channel (symmetric: one scale per row, zero point 0 — the
/// scheme QNNPACK/TFLite use for weights) or per-tensor.  Per-row sums are
/// precomputed so the activation-zero-point correction costs O(rows) instead
/// of O(rows*cols) per GEMM call.
class PackedQuantMatrix {
 public:
  /// Packs weights stored [cols, rows] (the Dense layout [in, out]) by
  /// transposing so each output channel's weights become contiguous.
  static PackedQuantMatrix pack_transposed(const Tensor& weights,
                                           bool per_channel);
  /// Packs weights already stored [rows, cols] (the conv layout
  /// [out_channels, in_channels*k*k] after reshaping).
  static PackedQuantMatrix pack_rows(const Tensor& weights, bool per_channel);
  /// Adopts legacy per-tensor affine int8 weights stored [cols, rows]
  /// (pre-per-channel serialized models); the exact int8 values are kept.
  static PackedQuantMatrix from_per_tensor(const QuantizedTensor& weights);
  /// Reassembles a matrix from serialized parts (scales size must be 1 — a
  /// per-tensor scale broadcast to every row — or `rows`).
  PackedQuantMatrix(std::size_t rows, std::size_t cols,
                    std::vector<std::int8_t> data, std::vector<float> scales,
                    std::int32_t weight_zero_point, bool per_channel);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const std::vector<std::int8_t>& data() const { return data_; }
  /// Kernel view of the rows: identical int8 values, each row zero-padded to
  /// a multiple of 16 columns so the GEMM reduction never has a ragged SIMD
  /// tail.  Zero-padded weights contribute exactly nothing to the affine sum
  /// (the correction terms all run over the real `cols()`), so kernels may
  /// blindly iterate `kernel_cols()` lanes.  Derived cache like `row_sums`;
  /// not serialized, not counted in `storage_bytes`.
  const std::int8_t* kernel_data() const {
    return kernel_cols_ == cols_ ? data_.data() : kernel_data_.data();
  }
  std::size_t kernel_cols() const { return kernel_cols_; }
  const std::vector<float>& scales() const { return scales_; }
  const std::vector<std::int32_t>& row_sums() const { return row_sums_; }
  std::int32_t weight_zero_point() const { return weight_zero_point_; }
  bool per_channel() const { return per_channel_; }

  /// int8 payload plus per-row scales (row sums are a derived cache).
  std::size_t storage_bytes() const {
    return data_.size() + scales_.size() * sizeof(float);
  }

  /// Reconstructs the float weights in [rows, cols] layout (lossy; used by
  /// error analysis and tests).
  Tensor dequantize() const;

 private:
  PackedQuantMatrix() = default;
  void finalize();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t kernel_cols_ = 0;          // cols rounded up to a multiple of 16
  std::vector<std::int8_t> data_;        // [rows, cols]
  std::vector<std::int8_t> kernel_data_; // [rows, kernel_cols], empty if equal
  std::vector<float> scales_;            // [rows]
  std::vector<std::int32_t> row_sums_;   // [rows], sum of row r's int8 values
  std::int32_t weight_zero_point_ = 0;   // 0 for symmetric per-channel packs
  bool per_channel_ = true;
};

/// int8 GEMM with int32 accumulation and fused requantize(+bias)(+ReLU)
/// epilogue, returning float:
///   out[i, r] = relu?( a.scale * w.scale[r] * (sum_p (a[i,p]-a_zp) *
///               (w[r,p]-w_zp)) + bias[r] )
/// `a` is [m, k] row-major int8 (quantized activations), `out` is
/// [m, w.rows()].  `bias` may be null.  Parallelized over row panels of A
/// (or over weight rows when m == 1) via the PR-2 substrate; integer
/// accumulation is exact, so results are bit-identical at any thread count.
void qgemm(const std::int8_t* a, std::size_t m, std::size_t k,
           const QuantParams& a_params, const PackedQuantMatrix& w,
           const float* bias, bool fuse_relu, float* out);

/// Same kernel, but the epilogue requantizes the (bias-added, optionally
/// ReLU-clamped) float value straight to int8 with `out_params` — the form
/// used when the next consumer is itself an int8 kernel.
void qgemm(const std::int8_t* a, std::size_t m, std::size_t k,
           const QuantParams& a_params, const PackedQuantMatrix& w,
           const float* bias, bool fuse_relu, const QuantParams& out_params,
           std::int8_t* out);

/// Transposed-activation GEMM: identical math and bit-identical results to
/// `qgemm`, but `at` holds A transposed — [k, m] row-major, i.e. activation
/// column p is contiguous over the m samples.  This is the layout
/// `im2col_q8t` produces (contiguous writes), and the batched kernel stages
/// its lane tiles from it with aligned 4x16 byte transposes.
void qgemm_t(const std::int8_t* at, std::size_t m, std::size_t k,
             const QuantParams& a_params, const PackedQuantMatrix& w,
             const float* bias, bool fuse_relu, float* out);

/// int8 im2col: gathers conv patches from an int8 NCHW buffer into
/// [n*out_h*out_w, in_c*k*k] row-major int8.  Padding positions gather
/// `pad_value` (the activation zero point — the exact int8 encoding of 0.0),
/// so quantized convolution pads identically to the float path.
void im2col_q8(const std::int8_t* input, std::size_t n, std::size_t in_h,
               std::size_t in_w, const Conv2dSpec& spec, std::int8_t pad_value,
               std::int8_t* out);

/// Transposed int8 im2col: same patch values as `im2col_q8` laid out
/// [in_c*k*k, n*out_h*out_w] (patch-position-major).  Every inner run over
/// output columns is a contiguous memcpy/memset instead of a strided byte
/// scatter, which is what makes the quantized conv path's patch gather
/// cheap; feed the result to `qgemm_t`.
void im2col_q8t(const std::int8_t* input, std::size_t n, std::size_t in_h,
                std::size_t in_w, const Conv2dSpec& spec,
                std::int8_t pad_value, std::int8_t* out);

/// Quantized matmul: accumulates in int32, returns dequantized float result.
/// Inputs must be rank 2 with compatible inner dimensions.  (Legacy
/// per-tensor kernel kept for the compression benches; the layer path uses
/// qgemm on packed weights.)
Tensor quantized_matmul(const QuantizedTensor& a, const QuantizedTensor& b);

/// Worst-case absolute reconstruction error for parameters `p` (half a step).
float quantization_step_error(const QuantParams& p);

/// int8 engine dispatch level in effect: 0 = scalar, 1 = AVX2,
/// 2 = AVX-512 (F+BW+VL), 3 = AVX-512 VNNI.  The fp32 twin is
/// tensor::fp32_isa_level (tensor/pack.h); both surface through /ei_status.
int int8_isa_level();
const char* int8_isa_name(int level);
inline const char* int8_isa_name() { return int8_isa_name(int8_isa_level()); }

}  // namespace openei::tensor
