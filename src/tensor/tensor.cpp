#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace openei::tensor {

namespace detail {

thread_local AllocationTrackingScope* active_allocation_scope = nullptr;

void on_tensor_alloc(std::size_t bytes) {
  AllocationStats& stats = active_allocation_scope->stats_;
  stats.allocations += 1;
  stats.allocated_bytes += bytes;
  stats.live_bytes += static_cast<std::int64_t>(bytes);
  if (stats.live_bytes > stats.peak_live_bytes) {
    stats.peak_live_bytes = stats.live_bytes;
  }
}

void on_tensor_free(std::size_t bytes) {
  active_allocation_scope->stats_.live_bytes -=
      static_cast<std::int64_t>(bytes);
}

}  // namespace detail

Tensor Tensor::full(Shape shape, float value) {
  Tensor out(std::move(shape));
  std::fill(out.data_.begin(), out.data_.end(), value);
  return out;
}

Tensor Tensor::random_uniform(Shape shape, common::Rng& rng, float lo, float hi) {
  Tensor out(std::move(shape));
  for (float& v : out.data_) v = rng.uniform_float(lo, hi);
  return out;
}

Tensor Tensor::random_normal(Shape shape, common::Rng& rng, float mean, float stddev) {
  Tensor out(std::move(shape));
  for (float& v : out.data_) v = rng.normal_float(mean, stddev);
  return out;
}

float Tensor::at2(std::size_t row, std::size_t col) const {
  OPENEI_CHECK(shape_.rank() == 2, "at2 on rank-", shape_.rank(), " tensor");
  OPENEI_CHECK(row < shape_.dim(0) && col < shape_.dim(1), "index (", row, ",", col,
               ") out of range for ", shape_.to_string());
  return data_[row * shape_.dim(1) + col];
}

float& Tensor::at2(std::size_t row, std::size_t col) {
  OPENEI_CHECK(shape_.rank() == 2, "at2 on rank-", shape_.rank(), " tensor");
  OPENEI_CHECK(row < shape_.dim(0) && col < shape_.dim(1), "index (", row, ",", col,
               ") out of range for ", shape_.to_string());
  return data_[row * shape_.dim(1) + col];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  OPENEI_CHECK(shape_.rank() == 4, "at4 on rank-", shape_.rank(), " tensor");
  const auto& d = shape_.dims();
  OPENEI_CHECK(n < d[0] && c < d[1] && h < d[2] && w < d[3], "NCHW index out of range");
  return data_[((n * d[1] + c) * d[2] + h) * d[3] + w];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  OPENEI_CHECK(shape_.rank() == 4, "at4 on rank-", shape_.rank(), " tensor");
  const auto& d = shape_.dims();
  OPENEI_CHECK(n < d[0] && c < d[1] && h < d[2] && w < d[3], "NCHW index out of range");
  return data_[((n * d[1] + c) * d[2] + h) * d[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  OPENEI_CHECK(new_shape.elements() == shape_.elements(), "reshape ",
               shape_.to_string(), " -> ", new_shape.to_string(),
               " changes element count");
  Tensor out(std::move(new_shape));
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  return out;
}

Tensor& Tensor::apply(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
  return *this;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  OPENEI_CHECK(shape_ == other.shape_, "shape mismatch ", shape_.to_string(), " vs ",
               other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  OPENEI_CHECK(shape_ == other.shape_, "shape mismatch ", shape_.to_string(), " vs ",
               other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  OPENEI_CHECK(shape_ == other.shape_, "shape mismatch ", shape_.to_string(), " vs ",
               other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::operator+=(float scalar) {
  for (float& v : data_) v += scalar;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const { return sum() / static_cast<float>(data_.size()); }

float Tensor::min() const { return *std::min_element(data_.begin(), data_.end()); }

float Tensor::max() const { return *std::max_element(data_.begin(), data_.end()); }

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::size_t Tensor::argmax() const {
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::size_t Tensor::count_near_zero(float threshold) const {
  std::size_t count = 0;
  for (float v : data_) {
    if (std::fabs(v) <= threshold) ++count;
  }
  return count;
}

bool Tensor::all_close(const Tensor& other, float tolerance) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Tensor::to_string(std::size_t max_elements) const {
  std::string out = "Tensor" + shape_.to_string() + " {";
  std::size_t shown = std::min(max_elements, data_.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(data_[i]);
  }
  if (shown < data_.size()) out += ", ...";
  return out + "}";
}

}  // namespace openei::tensor
