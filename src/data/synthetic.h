// Deterministic synthetic dataset generators.
//
// Each generator substitutes for a data source the paper assumes (DESIGN.md):
//   make_blobs      — tabular sensor features (smart-home power, health vitals)
//   make_images     — camera frames with per-class spatial patterns (VAPS,
//                     object detection proxies)
//   make_sequences  — HAR-style time-series (wearables, activity recognition)
// Every generator is fully determined by its Rng, so experiments reproduce
// exactly.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace openei::data {

/// Gaussian blobs: `classes` cluster centres in `features` dimensions with
/// per-class unit-ball centres scaled by `separation` and noise `stddev`.
Dataset make_blobs(std::size_t samples, std::size_t features, std::size_t classes,
                   common::Rng& rng, float separation = 3.0F, float stddev = 1.0F);

/// Synthetic images, NCHW: each class has a fixed random spatial template;
/// samples are template + Gaussian pixel noise.  Harder classes overlap more
/// as `noise` grows.
Dataset make_images(std::size_t samples, std::size_t channels, std::size_t size,
                    std::size_t classes, common::Rng& rng, float noise = 0.35F);

/// HAR-style sequences flattened to [N, steps * dims]: each class is a
/// sinusoid with class-specific frequency/phase per dimension plus noise.
Dataset make_sequences(std::size_t samples, std::size_t steps, std::size_t dims,
                       std::size_t classes, common::Rng& rng, float noise = 0.25F);

/// One timestamped frame emitted by a continuous FrameSource.
struct StreamFrame {
  std::uint64_t index = 0;        // 0-based emission index
  std::int64_t timestamp_ns = 0;  // capture time on the source clock
  std::size_t label = 0;          // ground-truth class of the current regime
  Tensor features;                // [sample...] (no batch dim)
};

/// A continuous, unbounded frame stream — the input side of the streaming
/// pipeline (src/stream).  Sources are fully determined by their seed:
/// same seed, same frames, same timestamps.  Frames carry nominal capture
/// timestamps (start_ns + index * period_ns + bounded jitter), so offered
/// load is part of the recipe, not of the host's wall clock.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  virtual StreamFrame next() = 0;
  virtual Shape sample_shape() const = 0;
  virtual std::size_t classes() const = 0;
};

/// Tabular sensor stream (smart-home power, health vitals): blob-like
/// readings around per-class centres.  The emitting class is a *regime*
/// held for `hold_frames` frames then re-drawn, modelling a sensor whose
/// ground truth changes slowly relative to its sample rate.
class SensorStreamSource : public FrameSource {
 public:
  struct Options {
    std::size_t features = 16;
    std::size_t classes = 4;
    float separation = 3.0F;
    float stddev = 1.0F;
    std::int64_t start_ns = 0;
    std::int64_t period_ns = 10'000'000;  // 100 Hz sensor
    /// Uniform timestamp jitter as a fraction of the period, in [0, 1).
    double jitter = 0.0;
    std::size_t hold_frames = 16;
  };

  SensorStreamSource(Options options, std::uint64_t seed);

  StreamFrame next() override;
  Shape sample_shape() const override { return Shape{options_.features}; }
  std::size_t classes() const override { return options_.classes; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  common::Rng rng_;
  std::vector<std::vector<float>> centres_;
  std::uint64_t index_ = 0;
  std::size_t regime_ = 0;
};

/// Video frame stream (VAPS, AR): NCHW frames around per-class spatial
/// templates, the scene (class) held for `scene_frames` then re-drawn.
class VideoStreamSource : public FrameSource {
 public:
  struct Options {
    std::size_t channels = 1;
    std::size_t size = 8;
    std::size_t classes = 4;
    float noise = 0.35F;
    std::int64_t start_ns = 0;
    std::int64_t period_ns = 33'333'333;  // ~30 fps camera
    double jitter = 0.0;
    std::size_t scene_frames = 30;
  };

  VideoStreamSource(Options options, std::uint64_t seed);

  StreamFrame next() override;
  Shape sample_shape() const override {
    return Shape{options_.channels, options_.size, options_.size};
  }
  std::size_t classes() const override { return options_.classes; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  common::Rng rng_;
  std::vector<std::vector<float>> templates_;
  std::uint64_t index_ = 0;
  std::size_t scene_ = 0;
};

/// Applies confusable covariate drift: each class's samples are shifted
/// `magnitude` of the way toward the *next* class's centroid (cyclically),
/// plus small per-class random jitter.  At magnitude 1 every class sits on
/// its neighbour's old position, so a general model systematically
/// misclassifies — while classes remain mutually separated, so local head
/// retraining can recover.  Models the "data generated on the edge" whose
/// distribution differs from the cloud training set — the motivation for
/// dataflow 3 local retraining (paper Fig. 3).
Dataset apply_drift(const Dataset& dataset, common::Rng& drift_rng,
                    float magnitude = 1.0F);

}  // namespace openei::data
