// Deterministic synthetic dataset generators.
//
// Each generator substitutes for a data source the paper assumes (DESIGN.md):
//   make_blobs      — tabular sensor features (smart-home power, health vitals)
//   make_images     — camera frames with per-class spatial patterns (VAPS,
//                     object detection proxies)
//   make_sequences  — HAR-style time-series (wearables, activity recognition)
// Every generator is fully determined by its Rng, so experiments reproduce
// exactly.
#pragma once

#include "data/dataset.h"

namespace openei::data {

/// Gaussian blobs: `classes` cluster centres in `features` dimensions with
/// per-class unit-ball centres scaled by `separation` and noise `stddev`.
Dataset make_blobs(std::size_t samples, std::size_t features, std::size_t classes,
                   common::Rng& rng, float separation = 3.0F, float stddev = 1.0F);

/// Synthetic images, NCHW: each class has a fixed random spatial template;
/// samples are template + Gaussian pixel noise.  Harder classes overlap more
/// as `noise` grows.
Dataset make_images(std::size_t samples, std::size_t channels, std::size_t size,
                    std::size_t classes, common::Rng& rng, float noise = 0.35F);

/// HAR-style sequences flattened to [N, steps * dims]: each class is a
/// sinusoid with class-specific frequency/phase per dimension plus noise.
Dataset make_sequences(std::size_t samples, std::size_t steps, std::size_t dims,
                       std::size_t classes, common::Rng& rng, float noise = 0.25F);

/// Applies confusable covariate drift: each class's samples are shifted
/// `magnitude` of the way toward the *next* class's centroid (cyclically),
/// plus small per-class random jitter.  At magnitude 1 every class sits on
/// its neighbour's old position, so a general model systematically
/// misclassifies — while classes remain mutually separated, so local head
/// retraining can recover.  Models the "data generated on the edge" whose
/// distribution differs from the cloud training set — the motivation for
/// dataflow 3 local retraining (paper Fig. 3).
Dataset apply_drift(const Dataset& dataset, common::Rng& drift_rng,
                    float magnitude = 1.0F);

}  // namespace openei::data
