#include "data/metrics.h"

#include "common/error.h"

namespace openei::data {

double accuracy(const std::vector<std::size_t>& predictions,
                const std::vector<std::size_t>& labels) {
  OPENEI_CHECK(predictions.size() == labels.size() && !labels.empty(),
               "accuracy input size mismatch");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<std::size_t>& predictions,
    const std::vector<std::size_t>& labels, std::size_t classes) {
  OPENEI_CHECK(predictions.size() == labels.size(), "confusion input size mismatch");
  std::vector<std::vector<std::size_t>> matrix(classes,
                                               std::vector<std::size_t>(classes, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    OPENEI_CHECK(labels[i] < classes && predictions[i] < classes,
                 "class id out of range");
    ++matrix[labels[i]][predictions[i]];
  }
  return matrix;
}

double mean_average_precision(const std::vector<std::size_t>& predictions,
                              const std::vector<std::size_t>& labels,
                              std::size_t classes) {
  auto matrix = confusion_matrix(predictions, labels, classes);
  double total = 0.0;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    std::size_t predicted = 0;
    for (std::size_t truth = 0; truth < classes; ++truth) {
      predicted += matrix[truth][cls];
    }
    if (predicted > 0) {
      total += static_cast<double>(matrix[cls][cls]) / static_cast<double>(predicted);
    }
  }
  return total / static_cast<double>(classes);
}

}  // namespace openei::data
