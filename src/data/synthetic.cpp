#include "data/synthetic.h"

#include <cmath>

#include "common/error.h"

namespace openei::data {

Dataset make_blobs(std::size_t samples, std::size_t features, std::size_t classes,
                   common::Rng& rng, float separation, float stddev) {
  OPENEI_CHECK(samples > 0 && features > 0 && classes > 1, "bad blob parameters");

  // Class centres: random directions scaled by `separation`.
  std::vector<std::vector<float>> centres(classes, std::vector<float>(features));
  for (auto& centre : centres) {
    for (float& v : centre) v = rng.normal_float() * separation;
  }

  Tensor x(Shape{samples, features});
  std::vector<std::size_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t f = 0; f < features; ++f) {
      x.at2(i, f) = centres[cls][f] + rng.normal_float(0.0F, stddev);
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

Dataset make_images(std::size_t samples, std::size_t channels, std::size_t size,
                    std::size_t classes, common::Rng& rng, float noise) {
  OPENEI_CHECK(samples > 0 && channels > 0 && size > 1 && classes > 1,
               "bad image parameters");

  // Per-class template: smooth random pattern (sum of a few 2-D sinusoids)
  // so conv layers have structure to latch onto.
  std::size_t pixels = channels * size * size;
  std::vector<std::vector<float>> templates(classes, std::vector<float>(pixels));
  for (std::size_t cls = 0; cls < classes; ++cls) {
    float fx = rng.uniform_float(0.5F, 2.5F);
    float fy = rng.uniform_float(0.5F, 2.5F);
    float phase = rng.uniform_float(0.0F, 6.28F);
    for (std::size_t c = 0; c < channels; ++c) {
      float channel_gain = rng.uniform_float(0.5F, 1.5F);
      for (std::size_t h = 0; h < size; ++h) {
        for (std::size_t w = 0; w < size; ++w) {
          float u = static_cast<float>(h) / static_cast<float>(size);
          float v = static_cast<float>(w) / static_cast<float>(size);
          templates[cls][(c * size + h) * size + w] =
              channel_gain *
              std::sin(6.28F * (fx * u + fy * v) + phase);
        }
      }
    }
  }

  Tensor x(Shape{samples, channels, size, size});
  std::vector<std::size_t> labels(samples);
  auto data = x.data();
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t p = 0; p < pixels; ++p) {
      data[i * pixels + p] = templates[cls][p] + rng.normal_float(0.0F, noise);
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

Dataset make_sequences(std::size_t samples, std::size_t steps, std::size_t dims,
                       std::size_t classes, common::Rng& rng, float noise) {
  OPENEI_CHECK(samples > 0 && steps > 1 && dims > 0 && classes > 1,
               "bad sequence parameters");

  // Class signatures: per-dimension frequency and phase.
  std::vector<std::vector<float>> freq(classes, std::vector<float>(dims));
  std::vector<std::vector<float>> phase(classes, std::vector<float>(dims));
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t d = 0; d < dims; ++d) {
      freq[cls][d] = rng.uniform_float(0.5F, 4.0F);
      phase[cls][d] = rng.uniform_float(0.0F, 6.28F);
    }
  }

  Tensor x(Shape{samples, steps * dims});
  std::vector<std::size_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t d = 0; d < dims; ++d) {
        float time = static_cast<float>(t) / static_cast<float>(steps);
        x.at2(i, t * dims + d) =
            std::sin(6.28F * freq[cls][d] * time + phase[cls][d]) +
            rng.normal_float(0.0F, noise);
      }
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

namespace {

/// Nominal capture stamp: start + index * period + uniform jitter draw.
/// One jitter draw per frame even at jitter = 0 keeps the feature stream
/// identical whether or not timestamp jitter is enabled.
std::int64_t stamp(std::int64_t start_ns, std::int64_t period_ns,
                   std::uint64_t index, double jitter, common::Rng& rng) {
  double draw = rng.uniform(0.0, 1.0);
  std::int64_t jitter_ns = static_cast<std::int64_t>(
      draw * jitter * static_cast<double>(period_ns));
  return start_ns + static_cast<std::int64_t>(index) * period_ns + jitter_ns;
}

}  // namespace

SensorStreamSource::SensorStreamSource(Options options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  OPENEI_CHECK(options_.features > 0 && options_.classes > 1 &&
                   options_.period_ns > 0 && options_.hold_frames > 0 &&
                   options_.jitter >= 0.0 && options_.jitter < 1.0,
               "bad sensor stream parameters");
  centres_.assign(options_.classes, std::vector<float>(options_.features));
  for (auto& centre : centres_) {
    for (float& v : centre) v = rng_.normal_float() * options_.separation;
  }
  regime_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(options_.classes) - 1));
}

StreamFrame SensorStreamSource::next() {
  if (index_ > 0 && index_ % options_.hold_frames == 0) {
    regime_ = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(options_.classes) - 1));
  }
  StreamFrame frame;
  frame.index = index_;
  frame.timestamp_ns = stamp(options_.start_ns, options_.period_ns, index_,
                             options_.jitter, rng_);
  frame.label = regime_;
  frame.features = Tensor(Shape{options_.features});
  auto data = frame.features.data();
  for (std::size_t f = 0; f < options_.features; ++f) {
    data[f] = centres_[regime_][f] + rng_.normal_float(0.0F, options_.stddev);
  }
  ++index_;
  return frame;
}

VideoStreamSource::VideoStreamSource(Options options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  OPENEI_CHECK(options_.channels > 0 && options_.size > 1 &&
                   options_.classes > 1 && options_.period_ns > 0 &&
                   options_.scene_frames > 0 && options_.jitter >= 0.0 &&
                   options_.jitter < 1.0,
               "bad video stream parameters");
  // Same smooth per-class sinusoid templates as make_images, so a model
  // trained on make_images data recognizes streamed frames.
  std::size_t pixels = options_.channels * options_.size * options_.size;
  templates_.assign(options_.classes, std::vector<float>(pixels));
  for (std::size_t cls = 0; cls < options_.classes; ++cls) {
    float fx = rng_.uniform_float(0.5F, 2.5F);
    float fy = rng_.uniform_float(0.5F, 2.5F);
    float phase = rng_.uniform_float(0.0F, 6.28F);
    for (std::size_t c = 0; c < options_.channels; ++c) {
      float channel_gain = rng_.uniform_float(0.5F, 1.5F);
      for (std::size_t h = 0; h < options_.size; ++h) {
        for (std::size_t w = 0; w < options_.size; ++w) {
          float u = static_cast<float>(h) / static_cast<float>(options_.size);
          float v = static_cast<float>(w) / static_cast<float>(options_.size);
          templates_[cls][(c * options_.size + h) * options_.size + w] =
              channel_gain * std::sin(6.28F * (fx * u + fy * v) + phase);
        }
      }
    }
  }
  scene_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(options_.classes) - 1));
}

StreamFrame VideoStreamSource::next() {
  if (index_ > 0 && index_ % options_.scene_frames == 0) {
    scene_ = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(options_.classes) - 1));
  }
  StreamFrame frame;
  frame.index = index_;
  frame.timestamp_ns = stamp(options_.start_ns, options_.period_ns, index_,
                             options_.jitter, rng_);
  frame.label = scene_;
  frame.features =
      Tensor(Shape{options_.channels, options_.size, options_.size});
  auto data = frame.features.data();
  const auto& tmpl = templates_[scene_];
  for (std::size_t p = 0; p < tmpl.size(); ++p) {
    data[p] = tmpl[p] + rng_.normal_float(0.0F, options_.noise);
  }
  ++index_;
  return frame;
}

Dataset apply_drift(const Dataset& dataset, common::Rng& drift_rng,
                    float magnitude) {
  dataset.check();
  std::size_t sample_elems = dataset.features.elements() / dataset.size();
  auto src = dataset.features.data();

  // Per-class centroids of the original data.
  std::vector<std::vector<double>> centroid(dataset.classes,
                                            std::vector<double>(sample_elems, 0.0));
  std::vector<std::size_t> counts(dataset.classes, 0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t j = 0; j < sample_elems; ++j) {
      centroid[dataset.labels[i]][j] += src[i * sample_elems + j];
    }
    ++counts[dataset.labels[i]];
  }
  for (std::size_t c = 0; c < dataset.classes; ++c) {
    OPENEI_CHECK(counts[c] > 0, "class ", c, " has no samples to drift");
    for (double& v : centroid[c]) v /= static_cast<double>(counts[c]);
  }

  // Drift vector per class: toward the next class's centroid + small jitter.
  std::vector<std::vector<float>> offsets(dataset.classes,
                                          std::vector<float>(sample_elems));
  for (std::size_t c = 0; c < dataset.classes; ++c) {
    std::size_t next = (c + 1) % dataset.classes;
    for (std::size_t j = 0; j < sample_elems; ++j) {
      offsets[c][j] =
          magnitude * static_cast<float>(centroid[next][j] - centroid[c][j]) +
          drift_rng.normal_float(0.0F, 0.05F * magnitude);
    }
  }

  Dataset out = dataset;
  auto data = out.features.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto& offset = offsets[out.labels[i]];
    for (std::size_t j = 0; j < sample_elems; ++j) {
      data[i * sample_elems + j] += offset[j];
    }
  }
  return out;
}

}  // namespace openei::data
