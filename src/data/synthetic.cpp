#include "data/synthetic.h"

#include <cmath>

#include "common/error.h"

namespace openei::data {

Dataset make_blobs(std::size_t samples, std::size_t features, std::size_t classes,
                   common::Rng& rng, float separation, float stddev) {
  OPENEI_CHECK(samples > 0 && features > 0 && classes > 1, "bad blob parameters");

  // Class centres: random directions scaled by `separation`.
  std::vector<std::vector<float>> centres(classes, std::vector<float>(features));
  for (auto& centre : centres) {
    for (float& v : centre) v = rng.normal_float() * separation;
  }

  Tensor x(Shape{samples, features});
  std::vector<std::size_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t f = 0; f < features; ++f) {
      x.at2(i, f) = centres[cls][f] + rng.normal_float(0.0F, stddev);
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

Dataset make_images(std::size_t samples, std::size_t channels, std::size_t size,
                    std::size_t classes, common::Rng& rng, float noise) {
  OPENEI_CHECK(samples > 0 && channels > 0 && size > 1 && classes > 1,
               "bad image parameters");

  // Per-class template: smooth random pattern (sum of a few 2-D sinusoids)
  // so conv layers have structure to latch onto.
  std::size_t pixels = channels * size * size;
  std::vector<std::vector<float>> templates(classes, std::vector<float>(pixels));
  for (std::size_t cls = 0; cls < classes; ++cls) {
    float fx = rng.uniform_float(0.5F, 2.5F);
    float fy = rng.uniform_float(0.5F, 2.5F);
    float phase = rng.uniform_float(0.0F, 6.28F);
    for (std::size_t c = 0; c < channels; ++c) {
      float channel_gain = rng.uniform_float(0.5F, 1.5F);
      for (std::size_t h = 0; h < size; ++h) {
        for (std::size_t w = 0; w < size; ++w) {
          float u = static_cast<float>(h) / static_cast<float>(size);
          float v = static_cast<float>(w) / static_cast<float>(size);
          templates[cls][(c * size + h) * size + w] =
              channel_gain *
              std::sin(6.28F * (fx * u + fy * v) + phase);
        }
      }
    }
  }

  Tensor x(Shape{samples, channels, size, size});
  std::vector<std::size_t> labels(samples);
  auto data = x.data();
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t p = 0; p < pixels; ++p) {
      data[i * pixels + p] = templates[cls][p] + rng.normal_float(0.0F, noise);
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

Dataset make_sequences(std::size_t samples, std::size_t steps, std::size_t dims,
                       std::size_t classes, common::Rng& rng, float noise) {
  OPENEI_CHECK(samples > 0 && steps > 1 && dims > 0 && classes > 1,
               "bad sequence parameters");

  // Class signatures: per-dimension frequency and phase.
  std::vector<std::vector<float>> freq(classes, std::vector<float>(dims));
  std::vector<std::vector<float>> phase(classes, std::vector<float>(dims));
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t d = 0; d < dims; ++d) {
      freq[cls][d] = rng.uniform_float(0.5F, 4.0F);
      phase[cls][d] = rng.uniform_float(0.0F, 6.28F);
    }
  }

  Tensor x(Shape{samples, steps * dims});
  std::vector<std::size_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = cls;
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t d = 0; d < dims; ++d) {
        float time = static_cast<float>(t) / static_cast<float>(steps);
        x.at2(i, t * dims + d) =
            std::sin(6.28F * freq[cls][d] * time + phase[cls][d]) +
            rng.normal_float(0.0F, noise);
      }
    }
  }
  return Dataset{std::move(x), std::move(labels), classes};
}

Dataset apply_drift(const Dataset& dataset, common::Rng& drift_rng,
                    float magnitude) {
  dataset.check();
  std::size_t sample_elems = dataset.features.elements() / dataset.size();
  auto src = dataset.features.data();

  // Per-class centroids of the original data.
  std::vector<std::vector<double>> centroid(dataset.classes,
                                            std::vector<double>(sample_elems, 0.0));
  std::vector<std::size_t> counts(dataset.classes, 0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t j = 0; j < sample_elems; ++j) {
      centroid[dataset.labels[i]][j] += src[i * sample_elems + j];
    }
    ++counts[dataset.labels[i]];
  }
  for (std::size_t c = 0; c < dataset.classes; ++c) {
    OPENEI_CHECK(counts[c] > 0, "class ", c, " has no samples to drift");
    for (double& v : centroid[c]) v /= static_cast<double>(counts[c]);
  }

  // Drift vector per class: toward the next class's centroid + small jitter.
  std::vector<std::vector<float>> offsets(dataset.classes,
                                          std::vector<float>(sample_elems));
  for (std::size_t c = 0; c < dataset.classes; ++c) {
    std::size_t next = (c + 1) % dataset.classes;
    for (std::size_t j = 0; j < sample_elems; ++j) {
      offsets[c][j] =
          magnitude * static_cast<float>(centroid[next][j] - centroid[c][j]) +
          drift_rng.normal_float(0.0F, 0.05F * magnitude);
    }
  }

  Dataset out = dataset;
  auto data = out.features.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto& offset = offsets[out.labels[i]];
    for (std::size_t j = 0; j < sample_elems; ++j) {
      data[i * sample_elems + j] += offset[j];
    }
  }
  return out;
}

}  // namespace openei::data
