#include "data/dataset.h"

#include "common/error.h"

namespace openei::data {

Shape Dataset::sample_shape() const {
  OPENEI_CHECK(features.shape().rank() >= 2, "dataset features need a batch dim");
  std::vector<std::size_t> dims(features.shape().dims().begin() + 1,
                                features.shape().dims().end());
  return Shape(std::move(dims));
}

void Dataset::check() const {
  OPENEI_CHECK(features.shape().rank() >= 2, "dataset features need a batch dim");
  OPENEI_CHECK(features.shape().dim(0) == labels.size(), "feature rows ",
               features.shape().dim(0), " != label count ", labels.size());
  OPENEI_CHECK(classes > 0, "dataset with zero classes");
  for (std::size_t label : labels) {
    OPENEI_CHECK(label < classes, "label ", label, " out of range ", classes);
  }
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  OPENEI_CHECK(begin < end && end <= size(), "bad dataset slice [", begin, ",", end,
               ") of ", size());
  std::size_t sample_elems = features.elements() / size();
  std::vector<float> out_data(
      features.data().begin() + static_cast<std::ptrdiff_t>(begin * sample_elems),
      features.data().begin() + static_cast<std::ptrdiff_t>(end * sample_elems));
  std::vector<std::size_t> dims = features.shape().dims();
  dims[0] = end - begin;
  Dataset out{Tensor(Shape(std::move(dims)), std::move(out_data)),
              std::vector<std::size_t>(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                                       labels.begin() + static_cast<std::ptrdiff_t>(end)),
              classes};
  return out;
}

Dataset Dataset::select(const std::vector<std::size_t>& index) const {
  OPENEI_CHECK(!index.empty(), "empty selection");
  std::size_t sample_elems = features.elements() / size();
  std::vector<std::size_t> dims = features.shape().dims();
  dims[0] = index.size();
  Tensor out_features{Shape(std::move(dims))};
  std::vector<std::size_t> out_labels(index.size());
  auto src = features.data();
  auto dst = out_features.data();
  for (std::size_t i = 0; i < index.size(); ++i) {
    std::size_t row = index[i];
    OPENEI_CHECK(row < size(), "selection index ", row, " out of range ", size());
    for (std::size_t j = 0; j < sample_elems; ++j) {
      dst[i * sample_elems + j] = src[row * sample_elems + j];
    }
    out_labels[i] = labels[row];
  }
  return Dataset{std::move(out_features), std::move(out_labels), classes};
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& dataset,
                                             double train_fraction,
                                             common::Rng& rng) {
  dataset.check();
  OPENEI_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
               "train_fraction must be in (0, 1)");
  auto perm = rng.permutation(dataset.size());
  auto train_count = static_cast<std::size_t>(
      static_cast<double>(dataset.size()) * train_fraction);
  OPENEI_CHECK(train_count > 0 && train_count < dataset.size(),
               "split produced an empty side");
  std::vector<std::size_t> train_idx(perm.begin(),
                                     perm.begin() + static_cast<std::ptrdiff_t>(train_count));
  std::vector<std::size_t> test_idx(perm.begin() + static_cast<std::ptrdiff_t>(train_count),
                                    perm.end());
  return {dataset.select(train_idx), dataset.select(test_idx)};
}

BatchIterator::BatchIterator(const Dataset& dataset, std::size_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  OPENEI_CHECK(batch_size > 0, "zero batch size");
  dataset.check();
}

std::size_t BatchIterator::batch_count() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Dataset BatchIterator::batch(std::size_t i) const {
  OPENEI_CHECK(i < batch_count(), "batch index out of range");
  std::size_t begin = i * batch_size_;
  std::size_t end = std::min(begin + batch_size_, dataset_.size());
  return dataset_.slice(begin, end);
}

}  // namespace openei::data
