// In-memory labelled dataset plus batching utilities.
//
// Substitutes for the paper's external corpora (ImageNet, sensor streams,
// KITTI): experiments need *relative* accuracy behaviour, which the seeded
// synthetic generators in synthetic.h provide (see DESIGN.md substitutions).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace openei::data {

using tensor::Shape;
using tensor::Tensor;

/// Features are [N, ...sample] (rank 2 tabular/sequence or rank 4 NCHW);
/// labels are class ids < `classes`.
struct Dataset {
  Tensor features;
  std::vector<std::size_t> labels;
  std::size_t classes = 0;

  std::size_t size() const { return labels.size(); }
  /// Per-sample shape (batch dim stripped).
  Shape sample_shape() const;
  /// Validates the invariants (N consistent, labels in range).
  void check() const;

  /// Extracts samples [begin, end).
  Dataset slice(std::size_t begin, std::size_t end) const;
  /// Reorders samples by `index`.
  Dataset select(const std::vector<std::size_t>& index) const;
};

/// Shuffles and splits into (train, test); `train_fraction` in (0, 1).
std::pair<Dataset, Dataset> train_test_split(const Dataset& dataset,
                                             double train_fraction,
                                             common::Rng& rng);

/// Fixed-size mini-batch view sequence (last partial batch included).
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::size_t batch_size);
  /// Number of batches.
  std::size_t batch_count() const;
  /// Batch `i` as an owned sub-dataset.
  Dataset batch(std::size_t i) const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
};

}  // namespace openei::data
