// Evaluation metrics.  Accuracy is the paper's A in ALEM; mean per-class
// precision stands in for the mAP metric the paper names for detection tasks.
#pragma once

#include <cstddef>
#include <vector>

namespace openei::data {

/// Fraction of matching entries.
double accuracy(const std::vector<std::size_t>& predictions,
                const std::vector<std::size_t>& labels);

/// classes x classes matrix; entry [truth][prediction] counts occurrences.
std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<std::size_t>& predictions,
    const std::vector<std::size_t>& labels, std::size_t classes);

/// Mean over classes of per-class precision (mAP proxy for classification-
/// framed detection).  Classes never predicted contribute 0.
double mean_average_precision(const std::vector<std::size_t>& predictions,
                              const std::vector<std::size_t>& labels,
                              std::size_t classes);

}  // namespace openei::data
