#include "stream/stream_session.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.h"
#include "runtime/energy_governor.h"

namespace openei::stream {

namespace {

/// Queue meter hooks resolved up front so the queue increments stable
/// Counter pointers under its own lock.
FrameQueue::Options wire_queue_meters(FrameQueue::Options options,
                                      obs::MetricsRegistry* meter) {
  if (meter != nullptr) {
    options.dropped_deadline_counter = &meter->counter(
        "ei_stream_frames_dropped_total", {{"reason", "deadline"}});
    options.dropped_policy_counter = &meter->counter(
        "ei_stream_frames_dropped_total", {{"reason", "policy"}});
  }
  return options;
}

}  // namespace

StreamSession::StreamSession(std::string id, std::string scenario,
                             std::string algorithm, std::string model,
                             runtime::SessionCache& cache, Options options,
                             obs::Tracer* tracer, obs::MetricsRegistry* meter)
    : id_(std::move(id)),
      scenario_(std::move(scenario)),
      algorithm_(std::move(algorithm)),
      model_(std::move(model)),
      cache_(cache),
      options_(options),
      tracer_(tracer),
      meter_(meter),
      queue_(wire_queue_meters(options.queue, meter)) {
  OPENEI_CHECK(options_.result_capacity > 0, "result ring needs capacity");
  // Materialize (or warm-hit) the session now: a missing model fails the
  // open, not the first frame, and pins the sample shape for submit().
  runtime::SessionCache::Lease lease = cache_.acquire(model_);
  sample_shape_ = lease.session->model().input_shape();
  if (meter_ != nullptr) {
    obs::LabelSet by_policy{{"policy", to_string(options_.queue.policy)}};
    admitted_counter_ =
        &meter_->counter("ei_stream_frames_admitted_total", by_policy);
    rejected_counter_ =
        &meter_->counter("ei_stream_frames_rejected_total", by_policy);
    delivered_counter_ = &meter_->counter("ei_stream_frames_delivered_total");
    latency_histogram_ = &meter_->histogram("ei_stream_frame_latency_seconds");
  }
  worker_ = std::thread([this] { worker_loop(); });
}

StreamSession::~StreamSession() { close(); }

void StreamSession::close() {
  queue_.close();
  // Exactly one closer joins the drain; late callers block until it is done.
  std::lock_guard<std::mutex> lock(close_mutex_);
  if (worker_.joinable()) worker_.join();
}

PushResult StreamSession::submit(nn::Tensor frame, double max_wait_s) {
  if (frame.shape().elements() != sample_shape_.elements()) {
    throw ParseError("frame has " + std::to_string(frame.shape().elements()) +
                     " elements; model '" + model_ + "' expects " +
                     std::to_string(sample_shape_.elements()));
  }
  std::vector<std::size_t> dims{1};
  for (std::size_t d : sample_shape_.dims()) dims.push_back(d);
  Frame queued;
  queued.rows = frame.reshaped(tensor::Shape(std::move(dims)));
  if (tracer_ != nullptr && tracer_->enabled()) {
    queued.span = tracer_->begin_trace("stream.frame");
    queued.span.set_attribute("session", id_);
    queued.span.set_attribute("model", model_);
    queued.span.set_attribute("policy",
                              std::string(to_string(options_.queue.policy)));
  }
  PushResult result = queue_.push(std::move(queued), max_wait_s);
  if (result.outcome == PushOutcome::kAdmitted) {
    if (admitted_counter_ != nullptr) admitted_counter_->increment();
    if (options_.governor != nullptr) {
      options_.governor->on_queue_depth(queue_.counters().depth);
    }
  } else if (rejected_counter_ != nullptr) {
    rejected_counter_->increment();
  }
  return result;
}

void StreamSession::worker_loop() {
  while (std::optional<Frame> frame = queue_.pop()) {
    obs::Span infer = frame->span.child("stream.infer");
    double queue_wait_s =
        static_cast<double>(queue_.options().now() - frame->enqueued_ns) *
        1e-9;
    std::int64_t infer_start_ns = queue_.options().now();
    runtime::InferenceResult result;
    try {
      runtime::SessionCache::Lease lease = cache_.acquire(model_);
      result = lease.session->run(frame->rows);
    } catch (const std::exception& error) {
      // Model undeployed mid-stream or admission refused: the frame is
      // dropped after the fact, the stream keeps going.
      infer_failures_.fetch_add(1, std::memory_order_relaxed);
      if (infer.active()) {
        infer.set_attribute("error", std::string(error.what()));
        infer.finish();
        obs::Span drop = frame->span.child("stream.drop");
        drop.set_attribute("reason", "error");
        drop.finish();
      }
      frame->span.finish();
      continue;
    }
    inferred_.fetch_add(1, std::memory_order_relaxed);
    if (options_.governor != nullptr) {
      result.ledger_energy_j =
          options_.governor->charge(result.batch_latency_s, 1);
    }
    // Ledger-charged joules when a governor is wired (what the device
    // actually accrued, DVFS-adjusted); cost-model estimate otherwise.
    double frame_energy_j = options_.governor != nullptr
                                ? result.ledger_energy_j
                                : result.batch_energy_j;
    last_sim_latency_s_.store(result.batch_latency_s,
                              std::memory_order_relaxed);
    double infer_s =
        static_cast<double>(queue_.options().now() - infer_start_ns) * 1e-9;
    if (infer.active()) {
      infer.set_attribute("model", model_);
      infer.set_attribute("queue_wait_us", queue_wait_s * 1e6);
      infer.set_attribute("sim_latency_us", result.batch_latency_s * 1e6);
      infer.set_attribute("sim_energy_mj", frame_energy_j * 1e3);
      infer.set_attribute(
          "sim_memory_bytes",
          static_cast<double>(result.per_sample.memory_bytes));
    }
    infer.finish();

    obs::Span deliver_span = frame->span.child("stream.deliver");
    DeliveredResult delivered;
    delivered.seq = frame->seq;
    delivered.prediction =
        result.predictions.empty() ? 0 : result.predictions.front();
    delivered.queue_wait_s = queue_wait_s;
    delivered.infer_s = infer_s;
    delivered.sim_latency_s = result.batch_latency_s;
    delivered.sim_energy_j = frame_energy_j;
    delivered.trace_id = frame->span.trace_id();
    deliver(std::move(delivered));
    if (delivered_counter_ != nullptr) delivered_counter_->increment();
    if (latency_histogram_ != nullptr) {
      latency_histogram_->record(queue_wait_s + infer_s);
    }
    deliver_span.finish();
    frame->span.finish();
    if (options_.governor != nullptr && queue_.counters().depth == 0) {
      options_.governor->on_drained();
    }

    if (options_.pace_sim_latency_scale > 0.0) {
      // Chunked so close() interrupts the pace promptly: rate shaping must
      // not delay a drain.
      double budget_s =
          result.batch_latency_s * options_.pace_sim_latency_scale;
      while (budget_s > 0.0 && !queue_.closed()) {
        double slice = std::min(budget_s, 0.01);
        std::this_thread::sleep_for(std::chrono::duration<double>(slice));
        budget_s -= slice;
      }
    }
  }
}

void StreamSession::deliver(DeliveredResult result) {
  std::lock_guard<std::mutex> lock(results_mutex_);
  while (results_.size() >= options_.result_capacity) {
    results_.pop_front();
    results_overflow_.fetch_add(1, std::memory_order_relaxed);
  }
  results_.push_back(std::move(result));
}

std::vector<DeliveredResult> StreamSession::poll(std::size_t max) {
  std::vector<DeliveredResult> out;
  std::lock_guard<std::mutex> lock(results_mutex_);
  while (!results_.empty() && out.size() < max) {
    out.push_back(std::move(results_.front()));
    results_.pop_front();
  }
  results_polled_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

SessionStats StreamSession::stats() const {
  SessionStats stats;
  stats.queue = queue_.counters();
  stats.inferred = inferred_.load(std::memory_order_relaxed);
  stats.infer_failures = infer_failures_.load(std::memory_order_relaxed);
  stats.results_polled = results_polled_.load(std::memory_order_relaxed);
  stats.results_overflow = results_overflow_.load(std::memory_order_relaxed);
  stats.last_sim_latency_s =
      last_sim_latency_s_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    stats.results_pending = results_.size();
  }
  return stats;
}

}  // namespace openei::stream
