#include "stream/stream_manager.h"

#include <utility>

#include "common/error.h"

namespace openei::stream {

StreamManager::StreamManager(runtime::SessionCache& cache, Options options,
                             obs::Tracer* tracer, obs::MetricsRegistry* meter)
    : cache_(cache), options_(std::move(options)), tracer_(tracer),
      meter_(meter) {
  OPENEI_CHECK(options_.max_sessions > 0, "stream manager needs a session cap");
  if (meter_ != nullptr) {
    active_gauge_ = &meter_->gauge("ei_stream_sessions_active");
  }
}

StreamManager::~StreamManager() { close_all(); }

std::shared_ptr<StreamSession> StreamManager::open(
    const std::string& scenario, const std::string& algorithm,
    const std::string& model, StreamSession::Options options) {
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      throw ResourceExhausted("stream session cap reached (" +
                              std::to_string(options_.max_sessions) + ")");
    }
    id = "stream-" + std::to_string(++next_id_);
  }
  // Construction (which materializes the model) runs outside the manager
  // lock: a cold-cache model load must not stall get()/close() on other
  // sessions.
  auto session = std::make_shared<StreamSession>(
      id, scenario, algorithm, model, cache_, std::move(options), tracer_,
      meter_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      // A racing open filled the cap while we were materializing; give the
      // slot back (the session drains its empty queue immediately).
      throw ResourceExhausted("stream session cap reached (" +
                              std::to_string(options_.max_sessions) + ")");
    }
    sessions_.emplace(id, session);
    ++opened_total_;
    if (active_gauge_ != nullptr) {
      active_gauge_->set(static_cast<double>(sessions_.size()));
    }
  }
  return session;
}

std::shared_ptr<StreamSession> StreamManager::get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool StreamManager::close(const std::string& id) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    session = std::move(it->second);
    sessions_.erase(it);
    ++closed_total_;
    if (active_gauge_ != nullptr) {
      active_gauge_->set(static_cast<double>(sessions_.size()));
    }
  }
  // Drain outside the lock: joining the worker can take a full queue's
  // worth of inference.
  session->close();
  return true;
}

void StreamManager::close_all() {
  std::map<std::string, std::shared_ptr<StreamSession>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed.swap(sessions_);
    closed_total_ += doomed.size();
    if (active_gauge_ != nullptr) active_gauge_->set(0.0);
  }
  for (auto& [id, session] : doomed) session->close();
}

std::vector<std::shared_ptr<StreamSession>> StreamManager::sessions() const {
  std::vector<std::shared_ptr<StreamSession>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

std::size_t StreamManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::uint64_t StreamManager::opened_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opened_total_;
}

std::uint64_t StreamManager::closed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_total_;
}

}  // namespace openei::stream
