// A session-oriented streaming inference pipeline over the memory-governed
// runtime (ROADMAP: the paper's "real-time ML module" as a continuous
// workload; the concerns ice-ar's ndnrtc pipeline manages for edge AR).
//
// One StreamSession = one continuous frame stream bound to one selected
// model.  Producers submit() frames into a bounded FrameQueue (admission
// policy + per-frame deadline); a dedicated worker pops surviving frames,
// acquires the model through runtime::SessionCache (warm zero-copy hits;
// hot-swaps picked up mid-stream), runs real inference, and appends results
// to a bounded poll ring.  Expired frames are dropped before inference —
// never after the compute is spent.
//
// Tracing: when a Tracer is attached, every frame gets its own trace —
//   stream.frame (root: session, seq, policy)
//     stream.enqueue      admission verdict + queue depth
//     stream.queue_wait   admission -> pop/drop (duration IS the wait)
//     stream.infer        model, queue_wait_us, sim ALEM attribution
//     stream.deliver      result-ring handoff
// or, on the drop path, stream.drop {reason: deadline|policy|closed|
// backpressure} instead of infer/deliver.  test_trace_golden.cpp pins both
// shapes.
//
// Shutdown: close() closes the queue (refusing new frames) and the worker
// drains what was already admitted — still subject to deadlines — before
// exiting; the destructor joins it.  Same DrainGate contract as
// runtime::MicroBatcher: destroying a session mid-stream cannot deadlock
// and cannot leak queued frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "runtime/session_cache.h"
#include "stream/frame_queue.h"

namespace openei::stream {

/// One inferred frame, as drained by poll().
struct DeliveredResult {
  std::uint64_t seq = 0;
  std::size_t prediction = 0;
  double queue_wait_s = 0.0;  // admission -> pop
  double infer_s = 0.0;       // wall-clock forward time
  double sim_latency_s = 0.0; // hwsim per-frame ALEM latency
  double sim_energy_j = 0.0;
  std::uint64_t trace_id = 0; // 0 when tracing is off
};

struct SessionStats {
  QueueCounters queue;
  std::uint64_t inferred = 0;        // frames that ran the model
  std::uint64_t infer_failures = 0;  // lease/forward errors (frame dropped)
  std::uint64_t results_polled = 0;
  std::uint64_t results_overflow = 0;  // ring evictions (delivered, unpolled)
  std::size_t results_pending = 0;
  double last_sim_latency_s = 0.0;
};

class StreamSession {
 public:
  struct Options {
    FrameQueue::Options queue;
    /// Delivered results retained for polling; the oldest unpolled result
    /// is evicted when a new one lands in a full ring.
    std::size_t result_capacity = 256;
    /// Pace the worker by simulated device latency: after each frame it
    /// sleeps sim_latency * pace_sim_latency_scale, so the hwsim device
    /// profile — not the host CPU — sets the service rate.  0 = no pacing
    /// (serving default); bench_stream uses it to compare device profiles.
    double pace_sim_latency_scale = 0.0;
    /// Device energy account (may be null).  Every delivered frame charges
    /// its simulated busy time against the ledger — the charged joules are
    /// what stream.infer's sim_energy_mj reports — and the frame queue
    /// feeds the governor's pressure ladder (depth on submit, drained when
    /// the worker empties it).
    runtime::EnergyGovernor* governor = nullptr;
  };

  /// Borrows the cache (the owning service outlives every session).
  /// `tracer`/`meter` may be null.  The worker starts immediately.
  StreamSession(std::string id, std::string scenario, std::string algorithm,
                std::string model, runtime::SessionCache& cache,
                Options options, obs::Tracer* tracer = nullptr,
                obs::MetricsRegistry* meter = nullptr);
  ~StreamSession();
  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Submits one frame ([...sample] or [1, ...sample]).  kBlock waits up to
  /// `max_wait_s` for space (forever when negative); other policies never
  /// wait.  Throws ParseError on a shape mismatch.
  PushResult submit(nn::Tensor frame, double max_wait_s = -1.0);

  /// Drains up to `max` delivered results, oldest first.
  std::vector<DeliveredResult> poll(std::size_t max = SIZE_MAX);

  /// Closes the queue and drains the worker (idempotent; blocks until the
  /// already-admitted frames are inferred or deadline-dropped).
  void close();
  bool closed() const { return queue_.closed(); }

  SessionStats stats() const;
  const std::string& id() const { return id_; }
  const std::string& scenario() const { return scenario_; }
  const std::string& algorithm() const { return algorithm_; }
  const std::string& model() const { return model_; }
  const tensor::Shape& sample_shape() const { return sample_shape_; }
  const Options& options() const { return options_; }

 private:
  void worker_loop();
  void deliver(DeliveredResult result);

  std::string id_;
  std::string scenario_;
  std::string algorithm_;
  std::string model_;
  runtime::SessionCache& cache_;
  Options options_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* meter_;
  tensor::Shape sample_shape_;

  // Cached metric series (stable for the meter's lifetime; null without a
  // meter): admitted/delivered/rejected counters + end-to-end latency.
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Histogram* latency_histogram_ = nullptr;

  FrameQueue queue_;
  std::atomic<std::uint64_t> inferred_{0};
  std::atomic<std::uint64_t> infer_failures_{0};
  std::atomic<std::uint64_t> results_polled_{0};
  std::atomic<std::uint64_t> results_overflow_{0};
  std::atomic<double> last_sim_latency_s_{0.0};

  mutable std::mutex results_mutex_;
  std::deque<DeliveredResult> results_;

  std::mutex close_mutex_;  // serializes the worker join in close()
  std::thread worker_;
};

}  // namespace openei::stream
