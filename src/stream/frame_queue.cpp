#include "stream/frame_queue.h"

#include <utility>

#include "common/clock.h"
#include "common/error.h"

namespace openei::stream {

const char* to_string(AdmitPolicy policy) {
  switch (policy) {
    case AdmitPolicy::kBlock:
      return "block";
    case AdmitPolicy::kLatestWins:
      return "latest_wins";
    case AdmitPolicy::kDropOldest:
      return "drop_oldest";
  }
  return "unknown";
}

std::optional<AdmitPolicy> parse_policy(const std::string& name) {
  if (name == "block") return AdmitPolicy::kBlock;
  if (name == "latest_wins") return AdmitPolicy::kLatestWins;
  if (name == "drop_oldest") return AdmitPolicy::kDropOldest;
  return std::nullopt;
}

FrameQueue::FrameQueue(Options options) : options_(std::move(options)) {
  OPENEI_CHECK(options_.capacity > 0, "frame queue needs capacity >= 1");
  OPENEI_CHECK(options_.deadline_s >= 0.0, "negative frame deadline");
  if (!options_.now) options_.now = common::wall_now_ns;
}

FrameQueue::~FrameQueue() {
  close();
  // Whatever the owner never drained dies here — counted, span-attributed,
  // never silently lost.
  common::DrainGate::Lock lock = gate_.acquire();
  while (!frames_.empty()) {
    drop_locked(frames_.front(), "closed", counters_.dropped_closed);
    frames_.pop_front();
  }
}

void FrameQueue::drop_locked(Frame& frame, const char* reason,
                             std::uint64_t& counter) {
  ++counter;
  frame.wait_span.finish();
  if (frame.span.active()) {
    obs::Span drop = frame.span.child("stream.drop");
    drop.set_attribute("reason", std::string(reason));
    drop.set_attribute("seq", static_cast<double>(frame.seq));
    drop.set_attribute("waited_us",
                       static_cast<double>(now() - frame.enqueued_ns) * 1e-3);
    drop.finish();
    frame.span.finish();
  }
  if (&counter == &counters_.dropped_deadline &&
      options_.dropped_deadline_counter != nullptr) {
    options_.dropped_deadline_counter->increment();
  } else if (&counter == &counters_.dropped_policy &&
             options_.dropped_policy_counter != nullptr) {
    options_.dropped_policy_counter->increment();
  }
}

PushResult FrameQueue::push(Frame frame, double max_wait_s) {
  common::DrainGate::Lock lock = gate_.acquire();
  ++counters_.produced;

  auto reject = [&](PushOutcome outcome, std::uint64_t& counter,
                    const char* reason) {
    ++counter;
    std::uint64_t trace_id = frame.span.trace_id();
    if (frame.span.active()) {
      obs::Span enqueue = frame.span.child("stream.enqueue");
      enqueue.set_attribute("policy", std::string(to_string(options_.policy)));
      enqueue.set_attribute("outcome", std::string(reason));
      enqueue.finish();
      obs::Span drop = frame.span.child("stream.drop");
      drop.set_attribute("reason", std::string(reason));
      drop.finish();
      frame.span.finish();
    }
    return PushResult{outcome, 0, 0, trace_id};
  };

  if (gate_.closed(lock)) {
    return reject(PushOutcome::kRejectedClosed, counters_.rejected_closed,
                  "closed");
  }

  std::size_t evicted = 0;
  if (options_.policy == AdmitPolicy::kBlock) {
    auto have_space = [this] { return frames_.size() < options_.capacity; };
    if (!have_space()) {
      ++counters_.blocked_pushes;
      if (max_wait_s < 0.0) {
        gate_.await(lock, have_space);
      } else if (max_wait_s > 0.0) {
        gate_.await_for(lock, max_wait_s, have_space);
      }
      // Close wins over space: a closed queue refuses new work even if the
      // wake that delivered the space came from the draining consumer.
      if (gate_.closed(lock)) {
        return reject(PushOutcome::kRejectedClosed, counters_.rejected_closed,
                      "closed");
      }
      if (!have_space()) {
        return reject(PushOutcome::kRejectedBackpressure,
                      counters_.rejected_backpressure, "backpressure");
      }
    }
  } else {
    // Eviction policies shed the oldest queued frame instead of waiting.
    while (frames_.size() >= options_.capacity) {
      drop_locked(frames_.front(), "policy", counters_.dropped_policy);
      frames_.pop_front();
      ++evicted;
    }
  }

  frame.seq = ++next_seq_;
  frame.enqueued_ns = now();
  if (options_.deadline_s > 0.0) {
    std::int64_t queue_deadline =
        frame.enqueued_ns +
        static_cast<std::int64_t>(options_.deadline_s * 1e9);
    if (frame.deadline_ns == 0 || queue_deadline < frame.deadline_ns) {
      frame.deadline_ns = queue_deadline;
    }
  }
  ++counters_.admitted;
  std::uint64_t seq = frame.seq;
  std::uint64_t trace_id = frame.span.trace_id();
  if (frame.span.active()) {
    frame.span.set_attribute("seq", static_cast<double>(seq));
    obs::Span enqueue = frame.span.child("stream.enqueue");
    enqueue.set_attribute("policy", std::string(to_string(options_.policy)));
    enqueue.set_attribute("outcome", "admitted");
    enqueue.set_attribute("depth", static_cast<double>(frames_.size() + 1));
    enqueue.set_attribute("evicted", static_cast<double>(evicted));
    enqueue.finish();
    frame.wait_span = frame.span.child("stream.queue_wait");
  }
  frames_.push_back(std::move(frame));
  lock.unlock();
  gate_.notify_all();
  return PushResult{PushOutcome::kAdmitted, seq, evicted, trace_id};
}

void FrameQueue::settle_locked() {
  while (!frames_.empty()) {
    // Latest-wins: everything but the newest queued frame is superseded.
    // Classified as a policy drop even when also expired — the policy made
    // it dead first, and a deterministic classification keeps the property
    // suite's reference model exact.
    if (options_.policy == AdmitPolicy::kLatestWins && frames_.size() > 1) {
      drop_locked(frames_.front(), "policy", counters_.dropped_policy);
      frames_.pop_front();
      continue;
    }
    Frame& head = frames_.front();
    if (head.deadline_ns != 0 && now() >= head.deadline_ns) {
      drop_locked(head, "deadline", counters_.dropped_deadline);
      frames_.pop_front();
      continue;
    }
    break;
  }
}

std::optional<Frame> FrameQueue::take_front_locked() {
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  ++counters_.delivered;
  frame.wait_span.finish();
  return frame;
}

std::optional<Frame> FrameQueue::pop() {
  common::DrainGate::Lock lock = gate_.acquire();
  for (;;) {
    settle_locked();
    if (!frames_.empty()) {
      std::optional<Frame> frame = take_front_locked();
      lock.unlock();
      gate_.notify_all();  // a blocked producer may now have space
      return frame;
    }
    if (gate_.closed(lock)) return std::nullopt;  // closed and drained
    gate_.await(lock, [this] { return !frames_.empty(); });
    if (frames_.empty() && gate_.closed(lock)) return std::nullopt;
  }
}

std::optional<Frame> FrameQueue::try_pop() {
  common::DrainGate::Lock lock = gate_.acquire();
  settle_locked();
  if (frames_.empty()) return std::nullopt;
  std::optional<Frame> frame = take_front_locked();
  lock.unlock();
  gate_.notify_all();
  return frame;
}

void FrameQueue::close() { gate_.close(); }

QueueCounters FrameQueue::counters() const {
  common::DrainGate::Lock lock = gate_.acquire();
  QueueCounters snapshot = counters_;
  snapshot.depth = frames_.size();
  return snapshot;
}

std::size_t FrameQueue::depth() const {
  common::DrainGate::Lock lock = gate_.acquire();
  return frames_.size();
}

}  // namespace openei::stream
