// Registry of live StreamSessions — the service-side owner of the
// streaming pipeline (POST /ei_stream opens one, DELETE closes it).
//
// The manager caps concurrent sessions (each one owns a worker thread and
// a bounded frame queue), hands out shared ownership so HTTP handlers can
// keep using a session that a concurrent DELETE removed (the worker drains
// before the last reference dies), and reports an aggregate view for
// /ei_status.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stream/stream_session.h"

namespace openei::stream {

class StreamManager {
 public:
  struct Options {
    /// Concurrent-session cap; open() past it throws ResourceExhausted
    /// (libei answers 503 {"error":"too_many_streams"}).
    std::size_t max_sessions = 32;
    /// Defaults for sessions opened without explicit knobs.
    StreamSession::Options session;
  };

  /// Borrows the cache (the owning service outlives the manager); `tracer`
  /// and `meter` (both may be null) are handed to every session.  The
  /// manager closes every remaining session on destruction.
  StreamManager(runtime::SessionCache& cache, Options options,
                obs::Tracer* tracer = nullptr,
                obs::MetricsRegistry* meter = nullptr);
  ~StreamManager();
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Opens a session bound to `model` and starts its worker.  Throws
  /// ResourceExhausted at the session cap, NotFound/MemoryPressureError
  /// when the cache cannot produce the model.
  std::shared_ptr<StreamSession> open(const std::string& scenario,
                                      const std::string& algorithm,
                                      const std::string& model,
                                      StreamSession::Options options);

  /// Live session by id; nullptr when unknown (or already closed away).
  std::shared_ptr<StreamSession> get(const std::string& id) const;

  /// Closes and unregisters one session (drains its worker); false when
  /// the id is unknown.
  bool close(const std::string& id);

  /// Closes and unregisters everything (EdgeNode shutdown path).
  void close_all();

  std::vector<std::shared_ptr<StreamSession>> sessions() const;
  std::size_t active() const;
  std::uint64_t opened_total() const;
  std::uint64_t closed_total() const;
  const Options& options() const { return options_; }

 private:
  runtime::SessionCache& cache_;
  Options options_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* meter_;
  obs::Gauge* active_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<StreamSession>> sessions_;
  std::uint64_t next_id_ = 0;
  std::uint64_t opened_total_ = 0;
  std::uint64_t closed_total_ = 0;
};

}  // namespace openei::stream
