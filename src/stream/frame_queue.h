// Bounded MPSC frame queue — the admission stage of the streaming pipeline
// (ROADMAP: the paper's "real-time ML module" as a continuous workload).
//
// Concurrent producers push timestamped frames; one consumer (the
// StreamSession worker) pops them for inference.  Three admission policies
// cover the edge-streaming design space:
//
//   kBlock      — block-with-backpressure: a push into a full queue waits
//                 for space (optionally bounded), so the producer is paced
//                 to the consumer.  Nothing is ever dropped by policy;
//                 delivery is exactly admission order.
//   kLatestWins — freshest-frame semantics (AR/vision): a push into a full
//                 queue evicts the oldest queued frame, and a pop skips
//                 every queued frame except the newest.  Stale work is shed
//                 at both ends; delivered seqs still increase.
//   kDropOldest — ordered load shedding: a push into a full queue evicts
//                 the oldest queued frame, but pops stay strictly FIFO over
//                 what survives.  Bounded staleness with full ordering.
//
// Deadlines: a frame may carry an absolute deadline (or inherit one from
// Options.deadline_s at admission).  pop()/try_pop() drop expired frames —
// counted, span-attributed, and *never* returned for inference.  The clock
// is injectable so tests drive expiry deterministically.
//
// Shutdown follows the common::DrainGate contract shared with
// runtime::MicroBatcher: close() refuses new pushes and wakes every blocked
// producer/consumer, while pop() keeps draining already-admitted frames
// until the queue is empty.  The destructor drops whatever was never
// drained (counted as dropped_closed), so no frame is ever silently lost.
//
// Counter conservation (the StreamProperty suite pins this exactly):
//   produced = admitted + rejected_backpressure + rejected_closed
//   admitted = delivered + dropped_deadline + dropped_policy
//              + dropped_closed + depth
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "common/drain_gate.h"
#include "nn/model.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace openei::stream {

enum class AdmitPolicy { kBlock, kLatestWins, kDropOldest };

/// "block" / "latest_wins" / "drop_oldest" (the wire names of POST
/// /ei_stream?policy=...).
const char* to_string(AdmitPolicy policy);
std::optional<AdmitPolicy> parse_policy(const std::string& name);

/// One frame riding the pipeline.  The queue assigns seq/enqueued_ns at
/// admission; `span` is the frame's trace root (may be inert) under which
/// the queue opens stream.enqueue / stream.queue_wait / stream.drop spans.
struct Frame {
  std::uint64_t seq = 0;         // admission order, 1-based, queue-assigned
  std::int64_t enqueued_ns = 0;  // queue-clock stamp at admission
  std::int64_t deadline_ns = 0;  // absolute queue-clock deadline; 0 = none
  nn::Tensor rows;               // [1, ...sample] — one frame
  obs::Span span;                // frame trace root
  obs::Span wait_span;           // stream.queue_wait: admission -> pop/drop
};

enum class PushOutcome { kAdmitted, kRejectedBackpressure, kRejectedClosed };

struct PushResult {
  PushOutcome outcome = PushOutcome::kAdmitted;
  std::uint64_t seq = 0;      // assigned seq (0 when rejected)
  std::size_t evicted = 0;    // frames this push displaced (policy drops)
  std::uint64_t trace_id = 0; // the frame's trace, 0 when tracing is off
};

struct QueueCounters {
  std::uint64_t produced = 0;   // push attempts
  std::uint64_t admitted = 0;   // entered the queue
  std::uint64_t delivered = 0;  // returned by pop for inference
  std::uint64_t dropped_deadline = 0;  // expired before inference
  std::uint64_t dropped_policy = 0;    // evicted/superseded by the policy
  std::uint64_t dropped_closed = 0;    // still queued when destroyed
  std::uint64_t rejected_backpressure = 0;  // kBlock push timed out
  std::uint64_t rejected_closed = 0;        // push after close()
  std::uint64_t blocked_pushes = 0;  // kBlock pushes that had to wait
  std::size_t depth = 0;             // currently queued
};

class FrameQueue {
 public:
  struct Options {
    std::size_t capacity = 8;
    AdmitPolicy policy = AdmitPolicy::kLatestWins;
    /// Per-frame deadline from admission (seconds); 0 = none.  A frame that
    /// arrives with its own deadline_ns keeps the earlier of the two.
    double deadline_s = 0.0;
    /// Injectable monotonic clock (ns).  Tests drive a fake one to make
    /// expiry deterministic; default is common::wall_now_ns.
    std::function<std::int64_t()> now;
    /// Optional meter hooks for drops that happen inside the queue (the
    /// owning session wires ei_stream_frames_dropped_total here).
    obs::Counter* dropped_deadline_counter = nullptr;
    obs::Counter* dropped_policy_counter = nullptr;
  };

  explicit FrameQueue(Options options);
  /// close() + drops whatever was never drained (dropped_closed).
  ~FrameQueue();
  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  /// Offers one frame.  kBlock waits up to `max_wait_s` for space (forever
  /// when negative, never when 0); the eviction policies never wait.  The
  /// frame's stream.enqueue span is opened and finished here.
  PushResult push(Frame frame, double max_wait_s = -1.0);

  /// Next frame per policy, expiry-filtered: expired/superseded frames are
  /// dropped (counted + span-attributed) and never returned.  Blocks until
  /// a live frame arrives or the queue closes; nullopt = closed and
  /// drained.
  std::optional<Frame> pop();

  /// Non-blocking pop: nullopt when nothing live is queued right now.
  std::optional<Frame> try_pop();

  /// Refuses new pushes and wakes every waiter; already-admitted frames
  /// stay poppable (drain-on-close).  Idempotent.
  void close();
  bool closed() const { return gate_.closed(); }

  QueueCounters counters() const;
  std::size_t depth() const;
  const Options& options() const { return options_; }

 private:
  /// Drops `frame` (span-attributed with `reason`), bumping `counter`.
  /// The gate lock must be held.
  void drop_locked(Frame& frame, const char* reason, std::uint64_t& counter);
  /// Applies policy skip + expiry to the queue head.  Lock held.
  void settle_locked();
  std::optional<Frame> take_front_locked();
  std::int64_t now() const { return options_.now ? options_.now() : 0; }

  Options options_;
  common::DrainGate gate_;
  std::deque<Frame> frames_;
  std::uint64_t next_seq_ = 0;
  QueueCounters counters_;
};

}  // namespace openei::stream
