// Quickstart — the paper's Sec. III walkthrough, end to end:
//
//   "If we want to enable a new Raspberry Pi EI capability, deploying and
//    configuring OpenEI is enough."
//
// This example turns a simulated Raspberry Pi into an intelligent edge:
//   1. deploy-and-play: construct an EdgeNode on the Pi profile;
//   2. train two object-detection model variants in a (simulated) cloud and
//      deploy them;
//   3. feed camera data into the edge data store;
//   4. exercise the Fig. 6 RESTful API over real loopback HTTP —
//      /ei_data/realtime/camera1 then /ei_algorithms/safety/detection —
//      and watch the model selector pick per the caller's ALEM needs.
#include <cstdio>

#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

int main() {
  std::printf("=== OpenEI quickstart: deploy-and-play on a Raspberry Pi ===\n\n");

  // 1. Deploy OpenEI: any hardware profile becomes an intelligent edge.
  core::EdgeNode pi(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                         hwsim::openei_package(), 1024});
  std::printf("deployed OpenEI on '%s' (%.1f GFLOPS, %zu MB RAM) running '%s'\n",
              pi.device().name.c_str(), pi.device().effective_gflops,
              pi.device().ram_bytes >> 20, pi.package().name.c_str());

  // 2. Cloud-side: train two detection variants on pooled data, then
  //    download them to the edge (Fig. 3 dataflow 2).
  common::Rng rng(7);
  auto dataset = data::make_blobs(600, 16, 4, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::TrainOptions topt;
  topt.epochs = 20;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;

  for (auto [name, hidden] :
       {std::pair<const char*, std::size_t>{"detector_large", 64},
        std::pair<const char*, std::size_t>{"detector_small", 8}}) {
    nn::Model model = nn::zoo::make_mlp(name, 16, 4, {hidden}, rng);
    nn::fit(model, train, topt);
    double accuracy = nn::evaluate_accuracy(model, test);
    std::printf("cloud trained %-15s  %6zu params  accuracy %.3f\n", name,
                model.param_count(), accuracy);
    if (hidden == 8) std::printf("\n%s\n", model.summary().c_str());
    pi.deploy_model("safety", "detection", std::move(model), accuracy);
  }

  // 3. Camera frames arrive at the edge and stay there (privacy + bandwidth).
  for (std::size_t i = 0; i < 5; ++i) {
    common::JsonArray features;
    for (std::size_t f = 0; f < 16; ++f) {
      features.emplace_back(static_cast<double>(test.features.at2(i, f)));
    }
    pi.ingest("camera1", static_cast<double>(i),
              common::Json(std::move(features)));
  }
  std::printf("\ningested %zu camera frames into the edge data store\n",
              pi.store().size("camera1"));

  // 4. The Sec. III-E programming model over real loopback HTTP.
  std::uint16_t port = pi.start_server(0);
  net::HttpClient client(port);
  std::printf("libei serving at http://127.0.0.1:%u\n\n", port);

  auto frame = client.get("/ei_data/realtime/camera1?timestamp=2");
  std::printf("GET /ei_data/realtime/camera1?timestamp=2\n  -> %d %s\n\n",
              frame.status, frame.body.substr(0, 96).c_str());

  // Default selection is accuracy-oriented (paper Sec. III-E).
  auto accurate =
      client.get("/ei_algorithms/safety/detection?sensor=camera1&timestamp=2");
  std::printf("GET /ei_algorithms/safety/detection (accuracy-oriented default)\n"
              "  -> %d %s\n\n",
              accurate.status, accurate.body.c_str());

  // An urgent caller asks for minimum latency instead (Eq. 1 objective swap).
  auto fast = client.get(
      "/ei_algorithms/safety/detection?sensor=camera1&timestamp=2"
      "&objective=latency&min_accuracy=0.5");
  std::printf("GET /ei_algorithms/safety/detection?objective=latency\n"
              "  -> %d %s\n\n",
              fast.status, fast.body.c_str());

  pi.stop_server();
  std::printf("=== quickstart complete ===\n");
  return 0;
}
