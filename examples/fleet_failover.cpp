// Sharded fleet failover — the availability story end to end (paper
// Sec. IV-C "high availability ... failure avoidance", at fleet scale).
//
// Four heterogeneous OpenEI nodes shard a model catalogue behind a
// consistent-hash router with replication 2. The demo serves traffic
// through the front door, kills the primary owner of a hot key mid-run,
// and shows that (a) every request keeps succeeding via the replica,
// (b) /ei_fleet reports the degraded topology live, and (c) once the node
// returns, routed traffic alone probes it back into the ring and the
// original placement is restored.
//
// While it runs you can watch from another terminal:
//   curl http://127.0.0.1:<port>/ei_fleet     # health, ring, placements
//   curl http://127.0.0.1:<port>/ei_metrics   # ei_fleet_* counters
#include <cstdio>

#include "common/json.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "net/http.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

void print_topology(net::HttpClient& door) {
  common::Json doc = common::Json::parse(door.get("/ei_fleet").body);
  std::printf("  up %lld/%lld nodes:", doc.at("up_nodes").as_int(),
              doc.at("total_nodes").as_int());
  for (const common::Json& node : doc.at("nodes").as_array()) {
    std::printf("  %s=%s(%.0f%%)", node.at("id").as_string().c_str(),
                node.at("up").as_bool() ? "up" : "DOWN",
                node.at("ring_fraction").as_number() * 100.0);
  }
  std::printf("\n");
  for (const common::Json& placement : doc.at("placements").as_array()) {
    std::printf("  model %s (key %s) on:",
                placement.at("model").as_string().c_str(),
                placement.at("key").as_string().c_str());
    for (const common::Json& owner : placement.at("owners").as_array()) {
      std::printf(" %s", owner.as_string().c_str());
    }
    std::printf("\n");
  }
}

std::size_t serve(fleet::Fleet& fleet, net::HttpClient& door, int requests) {
  std::size_t ok = 0;
  for (int i = 0; i < requests; ++i) {
    net::HttpResponse response = door.get(
        "/ei_algorithms/safety/detection?input=[[1,2,3,4,5,6,7,8]]&session=s" +
        std::to_string(i));
    if (response.status == 200) ++ok;
  }
  std::printf("  served %zu/%d requests  (failovers so far: %.0f)\n", ok,
              requests,
              fleet.router()
                  .meter()
                  .counter("ei_fleet_failovers_total")
                  .value());
  return ok;
}

}  // namespace

int main() {
  std::printf("=== OpenEI sharded fleet: kill a node, lose no requests ===\n\n");

  common::Rng rng(23);
  fleet::FleetOptions options;
  options.nodes = 4;
  options.router.replication = 2;
  options.router.probe_every = 8;
  fleet::Fleet fleet(options);
  fleet.deploy("safety", "detection",
               nn::zoo::make_mlp("detector_v1", 8, 3, {12}, rng), 0.91);
  std::uint16_t port = fleet.router().start_server();
  net::HttpClient door(port);
  std::printf("front door: http://127.0.0.1:%u  (try /ei_fleet, /ei_metrics)\n\n",
              port);

  std::printf("[1] healthy fleet, replication 2:\n");
  print_topology(door);
  serve(fleet, door, 32);

  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  std::size_t victim = fleet.index_of(owners.front());
  std::printf("\n[2] killing %s — the primary owner of safety/detection:\n",
              owners.front().c_str());
  fleet.kill(victim);
  serve(fleet, door, 32);  // first request fails over, ring rebalances
  print_topology(door);

  std::printf("\n[3] reviving %s — routed traffic probes it back in:\n",
              owners.front().c_str());
  fleet.revive(victim);
  serve(fleet, door, 32);  // count-gated probes readmit the node
  print_topology(door);

  bool restored = fleet.router().owners_of("safety/detection") == owners;
  std::printf("\noriginal placement restored: %s\n", restored ? "yes" : "no");
  return restored ? 0 : 1;
}
