// Smart home (paper Sec. V-C): non-intrusive appliance state recognition
// (IEHouse-style power monitoring) on a home gateway.
//
// The home's privacy argument in action: appliance power signatures are
// classified on the gateway, never uploaded.  On a gateway-class device the
// EI algorithms of Sec. IV-A2 (Bonsai, ProtoNN) compete with a small MLP —
// the example prints the accuracy / model-size / FLOPs tradeoff, then shows
// local personalization after the household's usage pattern drifts.
#include <cstdio>

#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "eialg/bonsai.h"
#include "eialg/protonn.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/inference.h"

using namespace openei;

int main() {
  std::printf("=== Smart home: appliance recognition on the gateway ===\n\n");

  // Power signatures: 24 features (harmonics, transients), 5 appliances.
  common::Rng rng(13);
  auto signatures = data::make_blobs(800, 24, 5, rng, 2.5F);
  auto [train, test] = data::train_test_split(signatures, 0.8, rng);

  // Candidate classifiers on the gateway.
  nn::Model mlp = nn::zoo::make_mlp("power_mlp", 24, 5, {32}, rng);
  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(mlp, train, topt);

  eialg::BonsaiTree bonsai{eialg::BonsaiOptions{.projection_dim = 10,
                                                .max_depth = 6}};
  bonsai.fit(train);
  eialg::ProtoNn protonn{eialg::ProtoNnOptions{.projection_dim = 10,
                                               .prototypes_per_class = 3}};
  protonn.fit(train);

  std::printf("%-12s %9s %12s %10s\n", "model", "accuracy", "size (B)", "FLOPs");
  std::printf("%-12s %9.3f %12zu %10zu\n", "mlp",
              nn::evaluate_accuracy(mlp, test),
              mlp.storage_bytes(), mlp.flops_per_sample());
  std::printf("%-12s %9.3f %12zu %10zu\n", bonsai.name().c_str(),
              eialg::evaluate(bonsai, test), bonsai.model_size_bytes(),
              bonsai.flops_per_sample());
  std::printf("%-12s %9.3f %12zu %10zu\n\n", protonn.name().c_str(),
              eialg::evaluate(protonn, test), protonn.model_size_bytes(),
              protonn.flops_per_sample());

  // Deploy the MLP behind the paper's URL for the scenario:
  // http://ip:port/ei_algorithms/home/power_monitor
  core::EdgeNode gateway(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                              hwsim::openei_package(), 256});
  double mlp_accuracy = nn::evaluate_accuracy(mlp, test);
  gateway.deploy_model("home", "power_monitor", mlp.clone(), mlp_accuracy);

  common::JsonArray reading;
  for (std::size_t f = 0; f < 24; ++f) {
    reading.emplace_back(static_cast<double>(test.features.at2(0, f)));
  }
  auto response = gateway.call(
      "GET", "/ei_algorithms/home/power_monitor?input=" +
                 common::Json(common::JsonArray{common::Json(std::move(reading))})
                     .dump());
  std::printf("GET /ei_algorithms/home/power_monitor -> %d\n  %s\n\n",
              response.status, response.body.substr(0, 150).c_str());

  // The household's habits drift (new appliances, seasonal loads):
  // personalize on the gateway — data never leaves the home.
  common::Rng drift_rng(14);
  auto local = data::apply_drift(signatures, drift_rng, 0.8F);
  common::Rng split_rng(15);
  auto [local_train, local_test] = data::train_test_split(local, 0.7, split_rng);

  double degraded = nn::evaluate_accuracy(mlp, local_test);
  nn::TrainOptions retrain;
  retrain.epochs = 15;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;
  auto personalized = runtime::retrain_head_locally(
      mlp, local_train, hwsim::openei_package(), hwsim::raspberry_pi_4(),
      retrain);
  std::printf("usage drift: general model %.3f -> personalized %.3f "
              "(retrained on-gateway in %.1f simulated s, %.1f J)\n",
              degraded, nn::evaluate_accuracy(personalized.model, local_test),
              personalized.simulated_latency_s, personalized.simulated_energy_j);

  std::printf("\n=== smart home example complete ===\n");
  return 0;
}
