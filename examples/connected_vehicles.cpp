// Connected and Autonomous Vehicles (paper Sec. V-B).
//
// A vehicle's on-board unit must classify camera frames under a hard
// latency budget.  The example exercises three OpenEI mechanisms:
//   1. Eq. 1 with a latency constraint: select the most accurate on-board
//      model that still meets the deadline;
//   2. the Fig. 1 motivation in numbers: uploading camera data over LTE
//      versus processing on-board;
//   3. edge-edge collaboration: split inference between the vehicle and a
//      roadside edge server, finding the latency-optimal split layer.
#include <cstdio>

#include "collab/cloud_edge.h"
#include "collab/edge_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"

using namespace openei;

int main() {
  std::printf("=== CAV: perception under a latency deadline ===\n\n");

  common::Rng rng(17);
  auto frames = data::make_images(300, 3, 12, 4, rng, 0.3F);
  auto [train, test] = data::train_test_split(frames, 0.8, rng);

  nn::zoo::ImageSpec spec;
  spec.channels = 3;
  spec.size = 12;
  spec.classes = 4;

  // Train the on-board candidate zoo (briefly — shapes matter, not SOTA).
  nn::TrainOptions topt;
  topt.epochs = 5;
  topt.batch_size = 24;
  topt.sgd.learning_rate = 0.03F;
  topt.sgd.momentum = 0.9F;
  std::vector<nn::Model> candidates;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    nn::fit(model, train, topt);
    candidates.push_back(std::move(model));
  }

  // 1. Equation 1 on the vehicle's compute unit with a 10 ms deadline.
  auto vehicle = hwsim::jetson_tx2();  // DRIVE-PX2-class on-board unit
  selector::CapabilityDatabase db = selector::CapabilityDatabase::build(
      candidates, {hwsim::openei_package()}, {vehicle}, test);

  std::printf("on-board capability slice (%s):\n", vehicle.name.c_str());
  for (const auto& entry : db.entries()) {
    std::printf("  %-20s acc %.3f  latency %7.3f ms  mem %6zu kB\n",
                entry.model_name.c_str(), entry.alem.accuracy,
                entry.alem.latency_s * 1e3, entry.alem.memory_bytes >> 10);
  }

  selector::SelectionRequest request;
  request.objective = selector::Objective::kMaxAccuracy;
  request.requirements.max_latency_s = 0.010;  // 10 ms perception budget
  request.device_name = vehicle.name;
  auto chosen = selector::select(db, request);
  if (chosen.has_value()) {
    std::printf("\nEq. 1 (max accuracy s.t. L <= 10 ms) picks: %s "
                "(acc %.3f, %.3f ms)\n\n",
                chosen->model_name.c_str(), chosen->alem.accuracy,
                chosen->alem.latency_s * 1e3);
  } else {
    std::printf("\nno model meets the 10 ms budget\n\n");
  }

  // 2. Fig. 1 motivation: offloading camera data vs on-board inference.
  const nn::Model& model = candidates.front();
  auto lte = hwsim::cellular_lte();
  auto offload = collab::dataflow_cloud_inference(
      model, test, hwsim::cloud_gpu(), hwsim::full_framework(), lte);
  auto onboard = collab::dataflow_edge_inference(model, test, vehicle,
                                                 hwsim::openei_package(), lte);
  std::printf("cloud offload over LTE: %.2f ms/frame, %.0f B/frame\n",
              offload.latency_per_inference_s * 1e3, offload.bytes_per_inference);
  std::printf("on-board inference:     %.2f ms/frame, %.1f B/frame (amortized"
              " model download)\n\n",
              onboard.latency_per_inference_s * 1e3, onboard.bytes_per_inference);

  // 3. Vehicle <-> roadside edge server split inference (DDNN-style).
  auto roadside = hwsim::edge_server();
  auto link = hwsim::wifi();  // DSRC/11p-class roadside link
  collab::SplitPoint split = collab::best_split(model, hwsim::openei_package(),
                                                vehicle, roadside, link);
  collab::SplitPoint all_local = collab::evaluate_split(
      model, model.layer_count(), hwsim::openei_package(), vehicle, roadside,
      link);
  std::printf("split inference %s -> %s: best split after layer %zu "
              "(%.3f ms, ships %zu B) vs all-on-vehicle %.3f ms\n",
              vehicle.name.c_str(), roadside.name.c_str(), split.layer,
              split.latency_s * 1e3, split.transfer_bytes,
              all_local.latency_s * 1e3);

  // Functional proof that the split computes the same answer.
  nn::Model front = model.clone();
  nn::Model back = model.clone();
  nn::Model local = model.clone();
  nn::Tensor batch = data::Dataset{test}.slice(0, 4).features;
  bool identical =
      collab::split_forward(front, back, split.layer, batch)
          .all_close(local.forward(batch, false), 1e-4F);
  std::printf("split output identical to local output: %s\n",
              identical ? "yes" : "NO");

  std::printf("\n=== CAV example complete ===\n");
  return 0;
}
