// Fleet status — interoperability in practice (paper Sec. III-A:
// "interoperability ... libei provides RESTful API for the edge to
// communicate and work with others").
//
// Three heterogeneous OpenEI nodes run simultaneously; a fleet operator's
// client discovers each node's state purely over HTTP (/ei_status,
// /ei_data/stats, /ei_models) and prints a live fleet table — no shared
// memory, no node-specific code paths: the heterogeneity of the hardware is
// transparent behind the uniform API.
#include <cstdio>

#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

using namespace openei;

int main() {
  std::printf("=== OpenEI fleet status over the uniform RESTful API ===\n\n");

  common::Rng rng(23);
  struct Member {
    std::unique_ptr<core::EdgeNode> node;
    std::uint16_t port = 0;
  };
  std::vector<Member> fleet;

  // Bring up three very different edges the same way — deploy and play.
  for (const auto& device : {hwsim::raspberry_pi_3(), hwsim::mobile_phone(),
                             hwsim::jetson_tx2()}) {
    Member member;
    member.node = std::make_unique<core::EdgeNode>(
        core::EdgeNodeConfig{device, hwsim::openei_package(), 256});
    member.port = member.node->start_server(0);
    fleet.push_back(std::move(member));
  }

  // Give each node a workload: a model and a sensor stream.
  const char* scenarios[] = {"home", "health", "vehicles"};
  const char* algorithms[] = {"power_monitor", "activity_recognition",
                              "tracking"};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].node->deploy_model(
        scenarios[i], algorithms[i],
        nn::zoo::make_mlp(std::string(algorithms[i]) + "_v1", 8, 3, {12}, rng),
        0.85 + 0.03 * static_cast<double>(i));
    for (int t = 0; t < 20; ++t) {
      fleet[i].node->ingest("sensor0", static_cast<double>(t),
                            common::Json(rng.uniform(10.0, 20.0)));
    }
  }

  // The operator inspects the fleet purely over HTTP.
  std::printf("%-18s %-10s %-26s %-8s %14s\n", "device", "gflops", "model",
              "records", "sensor mean");
  for (const Member& member : fleet) {
    net::HttpClient client(member.port);
    common::Json status = common::Json::parse(client.get("/ei_status").body);
    common::Json stats = common::Json::parse(
        client.get("/ei_data/stats/sensor0?start=0&end=100").body);
    std::printf("%-18s %-10.1f %-26s %-8lld %14.2f\n",
                status.at("device").as_string().c_str(),
                status.at("effective_gflops").as_number(),
                status.at("models").at(std::size_t{0}).as_string().c_str(),
                static_cast<long long>(stats.at("count").as_int()),
                stats.at("mean").as_number());
  }

  // Cross-node model sharing: the Pi pulls the Jetson's tracker.
  fleet[0].node->fetch_model_from_peer(fleet[2].port, "tracking_v1");
  std::printf("\nraspberry-pi-3 pulled 'tracking_v1' from jetson-tx2 -> now "
              "serves %zu models\n",
              fleet[0].node->registry().size());

  for (Member& member : fleet) member.node->stop_server();
  std::printf("\n=== fleet status example complete ===\n");
  return 0;
}
