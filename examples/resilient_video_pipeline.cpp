// Resilient video pipeline — the Sec. IV-C availability requirements in one
// runnable scenario: a camera streams frames into an edge node's data store;
// the package manager's streaming pipeline drains and classifies them; the
// detection API is replicated on a backup node and a failover client rides
// through the primary's death without dropping service.
#include <cstdio>
#include <memory>

#include "collab/cloud_edge.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "core/failover.h"
#include "net/faults.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/pipeline.h"

using namespace openei;

int main() {
  std::printf("=== resilient video pipeline: streaming + failover ===\n\n");

  // Train one detector; both replicas carry identical weights.
  common::Rng rng(29);
  auto frames = data::make_blobs(500, 16, 3, rng);
  auto [train, test] = data::train_test_split(frames, 0.8, rng);
  common::Rng model_rng(30);
  nn::Model detector = nn::zoo::make_mlp("detector", 16, 3, {24}, model_rng);
  nn::TrainOptions topt;
  topt.epochs = 20;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(detector, train, topt);
  double accuracy = nn::evaluate_accuracy(detector, test);

  // 1. Streaming half: a 30 fps camera against the Pi's sustainable rate.
  core::EdgeNode camera_node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                                  hwsim::openei_package(), 4096});
  runtime::InferenceSession session(detector.clone(), camera_node.package(),
                                    camera_node.device());
  runtime::StreamingPipeline pipeline(std::move(session), camera_node.store(),
                                      "cam0");
  std::printf("pipeline sustainable rate on %s: %.0f fps (camera: 30 fps)\n",
              camera_node.device().name.c_str(), pipeline.sustainable_fps());

  double fps = 30.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    common::JsonArray features;
    for (std::size_t f = 0; f < 16; ++f) {
      features.emplace_back(static_cast<double>(test.features.at2(i, f)));
    }
    camera_node.ingest("cam0", static_cast<double>(i) / fps,
                       common::Json(std::move(features)));
  }
  // Drain in two passes (mid-stream, then right after the last frame).
  double mid = static_cast<double>(test.size()) / fps / 2.0;
  double end = static_cast<double>(test.size()) / fps;
  auto pass1 = pipeline.process_available(mid);
  auto pass2 = pipeline.process_available(end);
  std::vector<std::size_t> predictions = pass1.predictions;
  predictions.insert(predictions.end(), pass2.predictions.begin(),
                     pass2.predictions.end());
  std::printf("processed %zu + %zu frames; stream accuracy %.3f; worst frame "
              "waited %.1f ms\n\n",
              pass1.processed, pass2.processed,
              data::accuracy(predictions, test.labels),
              1e3 * std::max(pass1.max_frame_latency_s,
                             pass2.max_frame_latency_s));

  // 2. Failover half: replicate the detection API, kill the primary.
  core::EdgeNode primary(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                              hwsim::openei_package(), 64});
  core::EdgeNode backup(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                             hwsim::openei_package(), 64});
  primary.deploy_model("safety", "detection", detector.clone(), accuracy);
  backup.deploy_model("safety", "detection", detector.clone(), accuracy);
  core::FailoverClient client({primary.start_server(0), backup.start_server(0)});

  std::string target = "/ei_algorithms/safety/detection?input=[" +
                       [&] {
                         std::string row;
                         for (std::size_t f = 0; f < 16; ++f) {
                           if (f > 0) row += ",";
                           row += std::to_string(test.features.at2(0, f));
                         }
                         return row;
                       }() +
                       "]";

  auto before = client.get(target);
  std::printf("request via replica %zu -> %d\n", client.active_replica(),
              before.status);
  std::printf("!! primary goes down\n");
  primary.stop_server();
  auto after = client.get(target);
  std::printf("request via replica %zu -> %d (failovers: %zu)\n",
              client.active_replica(), after.status, client.failover_count());
  bool same = common::Json::parse(before.body).at("predictions") ==
              common::Json::parse(after.body).at("predictions");
  std::printf("prediction identical across failover: %s\n", same ? "yes" : "NO");

  backup.stop_server();

  // 3. Degradation half: the backup comes back as a *flaky* upstream — a
  // seeded FaultPlan batters the detection route with 5xx bursts, mid-stream
  // resets and latency spikes while a degrading client falls back to its
  // local copy of the detector instead of surfacing errors to the caller.
  std::printf("\n!! backup restarts with a deterministic fault plan\n");
  auto plan = std::make_shared<net::FaultPlan>(97);
  plan->add({.path_prefix = "/ei_algorithms",
             .kind = net::FaultKind::kErrorBurst,
             .probability = 0.35})
      .add({.path_prefix = "/ei_algorithms",
            .kind = net::FaultKind::kResetMidStream,
            .probability = 0.25})
      .add({.path_prefix = "/ei_algorithms",
            .kind = net::FaultKind::kInjectDelay,
            .probability = 0.2,
            .delay_s = 0.01});
  net::HttpServer::Options faulty;
  faulty.faults = plan;
  std::uint16_t flaky_port = backup.start_server(0, faulty);

  net::ResilientClient::Options copts;
  copts.deadline_s = 0.5;
  copts.retry.max_attempts = 2;
  copts.retry.initial_backoff_s = 0.002;
  copts.breaker.failure_threshold = 3;
  copts.breaker.open_duration_s = 0.02;
  collab::ResilientCloudEdge degrading(
      flaky_port, "/ei_algorithms/safety/detection", detector.clone(),
      hwsim::openei_package(), hwsim::raspberry_pi_4(), copts);

  std::size_t cloud_ok = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    std::string row = "[";
    for (std::size_t f = 0; f < 16; ++f) {
      if (f > 0) row += ",";
      row += std::to_string(test.features.at2(i, f));
    }
    row += "]";
    try {
      auto outcome = degrading.classify(row);
      if (outcome.status != 200) {
        ++failed;
      } else if (outcome.served_by == "cloud") {
        ++cloud_ok;
      } else {
        ++degraded;
      }
    } catch (const std::exception&) {
      ++failed;
    }
  }
  std::printf("30 frames under faults (%zu/%zu upstream requests faulted):\n",
              plan->injected_count(), plan->request_count());
  std::printf("  served by cloud: %zu, degraded to local: %zu, failed: %zu\n",
              cloud_ok, degraded, failed);
  std::printf("  cloud breaker now: %s\n",
              net::to_string(degrading.cloud_circuit_state()));

  backup.stop_server();
  std::printf("\n=== resilient pipeline example complete ===\n");
  return 0;
}
