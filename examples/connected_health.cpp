// Smart and connected health (paper Sec. V-D).
//
// Wearable sensors classify activity/emotion from accelerometer-style
// time-series.  The example shows:
//   1. a FastGRNN-style compact RNN running on a wearable-class budget
//      (paper Sec. IV-A2: EMI-RNN/FastGRNN for sequence workloads);
//   2. privacy-preserving collaboration: three patients' devices improve a
//      shared model via federated rounds — raw vitals never leave the
//      device, only model weights do (Sec. II-C cloud-edge collaboration).
#include <cstdio>

#include "collab/cloud_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "eialg/fastgrnn.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

int main() {
  std::printf("=== Connected health: HAR on wearables ===\n\n");

  // 1. Activity recognition with a compact gated RNN.
  common::Rng rng(19);
  eialg::FastGrnnOptions options;
  options.steps = 16;
  options.input_dims = 3;  // tri-axial accelerometer
  options.hidden = 16;
  options.epochs = 12;
  options.learning_rate = 0.08F;
  auto har = data::make_sequences(600, options.steps, options.input_dims, 4, rng);
  auto [train, test] = data::train_test_split(har, 0.8, rng);

  eialg::FastGrnn rnn(options);
  rnn.fit(train);
  std::printf("FastGRNN activity recognizer: accuracy %.3f, %zu params "
              "(%zu B — wearable-class), %zu FLOPs/window\n\n",
              eialg::evaluate(rnn, test), rnn.param_count(),
              rnn.model_size_bytes(), rnn.flops_per_sample());

  // 2. Federated personalization across three patients.
  //    Each patient's motion patterns differ (per-patient drift); their
  //    wearables fine-tune locally and only weights are shared.
  auto pooled = data::make_blobs(900, 12, 3, rng, 2.0F, 1.2F);
  std::vector<data::Dataset> patients;
  common::Rng drift_rng(20);
  for (int p = 0; p < 3; ++p) {
    auto shard = pooled.slice(p * 300, (p + 1) * 300);
    patients.push_back(data::apply_drift(shard, drift_rng, 0.3F * (p + 1)));
  }

  nn::Model global = nn::zoo::make_mlp("vitals_classifier", 12, 3, {16}, rng);
  std::vector<hwsim::DeviceProfile> wearables(3, hwsim::mobile_phone());
  nn::TrainOptions retrain;
  retrain.epochs = 6;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;

  std::printf("federated rounds (3 patients, weights-only sharing over LTE):\n");
  for (int round = 1; round <= 3; ++round) {
    collab::FederatedRoundResult result = collab::federated_round(
        global, patients, wearables, hwsim::openei_package(),
        hwsim::cellular_lte(), retrain);
    global = std::move(result.global_model);
    double mean_acc = 0.0;
    for (const auto& patient : patients) {
      mean_acc += nn::evaluate_accuracy(global, patient);
    }
    mean_acc /= static_cast<double>(patients.size());
    std::printf("  round %d: mean on-patient accuracy %.3f, %zu kB transferred,"
                " %.1f s round latency\n",
                round, mean_acc, result.bytes_transferred >> 10,
                result.round_latency_s);
  }

  std::printf("\nraw vitals transferred to the cloud: 0 bytes\n");
  std::printf("\n=== connected health example complete ===\n");
  return 0;
}
