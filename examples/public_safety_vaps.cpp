// Video Analytics in Public Safety (paper Sec. V-A).
//
// A street camera backed by an edge server runs firearm detection on video
// frames.  The example shows both aspects the paper calls out:
//   - algorithm side: a compressed lightweight CNN against the full model
//     (frames never leave the edge — the privacy/bandwidth argument);
//   - system side: the real-time ML module guarantees that urgent
//     amber-alert inferences preempt background video indexing.
#include <cstdio>

#include "common/rng.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "core/edge_node.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/realtime.h"

using namespace openei;

int main() {
  std::printf("=== VAPS: firearm detection on an edge camera node ===\n\n");

  // Synthetic surveillance frames: 3-channel 12x12, 3 classes
  // (background / person / person-with-firearm).
  common::Rng rng(11);
  auto frames = data::make_images(360, 3, 12, 3, rng, 0.3F);
  auto [train, test] = data::train_test_split(frames, 0.8, rng);

  nn::zoo::ImageSpec spec;
  spec.channels = 3;
  spec.size = 12;
  spec.classes = 3;
  nn::Model detector = nn::zoo::make_mini_squeezenet(spec, rng);
  nn::TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 24;
  topt.sgd.learning_rate = 0.03F;
  topt.sgd.momentum = 0.9F;
  nn::fit(detector, train, topt);

  double accuracy = nn::evaluate_accuracy(detector, test);
  auto map = data::mean_average_precision(detector.predict(test.features),
                                          test.labels, 3);
  std::printf("firearm detector (mini_squeezenet): accuracy %.3f, mAP-proxy %.3f,"
              " %zu params\n",
              accuracy, map, detector.param_count());

  // Algorithm aspect: compress for the camera-attached edge.
  compress::PruneOptions prune;
  prune.sparsity = 0.6F;
  prune.finetune_epochs = 2;
  prune.train.batch_size = 24;
  prune.train.sgd.learning_rate = 0.01F;
  auto pruned = compress::magnitude_prune(detector, prune, &train);
  auto quantized = compress::quantize_int8(detector);
  std::printf("  pruned:    %6zu B (%.1fx), accuracy %.3f\n", pruned.storage_bytes,
              static_cast<double>(detector.storage_bytes()) /
                  static_cast<double>(pruned.storage_bytes),
              nn::evaluate_accuracy(pruned.model, test));
  std::printf("  quantized: %6zu B (%.1fx), accuracy %.3f\n\n",
              quantized.storage_bytes,
              static_cast<double>(detector.storage_bytes()) /
                  static_cast<double>(quantized.storage_bytes),
              nn::evaluate_accuracy(quantized.model, test));

  // Deploy both variants on the edge node; the selector arbitrates.
  core::EdgeNode camera_node(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                                  hwsim::openei_package(), 512});
  camera_node.deploy_model("safety", "firearm_detection", detector.clone(),
                           accuracy);
  double pruned_accuracy = nn::evaluate_accuracy(pruned.model, test);
  camera_node.deploy_model("safety", "firearm_detection", std::move(pruned.model),
                           pruned_accuracy);

  common::JsonArray pixels;
  for (std::size_t i = 0; i < 3 * 12 * 12; ++i) {
    pixels.emplace_back(static_cast<double>(test.features[i]));
  }
  auto response = camera_node.call(
      "GET", "/ei_algorithms/safety/firearm_detection?input=" +
                 common::Json(common::JsonArray{common::Json(std::move(pixels))})
                     .dump());
  std::printf("REST call /ei_algorithms/safety/firearm_detection -> %d\n  %s\n\n",
              response.status, response.body.substr(0, 160).c_str());

  // System aspect: amber-alert requests preempt background video indexing.
  hwsim::InferenceCost per_frame = hwsim::estimate_inference(
      detector, hwsim::openei_package(), hwsim::jetson_tx2());
  std::vector<runtime::MlTask> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back({"index_batch_" + std::to_string(i), i * 0.02,
                     per_frame.latency_s * 64, runtime::TaskPriority::kBestEffort});
  }
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({"amber_alert_" + std::to_string(i), 0.1 + i * 0.15,
                     per_frame.latency_s, runtime::TaskPriority::kUrgent});
  }
  auto fifo = runtime::simulate_schedule(tasks, runtime::SchedulingPolicy::kFifo);
  auto rt = runtime::simulate_schedule(
      tasks, runtime::SchedulingPolicy::kPriorityPreemptive);
  std::printf("amber-alert p99 response: FIFO %.1f ms vs real-time module %.2f ms"
              " (%.0fx better)\n",
              1e3 * runtime::response_percentile(fifo, 99,
                                                 runtime::TaskPriority::kUrgent),
              1e3 * runtime::response_percentile(rt, 99,
                                                 runtime::TaskPriority::kUrgent),
              runtime::response_percentile(fifo, 99,
                                           runtime::TaskPriority::kUrgent) /
                  runtime::response_percentile(rt, 99,
                                               runtime::TaskPriority::kUrgent));

  std::printf("\n=== VAPS example complete ===\n");
  return 0;
}
