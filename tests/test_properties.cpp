// Cross-module property tests: randomized invariants checked over
// parameterized seeds — the behaviours that must hold for *any* input, not
// just the curated cases in the per-module suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>

#include "common/rng.h"
#include "stream/frame_queue.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "hwsim/power.h"
#include "net/request_parser.h"
#include "runtime/energy_governor.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/model_registry.h"
#include "runtime/session_cache.h"
#include "runtime/realtime.h"
#include "selector/capability_db.h"
#include "selector/rl_selector.h"
#include "selector/selecting_algorithm.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

namespace openei {
namespace {

using common::Rng;

// ---------------------------------------------------------------------------
// Scheduler invariants under random task sets.
// ---------------------------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<runtime::MlTask> random_tasks(Rng& rng, std::size_t count) {
  std::vector<runtime::MlTask> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back({"t" + std::to_string(i), rng.uniform(0.0, 5.0),
                     rng.uniform(0.01, 0.5),
                     rng.flip(0.25) ? runtime::TaskPriority::kUrgent
                                    : runtime::TaskPriority::kBestEffort});
  }
  return tasks;
}

TEST_P(SchedulerProperty, WorkConservationAndCompleteness) {
  Rng rng(GetParam());
  auto tasks = random_tasks(rng, 30);
  double total_work = 0.0;
  double latest_arrival = 0.0;
  for (const auto& task : tasks) {
    total_work += task.duration_s;
    latest_arrival = std::max(latest_arrival, task.arrival_s);
  }

  for (auto policy : {runtime::SchedulingPolicy::kFifo,
                      runtime::SchedulingPolicy::kPriorityPreemptive}) {
    auto done = runtime::simulate_schedule(tasks, policy);
    // Completeness: every task finishes exactly once.
    ASSERT_EQ(done.size(), tasks.size());
    // No task finishes before its arrival + duration.
    for (const auto& completed : done) {
      EXPECT_GE(completed.finish_s + 1e-9,
                completed.task.arrival_s + completed.task.duration_s);
      EXPECT_GE(completed.start_s + 1e-9, completed.task.arrival_s);
    }
    // Work conservation: the single worker cannot finish earlier than
    // total work, nor later than latest arrival + total work.
    double makespan = done.back().finish_s;
    EXPECT_GE(makespan + 1e-9, total_work);
    EXPECT_LE(makespan, latest_arrival + total_work + 1e-9);
  }
}

TEST_P(SchedulerProperty, PreemptionNeverHurtsUrgentTasks) {
  Rng rng(GetParam() + 1000);
  auto tasks = random_tasks(rng, 25);
  // Make sure both classes exist.
  tasks.push_back({"u", 0.5, 0.1, runtime::TaskPriority::kUrgent});
  tasks.push_back({"b", 0.5, 0.1, runtime::TaskPriority::kBestEffort});

  auto fifo = runtime::simulate_schedule(tasks, runtime::SchedulingPolicy::kFifo);
  auto preemptive = runtime::simulate_schedule(
      tasks, runtime::SchedulingPolicy::kPriorityPreemptive);
  double fifo_mean = runtime::response_percentile(
      fifo, 50, runtime::TaskPriority::kUrgent);
  double rt_mean = runtime::response_percentile(
      preemptive, 50, runtime::TaskPriority::kUrgent);
  EXPECT_LE(rt_mean, fifo_mean + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Selector invariants.
// ---------------------------------------------------------------------------

selector::CapabilityDatabase random_db(Rng& rng, std::size_t entries) {
  selector::CapabilityDatabase db;
  const char* devices[] = {"dev-a", "dev-b"};
  for (std::size_t i = 0; i < entries; ++i) {
    selector::CapabilityEntry entry;
    entry.model_name = "m" + std::to_string(i);
    entry.package_name = "p" + std::to_string(i % 3);
    entry.device_name = devices[i % 2];
    entry.alem.accuracy = rng.uniform(0.3, 1.0);
    entry.alem.latency_s = rng.uniform(1e-5, 1e-1);
    entry.alem.energy_j = rng.uniform(1e-6, 1e-2);
    entry.alem.memory_bytes = static_cast<std::size_t>(rng.uniform_int(1000, 1000000));
    entry.deployable = rng.flip(0.85);
    db.add(std::move(entry));
  }
  return db;
}

class SelectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectorProperty, SelectEqualsRankFront) {
  Rng rng(GetParam());
  auto db = random_db(rng, 40);
  for (auto objective :
       {selector::Objective::kMinLatency, selector::Objective::kMaxAccuracy,
        selector::Objective::kMinEnergy, selector::Objective::kMinMemory}) {
    selector::SelectionRequest request;
    request.objective = objective;
    request.device_name = "dev-a";
    request.requirements.min_accuracy = rng.uniform(0.0, 0.9);
    request.requirements.max_energy_j = rng.uniform(1e-4, 1e-2);

    auto picked = selector::select(db, request);
    auto ranked = selector::rank(db, request);
    if (ranked.empty()) {
      EXPECT_FALSE(picked.has_value());
    } else {
      ASSERT_TRUE(picked.has_value());
      // The pick is exactly as good as the rank front on the objective.
      EXPECT_FALSE(selector::better(ranked.front().alem, picked->alem, objective));
      EXPECT_FALSE(selector::better(picked->alem, ranked.front().alem, objective));
    }
  }
}

TEST_P(SelectorProperty, FrontierMembersAreMutuallyNonDominating) {
  Rng rng(GetParam() + 77);
  auto db = random_db(rng, 30);
  auto frontier = selector::pareto_frontier(db, "");
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      if (&a == &b) continue;
      EXPECT_FALSE(selector::dominates(a.alem, b.alem));
    }
  }
}

TEST_P(SelectorProperty, DatabaseJsonRoundTrip) {
  Rng rng(GetParam() + 1234);
  auto db = random_db(rng, 20);
  auto rebuilt = selector::CapabilityDatabase::from_json(
      common::Json::parse(db.to_json().dump()));
  ASSERT_EQ(rebuilt.entries().size(), db.entries().size());
  for (std::size_t i = 0; i < db.entries().size(); ++i) {
    const auto& a = db.entries()[i];
    const auto& b = rebuilt.entries()[i];
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.package_name, b.package_name);
    EXPECT_EQ(a.device_name, b.device_name);
    EXPECT_EQ(a.deployable, b.deployable);
    EXPECT_DOUBLE_EQ(a.alem.accuracy, b.alem.accuracy);
    EXPECT_DOUBLE_EQ(a.alem.latency_s, b.alem.latency_s);
    EXPECT_DOUBLE_EQ(a.alem.energy_j, b.alem.energy_j);
    EXPECT_EQ(a.alem.memory_bytes, b.alem.memory_bytes);
  }
  // Semantics preserved: same selection results.
  selector::SelectionRequest request;
  request.device_name = "dev-a";
  auto original = selector::select(db, request);
  auto from_copy = selector::select(rebuilt, request);
  ASSERT_EQ(original.has_value(), from_copy.has_value());
  if (original) {
    EXPECT_EQ(original->model_name, from_copy->model_name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Model registry under concurrent access.
// ---------------------------------------------------------------------------

TEST(RegistryConcurrency, ParallelPutGetFindNeverCorrupts) {
  runtime::ModelRegistry registry;
  Rng seed_rng(99);
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&registry, &failed, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 1);
      try {
        for (int i = 0; i < 50; ++i) {
          std::string name = "model_" + std::to_string(w) + "_" +
                             std::to_string(i % 5);
          registry.put({"scenario", "algo",
                        nn::zoo::make_mlp(name, 4, 2, {4}, rng), 0.5});
          auto entry = registry.get(name);
          if (entry->scenario != "scenario") failed = true;
          registry.find("scenario", "algo");
          registry.names();
          if (i % 7 == 0) registry.erase(name);
        }
      } catch (const openei::NotFound&) {
        // A concurrent erase raced a get — acceptable; corruption is not.
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_FALSE(failed.load());
  // Registry still consistent: every listed name is fetchable.
  for (const auto& name : registry.names()) {
    EXPECT_NO_THROW(registry.get(name));
  }
}

// ---------------------------------------------------------------------------
// Session-cache LRU invariants under random operation sequences.
// ---------------------------------------------------------------------------

class LifecycleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleProperty, LruInvariantsHoldUnderRandomOps) {
  Rng rng(GetParam());
  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  hwsim::PackageSpec package = hwsim::openei_package();
  const std::vector<std::string> names{"m0", "m1", "m2", "m3"};

  runtime::ModelRegistry registry;
  for (const std::string& name : names) {
    registry.put({"s", "a", nn::zoo::make_mlp(name, 4, 2, {4}, rng), 0.5});
  }
  // Identical architectures -> identical session footprints; a budget of
  // 2.5 sessions means exactly two can be resident.
  std::size_t session_bytes =
      hwsim::estimate_inference(registry.get("m0")->model, package, device)
          .memory_bytes;
  constexpr std::size_t kCapacity = 2;
  runtime::SessionCache::Options options;
  options.budget_bytes = kCapacity * session_bytes + session_bytes / 2;
  runtime::SessionCache cache(registry, package, device, options);

  // Reference model: MRU-at-back list of (name, stale) mirroring the cache's
  // contract — hit moves to MRU, swap marks stale (retired on next acquire),
  // miss evicts from the cold end until the newcomer fits.
  std::vector<std::pair<std::string, bool>> mirror;
  std::uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
  auto in_mirror = [&](const std::string& name) {
    return std::find_if(mirror.begin(), mirror.end(), [&](const auto& slot) {
             return slot.first == name;
           });
  };

  for (int op = 0; op < 200; ++op) {
    const std::string& name =
        names[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    double dice = rng.uniform();
    if (dice < 0.15) {  // hot-swap: the resident session (if any) goes stale
      registry.put({"s", "a", nn::zoo::make_mlp(name, 4, 2, {4}, rng), 0.5});
      if (auto it = in_mirror(name); it != mirror.end()) it->second = true;
    } else if (dice < 0.18) {  // wholesale clear
      cache.clear();
      mirror.clear();
    } else {  // acquire
      auto it = in_mirror(name);
      if (it != mirror.end() && !it->second) {
        ++hits;
        std::pair<std::string, bool> slot = *it;
        mirror.erase(it);
        mirror.push_back(std::move(slot));  // hit -> MRU
      } else {
        if (it != mirror.end()) {  // stale resident retires first
          ++invalidations;
          mirror.erase(it);
        }
        ++misses;
        while (mirror.size() >= kCapacity) {  // evict coldest first
          ++evictions;
          mirror.erase(mirror.begin());
        }
        mirror.push_back({name, false});
      }
      runtime::SessionCache::Lease lease = cache.acquire(name);
      ASSERT_EQ(lease.entry.get(), registry.get(name).get());
    }

    runtime::SessionCache::Stats stats = cache.stats();
    // Invariant 1: resident bytes never exceed the budget.
    ASSERT_LE(stats.resident_bytes, stats.budget_bytes);
    ASSERT_EQ(stats.resident_bytes, stats.resident_sessions * session_bytes);
    // Invariant 2+3: residency set and eviction (recency) order match the
    // reference LRU exactly — the MRU is never evicted while colder
    // residents exist, and evictions happen strictly coldest-first.
    std::vector<std::string> expected;
    for (const auto& [slot_name, stale] : mirror) expected.push_back(slot_name);
    ASSERT_EQ(cache.resident_by_recency(), expected) << "op " << op;
    // Invariant 4: counters replay the reference history.
    ASSERT_EQ(stats.hits, hits);
    ASSERT_EQ(stats.misses, misses);
    ASSERT_EQ(stats.evictions, evictions);
    ASSERT_EQ(stats.invalidations, invalidations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleProperty,
                         ::testing::Values(5, 17, 23, 61, 97));

// ---------------------------------------------------------------------------
// NN training/serialization properties over seeds.
// ---------------------------------------------------------------------------

class TrainingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrainingProperty, TrainingIsSeedDeterministic) {
  auto build_and_train = [&] {
    Rng rng(GetParam());
    auto dataset = data::make_blobs(120, 6, 2, rng);
    nn::Model model = nn::zoo::make_mlp("m", 6, 2, {8}, rng);
    nn::TrainOptions options;
    options.epochs = 5;
    options.shuffle_seed = GetParam();
    nn::fit(model, dataset, options);
    return nn::save_model(model);
  };
  EXPECT_EQ(build_and_train(), build_and_train());
}

TEST_P(TrainingProperty, SerializationPreservesEveryZooModelExactly) {
  Rng rng(GetParam());
  nn::zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    nn::Model reloaded = nn::load_model(nn::save_model(model));
    nn::Tensor probe =
        nn::Tensor::random_uniform(tensor::Shape{2, 2, 8, 8}, rng);
    EXPECT_TRUE(reloaded.forward(probe, false)
                    .all_close(model.forward(probe, false), 1e-4F))
        << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainingProperty, ::testing::Values(3, 7, 42));

// ---------------------------------------------------------------------------
// Cost-model monotonicity over the fleet.
// ---------------------------------------------------------------------------

TEST(CostModelProperty, LatencyMonotoneInModelSizeAcrossFleet) {
  Rng rng(5);
  nn::Model small = nn::zoo::make_mlp("s", 16, 3, {8}, rng);
  nn::Model medium = nn::zoo::make_mlp("m", 16, 3, {64}, rng);
  nn::Model large = nn::zoo::make_mlp("l", 16, 3, {256, 128}, rng);
  for (const auto& device : hwsim::edge_fleet()) {
    for (const auto& package : hwsim::default_packages()) {
      double s = hwsim::estimate_inference(small, package, device).latency_s;
      double m = hwsim::estimate_inference(medium, package, device).latency_s;
      double l = hwsim::estimate_inference(large, package, device).latency_s;
      EXPECT_LE(s, m) << device.name << "/" << package.name;
      EXPECT_LE(m, l) << device.name << "/" << package.name;
    }
  }
}

// ---------------------------------------------------------------------------
// JSON round-trip over randomized documents (the wire format under every
// libei route, including the new /ei_trace and /ei_status payloads).
// ---------------------------------------------------------------------------

std::string random_string(Rng& rng) {
  // A palette that stresses the writer's escaping and the parser's UTF-8
  // pass-through: quotes, backslashes, control characters, multi-byte
  // code points, and \u-escapable BMP characters.
  static const std::vector<std::string> atoms = {
      "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\r", "\x01", "\x1f",
      "/", "{", "}", "[", "]", ":", ",", "é", "λ", "☃", "日本", "ÿ"};
  std::string out;
  std::size_t length = static_cast<std::size_t>(rng.uniform_int(0, 12));
  for (std::size_t i = 0; i < length; ++i) {
    out += atoms[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(atoms.size()) - 1))];
  }
  return out;
}

double random_number(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: return 0.0;
    case 1: return static_cast<double>(rng.uniform_int(-1000000, 1000000));
    case 2: return rng.uniform(-1.0, 1.0);
    case 3: return rng.uniform(0.0, 1.0) * 1e300;   // huge magnitude
    case 4: return rng.uniform(0.0, 1.0) * 1e-300;  // tiny magnitude
    default: return 9007199254740991.0;             // 2^53 - 1, max exact int
  }
}

common::Json random_json(Rng& rng, int depth) {
  // Leaves dominate as depth grows; depth 0 forces a leaf.
  int kind = depth <= 0 ? rng.uniform_int(0, 3) : rng.uniform_int(0, 5);
  switch (kind) {
    case 0: return common::Json();  // null
    case 1: return common::Json(rng.flip(0.5));
    case 2: return common::Json(random_number(rng));
    case 3: return common::Json(random_string(rng));
    case 4: {
      common::JsonArray array;
      std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        array.push_back(random_json(rng, depth - 1));
      }
      return common::Json(std::move(array));
    }
    default: {
      common::Json object{common::JsonObject{}};
      std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        // Unique keys (set() replaces duplicates, which would change size).
        object.set(std::to_string(i) + random_string(rng),
                   random_json(rng, depth - 1));
      }
      return object;
    }
  }
}

class JsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonProperty, RandomDocumentsSurviveRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    common::Json document = random_json(rng, 5);
    std::string text = document.dump();
    common::Json reparsed = common::Json::parse(text);
    EXPECT_EQ(reparsed, document) << text;
    // Serialization is a fixed point: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(reparsed.dump(), text);
    // pretty() renders the same value.
    EXPECT_EQ(common::Json::parse(document.pretty()), document);
  }
}

TEST_P(JsonProperty, DeeplyNestedDocumentsRoundTrip) {
  Rng rng(GetParam() + 31);
  common::Json document(random_string(rng));
  for (int level = 0; level < 64; ++level) {
    if (rng.flip(0.5)) {
      common::JsonArray wrap;
      wrap.push_back(std::move(document));
      document = common::Json(std::move(wrap));
    } else {
      common::Json wrap{common::JsonObject{}};
      wrap.set("k", std::move(document));
      document = std::move(wrap);
    }
  }
  EXPECT_EQ(common::Json::parse(document.dump()), document);
}

TEST_P(JsonProperty, TracePayloadsSurviveRoundTrip) {
  // The /ei_trace/{id} JSON: build a real trace with randomized span names
  // and attribute values, serialize, reparse, and re-check the tree.
  Rng rng(GetParam() + 62);
  obs::Tracer::Options options;
  options.enabled = true;
  options.seed = GetParam();
  obs::Tracer tracer(options);
  std::uint64_t trace_id = 0;
  std::size_t span_count = 1;
  {
    obs::Span root = tracer.begin_trace("root" + random_string(rng));
    trace_id = root.trace_id();
    std::size_t children = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t c = 0; c < children; ++c) {
      obs::Span child = root.child("c" + std::to_string(c));
      ++span_count;
      child.set_attribute("text" + random_string(rng), random_string(rng));
      child.set_attribute("num", random_number(rng));
    }
  }
  auto record = tracer.find(trace_id);
  ASSERT_TRUE(record.has_value());
  common::Json document = record->to_json();
  common::Json reparsed = common::Json::parse(document.dump());
  EXPECT_EQ(reparsed, document);
  EXPECT_EQ(reparsed.at("trace_id").as_string(), std::to_string(trace_id));
  EXPECT_EQ(reparsed.at("span_count").as_number(),
            static_cast<double>(span_count));
  EXPECT_EQ(reparsed.at("root").at("children").as_array().size(),
            span_count - 1);
}

TEST_P(JsonProperty, MetricsJsonMatchesRecordedSeries) {
  Rng rng(GetParam() + 93);
  obs::MetricsRegistry registry;
  double total = 0.0;
  int samples = rng.uniform_int(1, 200);
  auto& histogram = registry.histogram("lat", {{"model", random_string(rng)}});
  for (int i = 0; i < samples; ++i) {
    double v = rng.uniform(0.0, 10.0);
    total += v;
    histogram.record(v);
  }
  registry.counter("events_total").add(total);
  common::Json document = registry.to_json();
  common::Json reparsed = common::Json::parse(document.dump());
  EXPECT_EQ(reparsed, document);
  // And the Prometheus text stays parseable line-wise: every non-comment
  // line is "<name_or_labels> <value>".
  std::string text = registry.render_prometheus();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    }
    start = end + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Histogram invariants over random inputs.
// ---------------------------------------------------------------------------

class HistogramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramProperty, CountsPartitionAndQuantilesAreMonotone) {
  Rng rng(GetParam());
  obs::Histogram histogram(1e-6, rng.uniform(1.5, 4.0),
                           static_cast<std::size_t>(rng.uniform_int(4, 40)));
  std::size_t samples = static_cast<std::size_t>(rng.uniform_int(1, 3000));
  double sum = 0.0;
  double max_value = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    // Log-uniform spread so every bucket regime (underflow, middle,
    // overflow) gets traffic across seeds.
    double v = std::pow(10.0, rng.uniform(-8.0, 3.0));
    sum += v;
    max_value = std::max(max_value, v);
    histogram.record(v);
  }
  auto snapshot = histogram.snapshot();

  // Bucket counts partition the observations.
  std::uint64_t partition = 0;
  for (std::uint64_t c : snapshot.counts) partition += c;
  EXPECT_EQ(partition, samples);
  EXPECT_EQ(snapshot.count, samples);
  EXPECT_NEAR(snapshot.sum, sum, 1e-9 * std::max(1.0, sum));

  // Quantiles are monotone in q and never exceed the data's reachable range.
  double previous = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double value = snapshot.quantile(q);
    EXPECT_GE(value + 1e-12, previous) << "q=" << q;
    previous = value;
  }
  // p0..p100 all land within [0, max bucket bound hit by the data].
  EXPECT_GE(snapshot.quantile(0.0), 0.0);
}

TEST_P(HistogramProperty, MergeIsAdditive) {
  Rng rng(GetParam() + 17);
  double growth = rng.uniform(1.5, 3.0);
  std::size_t buckets = static_cast<std::size_t>(rng.uniform_int(5, 30));
  obs::Histogram a(1e-6, growth, buckets);
  obs::Histogram b(1e-6, growth, buckets);
  obs::Histogram reference(1e-6, growth, buckets);
  int samples = rng.uniform_int(10, 500);
  for (int i = 0; i < samples; ++i) {
    double v = std::pow(10.0, rng.uniform(-7.0, 2.0));
    (rng.flip(0.5) ? a : b).record(v);
    reference.record(v);
  }
  a.merge_from(b);
  auto merged = a.snapshot();
  auto expected = reference.snapshot();
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_NEAR(merged.sum, expected.sum, 1e-9 * std::max(1.0, expected.sum));
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), expected.quantile(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(9, 18, 27, 36, 45, 54, 63));

// ---------------------------------------------------------------------------
// int8 quantization invariants: reconstruction error bounds, the int8 GEMM's
// analytic error envelope vs float GEMM, per-channel vs per-tensor fidelity.
// ---------------------------------------------------------------------------

class QuantProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantProperty, QuantizeDequantizeErrorBoundedByHalfStep) {
  Rng rng(GetParam());
  float lo = rng.uniform_float(-50.0F, 0.0F);
  float hi = rng.uniform_float(0.0F, 50.0F);
  tensor::Tensor t =
      tensor::Tensor::random_uniform(tensor::Shape{7, 13}, rng, lo, hi);
  tensor::QuantizedTensor q = tensor::QuantizedTensor::quantize(t);
  tensor::Tensor back = q.dequantize();
  // Half a quantization step, plus a whisker for the float divide/round.
  float bound = tensor::quantization_step_error(q.params()) * 1.001F + 1e-6F;
  for (std::size_t i = 0; i < t.elements(); ++i) {
    EXPECT_LE(std::abs(back.data()[i] - t.data()[i]), bound) << i;
  }
}

TEST_P(QuantProperty, QgemmWithinAnalyticBoundOfFloatGemm) {
  Rng rng(GetParam() * 31 + 5);
  std::size_t m = 3 + GetParam() % 5;
  std::size_t k = 8 + GetParam() % 57;
  std::size_t rows = 4 + GetParam() % 13;
  tensor::Tensor a =
      tensor::Tensor::random_uniform(tensor::Shape{m, k}, rng, -2.0F, 2.0F);
  tensor::Tensor w =
      tensor::Tensor::random_uniform(tensor::Shape{rows, k}, rng, -1.0F, 1.0F);

  tensor::QuantParams a_params = tensor::QuantParams::choose(a.min(), a.max());
  std::vector<std::int8_t> qa(m * k);
  tensor::quantize_to_int8(a.data().data(), qa.size(), a_params, qa.data());
  tensor::PackedQuantMatrix packed =
      tensor::PackedQuantMatrix::pack_rows(w, /*per_channel=*/true);

  std::vector<float> out(m * rows);
  tensor::qgemm(qa.data(), m, k, a_params, packed, nullptr,
                /*fuse_relu=*/false, out.data());

  float a_step = tensor::quantization_step_error(a_params);
  float a_max = std::max(std::abs(a.min()), std::abs(a.max()));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t r = 0; r < rows; ++r) {
      double exact = 0.0;
      float w_max = 0.0F;
      for (std::size_t p = 0; p < k; ++p) {
        exact += static_cast<double>(a.data()[i * k + p]) *
                 static_cast<double>(w.data()[r * k + p]);
        w_max = std::max(w_max, std::abs(w.data()[r * k + p]));
      }
      // Per product term: |da*w| + |dw*a| + |da*dw| with da <= a_step and
      // dw <= half the row's weight step; accumulate over k terms.
      float w_step = packed.scales()[r] * 0.5F;
      double bound = static_cast<double>(k) *
                         (a_step * w_max + w_step * a_max + a_step * w_step) *
                         1.05 +
                     1e-4;
      EXPECT_NEAR(out[i * rows + r], exact, bound)
          << "m=" << m << " k=" << k << " i=" << i << " r=" << r;
    }
  }
}

TEST_P(QuantProperty, PerChannelReconstructionBeatsPerTensor) {
  Rng rng(GetParam() * 17 + 3);
  // Rows with deliberately spread magnitudes — the regime per-channel
  // quantization exists for (a shared scale wastes range on small rows).
  std::size_t rows = 6;
  std::size_t cols = 32;
  tensor::Tensor w(tensor::Shape{rows, cols});
  auto d = w.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float magnitude = std::pow(3.0F, static_cast<float>(r));
    for (std::size_t c = 0; c < cols; ++c) {
      d[r * cols + c] = rng.uniform_float(-1.0F, 1.0F) * magnitude;
    }
  }
  auto squared_error = [&](const tensor::PackedQuantMatrix& packed) {
    tensor::Tensor back = packed.dequantize();
    double total = 0.0;
    for (std::size_t i = 0; i < w.elements(); ++i) {
      double e = static_cast<double>(back.data()[i]) - w.data()[i];
      total += e * e;
    }
    return total;
  };
  double per_channel =
      squared_error(tensor::PackedQuantMatrix::pack_rows(w, true));
  double per_tensor =
      squared_error(tensor::PackedQuantMatrix::pack_rows(w, false));
  EXPECT_LE(per_channel, per_tensor);
  // And not marginally: spread rows should reconstruct much better.
  EXPECT_LT(per_channel, per_tensor * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantProperty,
                         ::testing::Values(2, 11, 23, 47, 92));

// ---------------------------------------------------------------------------
// Incremental HTTP parsing: fragmentation independence.
// ---------------------------------------------------------------------------

class RequestParserProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Whatever way TCP fragments or coalesces the byte stream, the incremental
// parser must produce exactly the requests the whole-buffer path produces —
// same count, same fields, same bodies, in order.
TEST_P(RequestParserProperty, FragmentationNeverChangesParsedRequests) {
  Rng rng(GetParam());

  // A random pipelined request stream with bodies, query strings, and
  // header-case noise.
  struct Expected {
    std::string head;
    std::string body;
  };
  std::vector<Expected> expected;
  std::string wire;
  std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t i = 0; i < count; ++i) {
    std::string body;
    if (rng.flip(0.5)) {
      std::size_t body_len = static_cast<std::size_t>(rng.uniform_int(1, 2000));
      for (std::size_t b = 0; b < body_len; ++b) {
        body.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
    }
    std::string head = (body.empty() ? "GET" : "POST") +
                       std::string(" /r" + std::to_string(i)) +
                       (rng.flip() ? "?k=v&n=" + std::to_string(i) : "") +
                       " HTTP/1.1\r\nHost: 127.0.0.1\r\n" +
                       (rng.flip() ? "X-Noise: " + std::to_string(i) + "\r\n"
                                   : "");
    if (!body.empty()) {
      head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    expected.push_back({head, body});
    wire += head + "\r\n" + body;
  }

  // Reference: the whole stream fed as one buffer.
  net::RequestParser whole;
  std::vector<net::HttpRequest> reference;
  whole.feed(wire.data(), wire.size(), reference);
  EXPECT_EQ(reference.size(), expected.size());

  // Property: random fragmentation (1-byte dribbles through large
  // coalesced chunks) yields identical results.
  net::RequestParser fragmented;
  std::vector<net::HttpRequest> parsed;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    std::size_t chunk = rng.flip(0.3)
                            ? 1
                            : static_cast<std::size_t>(rng.uniform_int(
                                  1, static_cast<std::int64_t>(
                                         std::min<std::size_t>(
                                             wire.size() - offset, 700))));
    fragmented.feed(wire.data() + offset, chunk, parsed);
    offset += chunk;
  }
  EXPECT_FALSE(fragmented.mid_request());

  ASSERT_EQ(parsed.size(), reference.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].method, reference[i].method) << "request " << i;
    EXPECT_EQ(parsed[i].path, reference[i].path) << "request " << i;
    EXPECT_EQ(parsed[i].version, reference[i].version) << "request " << i;
    EXPECT_EQ(parsed[i].query, reference[i].query) << "request " << i;
    EXPECT_EQ(parsed[i].headers, reference[i].headers) << "request " << i;
    EXPECT_EQ(parsed[i].body, reference[i].body) << "request " << i;
    EXPECT_EQ(parsed[i].body, expected[i].body) << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestParserProperty,
                         ::testing::Values(1, 5, 13, 29, 61, 97));

// ---------------------------------------------------------------------------
// FrameQueue invariants: randomized push/pop/clock schedules checked against
// an exact reference model of the admission policies.  Single-threaded on a
// fake clock, so every drop decision is deterministic and the comparison is
// exact — not statistical.
// ---------------------------------------------------------------------------

/// Mirrors FrameQueue exactly: same admission, same settle order (latest-wins
/// supersede is classified before deadline expiry), same counters.
struct ReferenceQueue {
  struct Slot {
    std::uint64_t seq = 0;
    std::int64_t deadline_ns = 0;
  };
  stream::FrameQueue::Options options;
  const std::int64_t* now = nullptr;
  std::deque<Slot> slots;
  std::uint64_t next_seq = 0;
  stream::QueueCounters counters;
  bool closed = false;

  void drop_front(std::uint64_t& counter) {
    ++counter;
    slots.pop_front();
  }

  stream::PushOutcome push(std::int64_t own_deadline_ns) {
    ++counters.produced;
    if (closed) {
      ++counters.rejected_closed;
      return stream::PushOutcome::kRejectedClosed;
    }
    if (options.policy == stream::AdmitPolicy::kBlock) {
      // The schedule always pushes with max_wait 0: a full queue rejects
      // immediately (counted as a blocked push that found no space).
      if (slots.size() >= options.capacity) {
        ++counters.blocked_pushes;
        ++counters.rejected_backpressure;
        return stream::PushOutcome::kRejectedBackpressure;
      }
    } else {
      while (slots.size() >= options.capacity) {
        drop_front(counters.dropped_policy);
      }
    }
    Slot slot;
    slot.seq = ++next_seq;
    slot.deadline_ns = own_deadline_ns;
    if (options.deadline_s > 0.0) {
      std::int64_t queue_deadline =
          *now + static_cast<std::int64_t>(options.deadline_s * 1e9);
      if (slot.deadline_ns == 0 || queue_deadline < slot.deadline_ns) {
        slot.deadline_ns = queue_deadline;
      }
    }
    ++counters.admitted;
    slots.push_back(slot);
    return stream::PushOutcome::kAdmitted;
  }

  void settle() {
    while (!slots.empty()) {
      if (options.policy == stream::AdmitPolicy::kLatestWins &&
          slots.size() > 1) {
        drop_front(counters.dropped_policy);  // superseded before expired
        continue;
      }
      const Slot& head = slots.front();
      if (head.deadline_ns != 0 && *now >= head.deadline_ns) {
        drop_front(counters.dropped_deadline);
        continue;
      }
      break;
    }
  }

  std::optional<std::uint64_t> try_pop() {
    settle();
    if (slots.empty()) return std::nullopt;
    std::uint64_t seq = slots.front().seq;
    slots.pop_front();
    ++counters.delivered;
    return seq;
  }

  stream::QueueCounters snapshot() const {
    stream::QueueCounters out = counters;
    out.depth = slots.size();
    return out;
  }
};

void expect_counters_equal(const stream::QueueCounters& real,
                           const stream::QueueCounters& expected,
                           int op) {
  ASSERT_EQ(real.produced, expected.produced) << "op " << op;
  ASSERT_EQ(real.admitted, expected.admitted) << "op " << op;
  ASSERT_EQ(real.delivered, expected.delivered) << "op " << op;
  ASSERT_EQ(real.dropped_deadline, expected.dropped_deadline) << "op " << op;
  ASSERT_EQ(real.dropped_policy, expected.dropped_policy) << "op " << op;
  ASSERT_EQ(real.dropped_closed, expected.dropped_closed) << "op " << op;
  ASSERT_EQ(real.rejected_backpressure, expected.rejected_backpressure)
      << "op " << op;
  ASSERT_EQ(real.rejected_closed, expected.rejected_closed) << "op " << op;
  ASSERT_EQ(real.blocked_pushes, expected.blocked_pushes) << "op " << op;
  ASSERT_EQ(real.depth, expected.depth) << "op " << op;
}

class StreamProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamProperty, QueueMatchesReferenceModelUnderRandomSchedule) {
  Rng rng(GetParam());
  const stream::AdmitPolicy policies[] = {stream::AdmitPolicy::kBlock,
                                          stream::AdmitPolicy::kLatestWins,
                                          stream::AdmitPolicy::kDropOldest};
  for (stream::AdmitPolicy policy : policies) {
    std::int64_t now_ns = 0;
    stream::FrameQueue::Options options;
    options.capacity =
        static_cast<std::size_t>(rng.uniform_int(1, 5));
    options.policy = policy;
    options.deadline_s = rng.flip(0.5) ? rng.uniform(0.001, 0.1) : 0.0;
    options.now = [&now_ns] { return now_ns; };
    stream::FrameQueue queue(options);
    ReferenceQueue reference;
    reference.options = options;
    reference.now = &now_ns;

    for (int op = 0; op < 500; ++op) {
      double dice = rng.uniform();
      if (dice < 0.45) {  // push (sometimes with a frame-own deadline)
        std::int64_t own_deadline =
            rng.flip(0.3) ? now_ns + rng.uniform_int(1, 50'000'000) : 0;
        stream::Frame frame;
        frame.rows = tensor::Tensor(tensor::Shape{1, 1});
        frame.deadline_ns = own_deadline;
        stream::PushResult real = queue.push(std::move(frame), 0.0);
        stream::PushOutcome expected = reference.push(own_deadline);
        ASSERT_EQ(real.outcome, expected) << "op " << op;
        if (expected == stream::PushOutcome::kAdmitted) {
          ASSERT_EQ(real.seq, reference.next_seq) << "op " << op;
        }
      } else if (dice < 0.85) {  // try_pop
        std::optional<stream::Frame> real = queue.try_pop();
        std::optional<std::uint64_t> expected = reference.try_pop();
        ASSERT_EQ(real.has_value(), expected.has_value()) << "op " << op;
        if (real.has_value()) {
          // Delivered frames are a policy-consistent subsequence: the exact
          // seq the reference model delivers, in the same order.
          ASSERT_EQ(real->seq, *expected) << "op " << op;
        }
      } else {  // advance the clock
        now_ns += rng.uniform_int(0, 80'000'000);
      }
      expect_counters_equal(queue.counters(), reference.snapshot(), op);
    }

    // Close, then drain: the reference keeps predicting pops exactly.
    queue.close();
    reference.closed = true;
    stream::Frame late;
    late.rows = tensor::Tensor(tensor::Shape{1, 1});
    ASSERT_EQ(queue.push(std::move(late), 0.0).outcome,
              stream::PushOutcome::kRejectedClosed);
    reference.push(0);
    while (true) {
      std::optional<stream::Frame> real = queue.try_pop();
      std::optional<std::uint64_t> expected = reference.try_pop();
      ASSERT_EQ(real.has_value(), expected.has_value());
      if (!real.has_value()) break;
      ASSERT_EQ(real->seq, *expected);
    }
    expect_counters_equal(queue.counters(), reference.snapshot(), -1);
  }
}

TEST_P(StreamProperty, CountersBalanceExactlyAtEveryCheckpoint) {
  Rng rng(GetParam() + 4242);
  std::int64_t now_ns = 0;
  stream::FrameQueue::Options options;
  options.capacity = static_cast<std::size_t>(rng.uniform_int(2, 8));
  options.policy = rng.flip(0.5) ? stream::AdmitPolicy::kLatestWins
                                 : stream::AdmitPolicy::kDropOldest;
  options.deadline_s = 0.01;
  options.now = [&now_ns] { return now_ns; };
  auto queue = std::make_unique<stream::FrameQueue>(options);
  for (int op = 0; op < 400; ++op) {
    double dice = rng.uniform();
    if (dice < 0.5) {
      stream::Frame frame;
      frame.rows = tensor::Tensor(tensor::Shape{1, 1});
      queue->push(std::move(frame), 0.0);
    } else if (dice < 0.9) {
      queue->try_pop();
    } else {
      now_ns += rng.uniform_int(0, 30'000'000);
    }
    stream::QueueCounters counters = queue->counters();
    // Conservation law 1: every push attempt is accounted for.
    ASSERT_EQ(counters.produced, counters.admitted +
                                     counters.rejected_backpressure +
                                     counters.rejected_closed)
        << "op " << op;
    // Conservation law 2: every admitted frame is delivered, dropped, or
    // still queued — nothing leaks, nothing double-counts.
    ASSERT_EQ(counters.admitted,
              counters.delivered + counters.dropped_deadline +
                  counters.dropped_policy + counters.dropped_closed +
                  counters.depth)
        << "op " << op;
  }
  // Destruction drops what was never drained; re-check on the final
  // snapshot taken just before, folding depth into dropped_closed.
  stream::QueueCounters before = queue->counters();
  queue.reset();
  ASSERT_EQ(before.admitted, before.delivered + before.dropped_deadline +
                                 before.dropped_policy +
                                 before.dropped_closed + before.depth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamProperty,
                         ::testing::Values(7, 21, 42, 77, 123, 2026));

// ---------------------------------------------------------------------------
// Energy ledger vs. an exact reference model: random op schedules (clock
// advances — including non-monotone jumps — legal state steps, DVFS rung
// changes, busy charges) must keep hwsim::EnergyLedger bit-identical to an
// independent re-implementation of its accounting, with every counter
// checked at every checkpoint.
// ---------------------------------------------------------------------------

/// Mirrors EnergyLedger's arithmetic expression-for-expression so the
/// comparison is exact (EXPECT_DOUBLE_EQ), not approximate.
struct ReferenceLedger {
  hwsim::DeviceProfile device;
  std::int64_t start_ns = 0;
  std::int64_t last_settle_ns = 0;
  int state = 0;  // 0 idle / 1 active / 2 boost
  std::size_t freq_level = 0;
  double state_j[3] = {0.0, 0.0, 0.0};
  double state_seconds[3] = {0.0, 0.0, 0.0};
  double busy_j = 0.0;
  double busy_seconds = 0.0;
  std::uint64_t charges = 0;
  std::uint64_t transitions = 0;

  explicit ReferenceLedger(hwsim::DeviceProfile d, std::int64_t now)
      : device(std::move(d)), start_ns(now), last_settle_ns(now) {
    freq_level = device.freq_levels.size() - 1;
  }

  double freq_scale_of(int s, std::size_t level) const {
    if (s == 0) return 0.0;
    if (s == 2) return device.boost_freq_scale;
    std::size_t clamped = std::min(level, device.freq_levels.size() - 1);
    return device.freq_levels[clamped];
  }

  double power_of(int s, std::size_t level) const {
    if (s == 0) return device.idle_power_w;
    if (s == 2) return device.boost_power();
    double f = freq_scale_of(1, level);
    return device.idle_power_w +
           (device.active_power_w - device.idle_power_w) * f * f * f;
  }

  void settle(std::int64_t now) {
    double dt = std::max<std::int64_t>(0, now - last_settle_ns) * 1e-9;
    last_settle_ns = std::max(now, last_settle_ns);
    state_seconds[state] += dt;
    state_j[state] += dt * power_of(state, freq_level);
  }

  void set_state(std::int64_t now, int next) {
    settle(now);
    if (next == state) return;
    state = next;
    ++transitions;
  }

  void set_freq(std::int64_t now, std::size_t level) {
    settle(now);
    freq_level = std::min(level, device.freq_levels.size() - 1);
  }

  double charge(std::int64_t now, double busy_s) {
    settle(now);
    double f = freq_scale_of(state, freq_level);
    double stretched = busy_s / f;
    double joules = (power_of(state, freq_level) - device.idle_power_w) *
                    stretched;
    state_j[state] += joules;
    busy_j += joules;
    busy_seconds += stretched;
    ++charges;
    return joules;
  }
};

class EnergyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyProperty, LedgerMatchesReferenceModelUnderRandomSchedule) {
  Rng rng(GetParam());
  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  std::int64_t now_ns = 0;
  hwsim::EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  ReferenceLedger reference(device, now_ns);

  double last_total = 0.0;
  for (int op = 0; op < 400; ++op) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // advance the clock (occasionally backwards: clamp path)
        std::int64_t jump = rng.uniform_int(0, 2'000'000'000);
        if (rng.flip(0.1)) jump = -jump / 2;
        now_ns += jump;
        break;
      }
      case 1: {  // legal single-rung state step (or same-state no-op)
        int step = rng.flip() ? 1 : -1;
        int next = std::min(2, std::max(0, reference.state + step));
        ledger.set_state(static_cast<hwsim::PowerState>(next));
        reference.set_state(now_ns, next);
        break;
      }
      case 2: {  // DVFS rung change, sometimes past the ladder (clamp path)
        auto level = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(
                                   device.freq_levels.size() + 1)));
        ledger.set_freq_level(level);
        reference.set_freq(now_ns, level);
        break;
      }
      default: {  // busy charge (illegal while idle: step up first)
        if (reference.state == 0) {
          ledger.set_state(hwsim::PowerState::kActive);
          reference.set_state(now_ns, 1);
        }
        double busy_s = rng.uniform(0.0, 0.05);
        double charged = ledger.charge_busy(busy_s);
        EXPECT_DOUBLE_EQ(charged, reference.charge(now_ns, busy_s));
        break;
      }
    }

    // Checkpoint: every exported field matches the reference exactly, and
    // the account is monotone.
    hwsim::EnergyLedger::Snapshot snap = ledger.snapshot();
    reference.settle(now_ns);
    double reference_total = 0.0;
    for (int s = 0; s < 3; ++s) {
      EXPECT_DOUBLE_EQ(snap.state_j[s], reference.state_j[s]) << "op " << op;
      EXPECT_DOUBLE_EQ(snap.state_seconds[s], reference.state_seconds[s])
          << "op " << op;
      reference_total += reference.state_j[s];
    }
    EXPECT_DOUBLE_EQ(snap.total_j, reference_total) << "op " << op;
    EXPECT_DOUBLE_EQ(snap.busy_j, reference.busy_j) << "op " << op;
    EXPECT_DOUBLE_EQ(snap.busy_seconds, reference.busy_seconds)
        << "op " << op;
    EXPECT_EQ(snap.charges, reference.charges) << "op " << op;
    EXPECT_EQ(snap.transitions, reference.transitions) << "op " << op;
    EXPECT_EQ(static_cast<int>(snap.state), reference.state) << "op " << op;
    EXPECT_EQ(snap.freq_level, reference.freq_level) << "op " << op;
    EXPECT_DOUBLE_EQ(
        snap.elapsed_seconds,
        (reference.last_settle_ns - reference.start_ns) * 1e-9)
        << "op " << op;
    EXPECT_GE(snap.total_j, last_total) << "op " << op;
    // Idle floor: no state draws less than idle.
    EXPECT_GE(snap.total_j,
              device.idle_power_w * snap.elapsed_seconds - 1e-9)
        << "op " << op;
    last_total = snap.total_j;
  }
}

TEST_P(EnergyProperty, GovernorConservesChargesUnderRandomTraffic) {
  Rng rng(GetParam() ^ 0x9E3779B97F4A7C15ULL);
  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  std::int64_t now_ns = 0;
  runtime::EnergyGovernor::Options options;
  options.power_cap_w = rng.flip() ? device.active_power_w : 0.0;
  options.boost_queue_depth = 4;
  options.now = [&now_ns] { return now_ns; };
  runtime::EnergyGovernor governor(device, options);

  double charged_sum = 0.0;
  for (int op = 0; op < 300; ++op) {
    now_ns += rng.uniform_int(0, 200'000'000);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        charged_sum += governor.charge(rng.uniform(0.0, 0.01),
                                       static_cast<std::size_t>(
                                           rng.uniform_int(1, 8)));
        break;
      case 1:
        governor.on_queue_depth(
            static_cast<std::size_t>(rng.uniform_int(0, 8)));
        break;
      case 2:
        governor.on_drained();
        break;
      default:
        governor.admit();  // decision recorded; never throws
        break;
    }
    runtime::EnergyGovernor::Snapshot snap = governor.snapshot();
    // Every charged joule the callers saw is in the ledger, exactly once.
    EXPECT_DOUBLE_EQ(snap.ledger.busy_j, charged_sum) << "op " << op;
    EXPECT_DOUBLE_EQ(snap.ledger.total_j, snap.ledger.state_j[0] +
                                              snap.ledger.state_j[1] +
                                              snap.ledger.state_j[2])
        << "op " << op;
    // The rolling estimate never reads below the idle baseline.
    EXPECT_GE(governor.rolling_watts(), device.idle_power_w - 1e-12)
        << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyProperty,
                         ::testing::Values(7, 21, 42, 77, 123, 2026));

TEST(CostModelProperty, EnergyAndMemoryNonNegativeEverywhere) {
  Rng rng(6);
  nn::zoo::ImageSpec spec;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    for (const auto& device : hwsim::default_fleet()) {
      for (const auto& package : hwsim::default_packages()) {
        auto cost = hwsim::estimate_inference(model, package, device);
        EXPECT_GT(cost.latency_s, 0.0);
        EXPECT_GT(cost.energy_j, 0.0);
        EXPECT_GT(cost.memory_bytes, model.storage_bytes());
      }
    }
  }
}

}  // namespace
}  // namespace openei
