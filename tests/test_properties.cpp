// Cross-module property tests: randomized invariants checked over
// parameterized seeds — the behaviours that must hold for *any* input, not
// just the curated cases in the per-module suites.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/model_registry.h"
#include "runtime/realtime.h"
#include "selector/capability_db.h"
#include "selector/rl_selector.h"
#include "selector/selecting_algorithm.h"
#include "tensor/ops.h"

namespace openei {
namespace {

using common::Rng;

// ---------------------------------------------------------------------------
// Scheduler invariants under random task sets.
// ---------------------------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<runtime::MlTask> random_tasks(Rng& rng, std::size_t count) {
  std::vector<runtime::MlTask> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back({"t" + std::to_string(i), rng.uniform(0.0, 5.0),
                     rng.uniform(0.01, 0.5),
                     rng.flip(0.25) ? runtime::TaskPriority::kUrgent
                                    : runtime::TaskPriority::kBestEffort});
  }
  return tasks;
}

TEST_P(SchedulerProperty, WorkConservationAndCompleteness) {
  Rng rng(GetParam());
  auto tasks = random_tasks(rng, 30);
  double total_work = 0.0;
  double latest_arrival = 0.0;
  for (const auto& task : tasks) {
    total_work += task.duration_s;
    latest_arrival = std::max(latest_arrival, task.arrival_s);
  }

  for (auto policy : {runtime::SchedulingPolicy::kFifo,
                      runtime::SchedulingPolicy::kPriorityPreemptive}) {
    auto done = runtime::simulate_schedule(tasks, policy);
    // Completeness: every task finishes exactly once.
    ASSERT_EQ(done.size(), tasks.size());
    // No task finishes before its arrival + duration.
    for (const auto& completed : done) {
      EXPECT_GE(completed.finish_s + 1e-9,
                completed.task.arrival_s + completed.task.duration_s);
      EXPECT_GE(completed.start_s + 1e-9, completed.task.arrival_s);
    }
    // Work conservation: the single worker cannot finish earlier than
    // total work, nor later than latest arrival + total work.
    double makespan = done.back().finish_s;
    EXPECT_GE(makespan + 1e-9, total_work);
    EXPECT_LE(makespan, latest_arrival + total_work + 1e-9);
  }
}

TEST_P(SchedulerProperty, PreemptionNeverHurtsUrgentTasks) {
  Rng rng(GetParam() + 1000);
  auto tasks = random_tasks(rng, 25);
  // Make sure both classes exist.
  tasks.push_back({"u", 0.5, 0.1, runtime::TaskPriority::kUrgent});
  tasks.push_back({"b", 0.5, 0.1, runtime::TaskPriority::kBestEffort});

  auto fifo = runtime::simulate_schedule(tasks, runtime::SchedulingPolicy::kFifo);
  auto preemptive = runtime::simulate_schedule(
      tasks, runtime::SchedulingPolicy::kPriorityPreemptive);
  double fifo_mean = runtime::response_percentile(
      fifo, 50, runtime::TaskPriority::kUrgent);
  double rt_mean = runtime::response_percentile(
      preemptive, 50, runtime::TaskPriority::kUrgent);
  EXPECT_LE(rt_mean, fifo_mean + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Selector invariants.
// ---------------------------------------------------------------------------

selector::CapabilityDatabase random_db(Rng& rng, std::size_t entries) {
  selector::CapabilityDatabase db;
  const char* devices[] = {"dev-a", "dev-b"};
  for (std::size_t i = 0; i < entries; ++i) {
    selector::CapabilityEntry entry;
    entry.model_name = "m" + std::to_string(i);
    entry.package_name = "p" + std::to_string(i % 3);
    entry.device_name = devices[i % 2];
    entry.alem.accuracy = rng.uniform(0.3, 1.0);
    entry.alem.latency_s = rng.uniform(1e-5, 1e-1);
    entry.alem.energy_j = rng.uniform(1e-6, 1e-2);
    entry.alem.memory_bytes = static_cast<std::size_t>(rng.uniform_int(1000, 1000000));
    entry.deployable = rng.flip(0.85);
    db.add(std::move(entry));
  }
  return db;
}

class SelectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectorProperty, SelectEqualsRankFront) {
  Rng rng(GetParam());
  auto db = random_db(rng, 40);
  for (auto objective :
       {selector::Objective::kMinLatency, selector::Objective::kMaxAccuracy,
        selector::Objective::kMinEnergy, selector::Objective::kMinMemory}) {
    selector::SelectionRequest request;
    request.objective = objective;
    request.device_name = "dev-a";
    request.requirements.min_accuracy = rng.uniform(0.0, 0.9);
    request.requirements.max_energy_j = rng.uniform(1e-4, 1e-2);

    auto picked = selector::select(db, request);
    auto ranked = selector::rank(db, request);
    if (ranked.empty()) {
      EXPECT_FALSE(picked.has_value());
    } else {
      ASSERT_TRUE(picked.has_value());
      // The pick is exactly as good as the rank front on the objective.
      EXPECT_FALSE(selector::better(ranked.front().alem, picked->alem, objective));
      EXPECT_FALSE(selector::better(picked->alem, ranked.front().alem, objective));
    }
  }
}

TEST_P(SelectorProperty, FrontierMembersAreMutuallyNonDominating) {
  Rng rng(GetParam() + 77);
  auto db = random_db(rng, 30);
  auto frontier = selector::pareto_frontier(db, "");
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      if (&a == &b) continue;
      EXPECT_FALSE(selector::dominates(a.alem, b.alem));
    }
  }
}

TEST_P(SelectorProperty, DatabaseJsonRoundTrip) {
  Rng rng(GetParam() + 1234);
  auto db = random_db(rng, 20);
  auto rebuilt = selector::CapabilityDatabase::from_json(
      common::Json::parse(db.to_json().dump()));
  ASSERT_EQ(rebuilt.entries().size(), db.entries().size());
  for (std::size_t i = 0; i < db.entries().size(); ++i) {
    const auto& a = db.entries()[i];
    const auto& b = rebuilt.entries()[i];
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.package_name, b.package_name);
    EXPECT_EQ(a.device_name, b.device_name);
    EXPECT_EQ(a.deployable, b.deployable);
    EXPECT_DOUBLE_EQ(a.alem.accuracy, b.alem.accuracy);
    EXPECT_DOUBLE_EQ(a.alem.latency_s, b.alem.latency_s);
    EXPECT_DOUBLE_EQ(a.alem.energy_j, b.alem.energy_j);
    EXPECT_EQ(a.alem.memory_bytes, b.alem.memory_bytes);
  }
  // Semantics preserved: same selection results.
  selector::SelectionRequest request;
  request.device_name = "dev-a";
  auto original = selector::select(db, request);
  auto from_copy = selector::select(rebuilt, request);
  ASSERT_EQ(original.has_value(), from_copy.has_value());
  if (original) EXPECT_EQ(original->model_name, from_copy->model_name);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Model registry under concurrent access.
// ---------------------------------------------------------------------------

TEST(RegistryConcurrency, ParallelPutGetFindNeverCorrupts) {
  runtime::ModelRegistry registry;
  Rng seed_rng(99);
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&registry, &failed, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 1);
      try {
        for (int i = 0; i < 50; ++i) {
          std::string name = "model_" + std::to_string(w) + "_" +
                             std::to_string(i % 5);
          registry.put({"scenario", "algo",
                        nn::zoo::make_mlp(name, 4, 2, {4}, rng), 0.5});
          auto entry = registry.get(name);
          if (entry.scenario != "scenario") failed = true;
          registry.find("scenario", "algo");
          registry.names();
          if (i % 7 == 0) registry.erase(name);
        }
      } catch (const openei::NotFound&) {
        // A concurrent erase raced a get — acceptable; corruption is not.
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_FALSE(failed.load());
  // Registry still consistent: every listed name is fetchable.
  for (const auto& name : registry.names()) {
    EXPECT_NO_THROW(registry.get(name));
  }
}

// ---------------------------------------------------------------------------
// NN training/serialization properties over seeds.
// ---------------------------------------------------------------------------

class TrainingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrainingProperty, TrainingIsSeedDeterministic) {
  auto build_and_train = [&] {
    Rng rng(GetParam());
    auto dataset = data::make_blobs(120, 6, 2, rng);
    nn::Model model = nn::zoo::make_mlp("m", 6, 2, {8}, rng);
    nn::TrainOptions options;
    options.epochs = 5;
    options.shuffle_seed = GetParam();
    nn::fit(model, dataset, options);
    return nn::save_model(model);
  };
  EXPECT_EQ(build_and_train(), build_and_train());
}

TEST_P(TrainingProperty, SerializationPreservesEveryZooModelExactly) {
  Rng rng(GetParam());
  nn::zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    nn::Model reloaded = nn::load_model(nn::save_model(model));
    nn::Tensor probe =
        nn::Tensor::random_uniform(tensor::Shape{2, 2, 8, 8}, rng);
    EXPECT_TRUE(reloaded.forward(probe, false)
                    .all_close(model.forward(probe, false), 1e-4F))
        << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainingProperty, ::testing::Values(3, 7, 42));

// ---------------------------------------------------------------------------
// Cost-model monotonicity over the fleet.
// ---------------------------------------------------------------------------

TEST(CostModelProperty, LatencyMonotoneInModelSizeAcrossFleet) {
  Rng rng(5);
  nn::Model small = nn::zoo::make_mlp("s", 16, 3, {8}, rng);
  nn::Model medium = nn::zoo::make_mlp("m", 16, 3, {64}, rng);
  nn::Model large = nn::zoo::make_mlp("l", 16, 3, {256, 128}, rng);
  for (const auto& device : hwsim::edge_fleet()) {
    for (const auto& package : hwsim::default_packages()) {
      double s = hwsim::estimate_inference(small, package, device).latency_s;
      double m = hwsim::estimate_inference(medium, package, device).latency_s;
      double l = hwsim::estimate_inference(large, package, device).latency_s;
      EXPECT_LE(s, m) << device.name << "/" << package.name;
      EXPECT_LE(m, l) << device.name << "/" << package.name;
    }
  }
}

TEST(CostModelProperty, EnergyAndMemoryNonNegativeEverywhere) {
  Rng rng(6);
  nn::zoo::ImageSpec spec;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    for (const auto& device : hwsim::default_fleet()) {
      for (const auto& package : hwsim::default_packages()) {
        auto cost = hwsim::estimate_inference(model, package, device);
        EXPECT_GT(cost.latency_s, 0.0);
        EXPECT_GT(cost.energy_j, 0.0);
        EXPECT_GT(cost.memory_bytes, model.storage_bytes());
      }
    }
  }
}

}  // namespace
}  // namespace openei
