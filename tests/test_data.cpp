// Tests for src/data: dataset mechanics, synthetic generators, metrics.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/metrics.h"
#include "data/synthetic.h"

namespace openei::data {
namespace {

using common::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(DatasetTest, CheckValidatesInvariants) {
  Dataset bad{Tensor(Shape{3, 2}), {0, 1}, 2};  // 3 rows, 2 labels
  EXPECT_THROW(bad.check(), openei::InvalidArgument);
  Dataset bad_label{Tensor(Shape{2, 2}), {0, 5}, 2};
  EXPECT_THROW(bad_label.check(), openei::InvalidArgument);
  Dataset good{Tensor(Shape{2, 2}), {0, 1}, 2};
  EXPECT_NO_THROW(good.check());
}

TEST(DatasetTest, SampleShapeStripsBatchDim) {
  Dataset d{Tensor(Shape{5, 3, 4, 4}), std::vector<std::size_t>(5, 0), 2};
  EXPECT_EQ(d.sample_shape(), Shape({3, 4, 4}));
}

TEST(DatasetTest, SliceAndSelect) {
  Tensor x(Shape{4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Dataset d{x, {0, 1, 0, 1}, 2};
  Dataset s = d.slice(1, 3);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_FLOAT_EQ(s.features.at2(0, 0), 2.0F);
  EXPECT_EQ(s.labels[1], 0U);

  Dataset sel = d.select({3, 0});
  EXPECT_FLOAT_EQ(sel.features.at2(0, 1), 7.0F);
  EXPECT_EQ(sel.labels[0], 1U);
  EXPECT_THROW(d.select({9}), openei::InvalidArgument);
}

TEST(DatasetTest, TrainTestSplitPartitions) {
  Rng rng(1);
  Dataset d = make_blobs(100, 3, 2, rng);
  auto [train, test] = train_test_split(d, 0.7, rng);
  EXPECT_EQ(train.size(), 70U);
  EXPECT_EQ(test.size(), 30U);
  EXPECT_THROW(train_test_split(d, 0.0, rng), openei::InvalidArgument);
}

TEST(DatasetTest, BatchIteratorCoversAllSamplesIncludingPartial) {
  Rng rng(2);
  Dataset d = make_blobs(25, 2, 2, rng);
  BatchIterator it(d, 8);
  EXPECT_EQ(it.batch_count(), 4U);
  std::size_t total = 0;
  for (std::size_t i = 0; i < it.batch_count(); ++i) total += it.batch(i).size();
  EXPECT_EQ(total, 25U);
  EXPECT_EQ(it.batch(3).size(), 1U);
  EXPECT_THROW(it.batch(4), openei::InvalidArgument);
}

TEST(SyntheticTest, BlobsAreDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Dataset d1 = make_blobs(50, 4, 3, a);
  Dataset d2 = make_blobs(50, 4, 3, b);
  EXPECT_EQ(d1.features, d2.features);
  EXPECT_EQ(d1.labels, d2.labels);
}

TEST(SyntheticTest, BlobsAreLinearlySeparableEnough) {
  // Nearest-centroid classification should get far above chance.
  Rng rng(8);
  Dataset d = make_blobs(300, 6, 3, rng, /*separation=*/3.0F, /*stddev=*/1.0F);
  // Estimate centroids from the data itself.
  std::vector<std::vector<double>> centroid(3, std::vector<double>(6, 0.0));
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t f = 0; f < 6; ++f) {
      centroid[d.labels[i]][f] += d.features.at2(i, f);
    }
    ++counts[d.labels[i]];
  }
  for (std::size_t c = 0; c < 3; ++c) {
    for (auto& v : centroid[c]) v /= static_cast<double>(counts[c]);
  }
  std::vector<std::size_t> preds(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    double best = 1e30;
    for (std::size_t c = 0; c < 3; ++c) {
      double dist = 0.0;
      for (std::size_t f = 0; f < 6; ++f) {
        double delta = d.features.at2(i, f) - centroid[c][f];
        dist += delta * delta;
      }
      if (dist < best) {
        best = dist;
        preds[i] = c;
      }
    }
  }
  EXPECT_GT(accuracy(preds, d.labels), 0.9);
}

TEST(SyntheticTest, ImagesHaveExpectedShapeAndClassBalance) {
  Rng rng(9);
  Dataset d = make_images(200, 3, 8, 4, rng);
  EXPECT_EQ(d.features.shape(), Shape({200, 3, 8, 8}));
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t label : d.labels) ++counts[label];
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GT(counts[c], 20U) << "class " << c << " badly under-represented";
  }
}

TEST(SyntheticTest, SequencesFlattenStepsTimesDims) {
  Rng rng(10);
  Dataset d = make_sequences(40, 16, 3, 4, rng);
  EXPECT_EQ(d.features.shape(), Shape({40, 48}));
  d.check();
}

TEST(SyntheticTest, DriftChangesFeaturesKeepsLabels) {
  Rng rng(11);
  Dataset d = make_blobs(60, 4, 2, rng);
  Rng drift_rng(12);
  Dataset drifted = apply_drift(d, drift_rng, 2.0F);
  EXPECT_EQ(drifted.labels, d.labels);
  EXPECT_FALSE(drifted.features.all_close(d.features, 0.1F));
}

TEST(MetricsTest, AccuracyCountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_THROW(accuracy({1}, {1, 2}), openei::InvalidArgument);
  EXPECT_THROW(accuracy({}, {}), openei::InvalidArgument);
}

TEST(MetricsTest, ConfusionMatrixLayout) {
  auto m = confusion_matrix({0, 1, 1}, {0, 0, 1}, 2);
  EXPECT_EQ(m[0][0], 1U);  // truth 0 predicted 0
  EXPECT_EQ(m[0][1], 1U);  // truth 0 predicted 1
  EXPECT_EQ(m[1][1], 1U);
  EXPECT_EQ(m[1][0], 0U);
}

TEST(MetricsTest, MapPerfectAndDegenerate) {
  EXPECT_DOUBLE_EQ(mean_average_precision({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  // All predictions on class 0, only one correct of three.
  double map = mean_average_precision({0, 0, 0}, {0, 1, 2}, 3);
  EXPECT_NEAR(map, (1.0 / 3.0) / 3.0, 1e-9);
}

}  // namespace
}  // namespace openei::data
