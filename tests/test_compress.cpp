// Tests for the deep-compression suite (paper Table I): pruning, weight
// sharing, binarization, low-rank factorization, int8 quantization,
// distillation — each method's structural guarantees plus accuracy behaviour
// on a trained model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/compressed_model.h"
#include "compress/distill.h"
#include "compress/lowrank.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "compress/weight_sharing.h"
#include "data/synthetic.h"
#include "nn/dense.h"
#include "nn/train.h"
#include "nn/zoo.h"

namespace openei::compress {
namespace {

using common::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Shared fixture: a trained MLP on blobs, reused by every method's test.
class CompressFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(42);
    auto dataset = data::make_blobs(500, 12, 4, *rng_);
    auto [train, test] = data::train_test_split(dataset, 0.8, *rng_);
    train_ = new data::Dataset(std::move(train));
    test_ = new data::Dataset(std::move(test));
    model_ = new nn::Model(nn::zoo::make_mlp("teacher", 12, 4, {32, 16}, *rng_));
    nn::TrainOptions options;
    options.epochs = 25;
    options.sgd.learning_rate = 0.05F;
    options.sgd.momentum = 0.9F;
    nn::fit(*model_, *train_, options);
    baseline_accuracy_ = nn::evaluate_accuracy(*model_, *test_);
    ASSERT_GT(baseline_accuracy_, 0.9);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete train_;
    delete test_;
    delete rng_;
    model_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
    rng_ = nullptr;
  }

  static Rng* rng_;
  static data::Dataset* train_;
  static data::Dataset* test_;
  static nn::Model* model_;
  static double baseline_accuracy_;
};

Rng* CompressFixture::rng_ = nullptr;
data::Dataset* CompressFixture::train_ = nullptr;
data::Dataset* CompressFixture::test_ = nullptr;
nn::Model* CompressFixture::model_ = nullptr;
double CompressFixture::baseline_accuracy_ = 0.0;

TEST_F(CompressFixture, PruningReachesTargetSparsity) {
  PruneOptions options;
  options.sparsity = 0.7F;
  options.finetune_epochs = 0;
  CompressedModel pruned = magnitude_prune(*model_, options, nullptr);
  EXPECT_NEAR(weight_sparsity(pruned.model), 0.7, 0.02);
  EXPECT_LT(pruned.storage_bytes, model_->storage_bytes());
  // Original untouched.
  EXPECT_LT(weight_sparsity(*model_), 0.1);
}

TEST_F(CompressFixture, PruningWithFinetuneRecoversAccuracy) {
  PruneOptions options;
  options.sparsity = 0.8F;
  options.finetune_epochs = 0;
  CompressedModel pruned_only = magnitude_prune(*model_, options, nullptr);
  double acc_no_finetune = nn::evaluate_accuracy(pruned_only.model, *test_);

  options.finetune_epochs = 5;
  options.train.sgd.learning_rate = 0.02F;
  CompressedModel finetuned = magnitude_prune(*model_, options, train_);
  double acc_finetuned = nn::evaluate_accuracy(finetuned.model, *test_);

  // Table I: "pruning requires ... fine-tuning".  Fine-tuning must not hurt
  // and the fine-tuned model must stay close to baseline.
  EXPECT_GE(acc_finetuned + 1e-9, acc_no_finetune);
  EXPECT_GT(acc_finetuned, baseline_accuracy_ - 0.05);
  // Mask held: sparsity survives fine-tuning.
  EXPECT_NEAR(weight_sparsity(finetuned.model), 0.8, 0.02);
}

TEST_F(CompressFixture, PruningZeroSparsityIsIdentity) {
  PruneOptions options;
  options.sparsity = 0.0F;
  options.finetune_epochs = 0;
  CompressedModel same = magnitude_prune(*model_, options, nullptr);
  EXPECT_NEAR(nn::evaluate_accuracy(same.model, *test_), baseline_accuracy_, 1e-9);
}

TEST_F(CompressFixture, PruningRejectsFullSparsity) {
  PruneOptions options;
  options.sparsity = 1.0F;
  EXPECT_THROW(magnitude_prune(*model_, options, nullptr),
               openei::InvalidArgument);
}

TEST_F(CompressFixture, WeightSharingSnapsToCodebook) {
  Rng rng(7);
  WeightShareOptions options;
  options.clusters = 16;
  CompressedModel shared = kmeans_share_weights(*model_, options, rng);

  // Every weight tensor holds at most 16 distinct values.
  for (nn::Tensor* p : shared.model.parameters()) {
    if (!is_weight_tensor(*p)) continue;
    std::vector<float> distinct;
    for (float v : p->data()) {
      bool seen = false;
      for (float d : distinct) {
        if (d == v) {
          seen = true;
          break;
        }
      }
      if (!seen) distinct.push_back(v);
    }
    EXPECT_LE(distinct.size(), 16U);
  }
  // ~6x smaller (4 bits + codebook vs 32 bits), small accuracy cost.
  EXPECT_GT(static_cast<double>(model_->storage_bytes()) /
                static_cast<double>(shared.storage_bytes),
            4.0);
  EXPECT_GT(nn::evaluate_accuracy(shared.model, *test_),
            baseline_accuracy_ - 0.1);
}

TEST_F(CompressFixture, WeightSharingMoreClustersLessError) {
  Rng rng(8);
  WeightShareOptions few;
  few.clusters = 2;
  WeightShareOptions many;
  many.clusters = 64;
  CompressedModel coarse = kmeans_share_weights(*model_, few, rng);
  CompressedModel fine = kmeans_share_weights(*model_, many, rng);
  double acc_coarse = nn::evaluate_accuracy(coarse.model, *test_);
  double acc_fine = nn::evaluate_accuracy(fine.model, *test_);
  EXPECT_GE(acc_fine + 0.05, acc_coarse);  // more clusters can't be much worse
  EXPECT_LT(coarse.storage_bytes, fine.storage_bytes);
}

TEST_F(CompressFixture, BinarizationIsOneBitPerWeight) {
  CompressedModel binary = binarize_weights(*model_);
  // Weight tensors contain exactly two values (+alpha, -alpha) per tensor.
  for (nn::Tensor* p : binary.model.parameters()) {
    if (!is_weight_tensor(*p)) continue;
    float alpha = std::fabs((*p)[0]);
    for (float v : p->data()) {
      EXPECT_NEAR(std::fabs(v), alpha, 1e-6F);
    }
  }
  // ~32x compression on weights.
  EXPECT_GT(static_cast<double>(model_->storage_bytes()) /
                static_cast<double>(binary.storage_bytes),
            10.0);
}

TEST_F(CompressFixture, LowRankPreservesOutputsAtFullRank) {
  LowRankOptions options;
  options.rank_fraction = 1.0F;
  CompressedModel factored = lowrank_factorize(*model_, options);
  Tensor probe = test_->features;
  nn::Model original = model_->clone();
  EXPECT_TRUE(factored.model.forward(probe, false)
                  .all_close(original.forward(probe, false), 5e-2F));
}

TEST_F(CompressFixture, LowRankShrinksFlopsAndStorage) {
  LowRankOptions options;
  options.rank_fraction = 0.25F;
  CompressedModel factored = lowrank_factorize(*model_, options);
  EXPECT_LT(factored.model.flops_per_sample(), model_->flops_per_sample());
  EXPECT_LT(factored.storage_bytes, model_->storage_bytes());
  EXPECT_GT(nn::evaluate_accuracy(factored.model, *test_),
            baseline_accuracy_ - 0.15);
}

TEST_F(CompressFixture, ChosenRankClampsToValidRange) {
  LowRankOptions options;
  options.rank_fraction = 0.01F;
  EXPECT_EQ(chosen_rank(100, 50, options), 1U);
  options.rank_fraction = 1.0F;
  EXPECT_EQ(chosen_rank(100, 50, options), 50U);
}

TEST_F(CompressFixture, QuantizationQuartersStorageKeepsAccuracy) {
  CompressedModel quantized = quantize_int8(*model_);
  double ratio = static_cast<double>(model_->storage_bytes()) /
                 static_cast<double>(quantized.storage_bytes);
  // Real per-channel int8 storage carries one float scale per output row
  // (plus float biases), which on this tiny MLP costs ~0.06x of the ideal
  // 4x — hence a 2.9 floor rather than 3.0.
  EXPECT_GT(ratio, 2.8);
  EXPECT_LT(ratio, 4.5);
  EXPECT_GT(nn::evaluate_accuracy(quantized.model, *test_),
            baseline_accuracy_ - 0.05);
}

TEST_F(CompressFixture, QuantizedModelRejectsTraining) {
  CompressedModel quantized = quantize_int8(*model_);
  EXPECT_THROW(quantized.model.forward(test_->features, /*training=*/true),
               openei::InvalidArgument);
}

TEST_F(CompressFixture, DistillationTrainsSmallerStudentAboveChance) {
  Rng rng(9);
  nn::Model student = nn::zoo::make_mlp("student", 12, 4, {8}, rng);
  DistillOptions options;
  options.temperature = 2.0F;
  options.train.epochs = 30;
  options.train.sgd.learning_rate = 0.1F;
  options.train.sgd.momentum = 0.9F;
  CompressedModel distilled = distill(*model_, std::move(student), *train_, options);
  EXPECT_LT(distilled.storage_bytes, model_->storage_bytes());
  double acc = nn::evaluate_accuracy(distilled.model, *test_);
  EXPECT_GT(acc, 0.8) << "student failed to absorb teacher knowledge";
}

TEST_F(CompressFixture, DistillationRejectsMismatchedStudent) {
  Rng rng(10);
  nn::Model wrong_classes = nn::zoo::make_mlp("s", 12, 3, {8}, rng);
  DistillOptions options;
  EXPECT_THROW(distill(*model_, std::move(wrong_classes), *train_, options),
               openei::InvalidArgument);
  nn::Model wrong_input = nn::zoo::make_mlp("s", 10, 4, {8}, rng);
  EXPECT_THROW(distill(*model_, std::move(wrong_input), *train_, options),
               openei::InvalidArgument);
}

TEST_F(CompressFixture, ReportComputesRatioAndDelta) {
  PruneOptions options;
  options.sparsity = 0.5F;
  options.finetune_epochs = 0;
  CompressedModel pruned = magnitude_prune(*model_, options, nullptr);
  CompressionReport report = make_report(*model_, pruned, *test_);
  EXPECT_EQ(report.method, "magnitude_prune");
  EXPECT_EQ(report.original_bytes, model_->storage_bytes());
  EXPECT_GT(report.compression_ratio, 1.0);
  EXPECT_NEAR(report.accuracy_delta,
              report.accuracy_after - report.accuracy_before, 1e-12);
  EXPECT_EQ(report.flops_before, report.flops_after);  // pruning keeps shape
}

// Property sweep: every compression method keeps the model's output shape
// and strictly reduces storage at default settings.
struct MethodCase {
  const char* name;
};

class AllMethodsProperty : public CompressFixture,
                           public ::testing::WithParamInterface<int> {};

TEST_P(AllMethodsProperty, ShrinksStorageAndKeepsShape) {
  Rng rng(20);
  CompressedModel result = [&]() -> CompressedModel {
    switch (GetParam()) {
      case 0: {
        PruneOptions o;
        o.sparsity = 0.6F;
        o.finetune_epochs = 0;
        return magnitude_prune(*model_, o, nullptr);
      }
      case 1: {
        WeightShareOptions o;
        return kmeans_share_weights(*model_, o, rng);
      }
      case 2:
        return binarize_weights(*model_);
      case 3: {
        LowRankOptions o;
        return lowrank_factorize(*model_, o);
      }
      default:
        return quantize_int8(*model_);
    }
  }();
  EXPECT_LT(result.storage_bytes, model_->storage_bytes()) << result.method;
  EXPECT_EQ(result.model.output_shape(), model_->output_shape()) << result.method;
  EXPECT_EQ(result.model.input_shape(), model_->input_shape()) << result.method;
  // Accuracy stays above chance (0.25 for 4 classes) for every method.
  EXPECT_GT(nn::evaluate_accuracy(result.model, *test_), 0.4) << result.method;
}

INSTANTIATE_TEST_SUITE_P(Methods, AllMethodsProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace openei::compress
