// Unit + property tests for src/tensor: shapes, tensors, kernels, quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace openei::tensor {
namespace {

using openei::common::Rng;

TEST(ShapeTest, ElementsAndStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.elements(), 24U);
  auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3U);
  EXPECT_EQ(strides[0], 12U);
  EXPECT_EQ(strides[1], 4U);
  EXPECT_EQ(strides[2], 1U);
}

TEST(ShapeTest, RejectsZeroDims) {
  EXPECT_THROW(Shape({2, 0, 3}), openei::InvalidArgument);
}

TEST(ShapeTest, ElementCountOverflowIsRejected) {
  EXPECT_THROW(Shape({SIZE_MAX / 2, 3}), openei::InvalidArgument);
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.elements(), 1U);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(TensorTest, ConstructionAndFill) {
  Tensor z = Tensor::zeros(Shape{2, 2});
  EXPECT_FLOAT_EQ(z.sum(), 0.0F);
  Tensor o = Tensor::ones(Shape{2, 2});
  EXPECT_FLOAT_EQ(o.sum(), 4.0F);
  Tensor f = Tensor::full(Shape{3}, 2.5F);
  EXPECT_FLOAT_EQ(f.mean(), 2.5F);
}

TEST(TensorTest, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0F, 2.0F}), openei::InvalidArgument);
}

TEST(TensorTest, ElementAccessAndBounds) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at2(1, 2), 6.0F);
  t.at2(0, 0) = 9.0F;
  EXPECT_FLOAT_EQ(t[0], 9.0F);
  EXPECT_THROW(t.at2(2, 0), openei::InvalidArgument);
  EXPECT_THROW(t[6], openei::InvalidArgument);
  EXPECT_THROW(t.at4(0, 0, 0, 0), openei::InvalidArgument);
}

TEST(TensorTest, ReshapePreservesDataRejectsBadCount) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), openei::InvalidArgument);
}

TEST(TensorTest, ArithmeticOperators) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{2}, {3, 4});
  EXPECT_TRUE((a + b).all_close(Tensor(Shape{2}, {4, 6})));
  EXPECT_TRUE((b - a).all_close(Tensor(Shape{2}, {2, 2})));
  EXPECT_TRUE((a * b).all_close(Tensor(Shape{2}, {3, 8})));
  EXPECT_TRUE((a * 2.0F).all_close(Tensor(Shape{2}, {2, 4})));
  EXPECT_THROW(a += Tensor(Shape{3}), openei::InvalidArgument);
}

TEST(TensorTest, Reductions) {
  Tensor t(Shape{4}, {-1, 3, 0, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0F);
  EXPECT_FLOAT_EQ(t.mean(), 1.0F);
  EXPECT_FLOAT_EQ(t.min(), -1.0F);
  EXPECT_FLOAT_EQ(t.max(), 3.0F);
  EXPECT_EQ(t.argmax(), 1U);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(14.0F));
  EXPECT_EQ(t.count_near_zero(), 1U);
}

TEST(TensorTest, RandomTensorsAreSeedDeterministic) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor a = Tensor::random_normal(Shape{16}, rng1);
  Tensor b = Tensor::random_normal(Shape{16}, rng2);
  EXPECT_EQ(a, b);
}

TEST(OpsTest, MatmulSmallKnownValues) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(c.all_close(Tensor(Shape{2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatmulRejectsBadShapes) {
  EXPECT_THROW(matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})),
               openei::InvalidArgument);
  EXPECT_THROW(matmul(Tensor(Shape{2}), Tensor(Shape{2, 2})),
               openei::InvalidArgument);
}

TEST(OpsTest, TransposeInvolution) {
  Rng rng(1);
  Tensor a = Tensor::random_uniform(Shape{3, 5}, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(OpsTest, MatmulAssociatesWithTranspose) {
  // (A B)^T == B^T A^T — a structural identity that exercises both kernels.
  Rng rng(2);
  Tensor a = Tensor::random_uniform(Shape{4, 3}, rng);
  Tensor b = Tensor::random_uniform(Shape{3, 5}, rng);
  Tensor lhs = transpose(matmul(a, b));
  Tensor rhs = matmul(transpose(b), transpose(a));
  EXPECT_TRUE(lhs.all_close(rhs, 1e-4F));
}

TEST(OpsTest, AddRowBias) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor bias(Shape{2}, {10, 20});
  EXPECT_TRUE(add_row_bias(a, bias).all_close(Tensor(Shape{2, 2}, {11, 22, 13, 24})));
}

TEST(OpsTest, ConvSpecOutputSize) {
  Conv2dSpec spec;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  EXPECT_EQ(spec.out_size(8), 8U);  // same-padding
  spec.stride = 2;
  spec.padding = 0;
  EXPECT_EQ(spec.out_size(8), 3U);
  spec.kernel = 9;
  EXPECT_THROW(spec.out_size(4), openei::InvalidArgument);
}

TEST(OpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input channel.
  Rng rng(3);
  Tensor input = Tensor::random_uniform(Shape{1, 1, 4, 4}, rng);
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 1;
  Tensor w = Tensor::ones(Shape{1, 1, 1, 1});
  Tensor b = Tensor::zeros(Shape{1});
  Tensor out = conv2d(input, w, b, spec);
  EXPECT_TRUE(out.all_close(input));
}

TEST(OpsTest, Conv2dKnownSum) {
  // All-ones 2x2 kernel on a 3x3 ramp sums each window.
  Tensor input(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Conv2dSpec spec;
  spec.kernel = 2;
  Tensor w = Tensor::ones(Shape{1, 1, 2, 2});
  Tensor b = Tensor::zeros(Shape{1});
  Tensor out = conv2d(input, w, b, spec);
  EXPECT_TRUE(out.all_close(Tensor(Shape{1, 1, 2, 2}, {12, 16, 24, 28})));
}

// Property: direct convolution equals im2col+matmul over a parameter sweep.
struct ConvCase {
  std::size_t in_c, out_c, hw, kernel, stride, padding;
};

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, DirectMatchesIm2col) {
  const ConvCase& c = GetParam();
  Rng rng(17);
  Tensor input = Tensor::random_uniform(Shape{2, c.in_c, c.hw, c.hw}, rng);
  Conv2dSpec spec;
  spec.in_channels = c.in_c;
  spec.out_channels = c.out_c;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  Tensor w = Tensor::random_uniform(Shape{c.out_c, c.in_c, c.kernel, c.kernel}, rng);
  Tensor b = Tensor::random_uniform(Shape{c.out_c}, rng);
  Tensor direct = conv2d(input, w, b, spec);
  Tensor via_im2col = conv2d_im2col(input, w, b, spec);
  EXPECT_TRUE(direct.all_close(via_im2col, 1e-4F))
      << "in_c=" << c.in_c << " out_c=" << c.out_c << " hw=" << c.hw;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvEquivalence,
    ::testing::Values(ConvCase{1, 1, 5, 3, 1, 0}, ConvCase{3, 4, 6, 3, 1, 1},
                      ConvCase{2, 2, 8, 3, 2, 1}, ConvCase{4, 8, 7, 1, 1, 0},
                      ConvCase{2, 3, 9, 5, 2, 2}, ConvCase{1, 6, 4, 2, 2, 0}));

TEST(OpsTest, DepthwiseConvMatchesPerChannelConv) {
  // Depthwise conv on channel c equals a 1-channel full conv with that
  // channel's filter.
  Rng rng(23);
  std::size_t channels = 3;
  Tensor input = Tensor::random_uniform(Shape{1, channels, 6, 6}, rng);
  Tensor w = Tensor::random_uniform(Shape{channels, 1, 3, 3}, rng);
  Tensor b = Tensor::random_uniform(Shape{channels}, rng);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.kernel = 3;
  spec.padding = 1;
  Tensor dw = depthwise_conv2d(input, w, b, spec);

  for (std::size_t c = 0; c < channels; ++c) {
    Tensor one_input(Shape{1, 1, 6, 6});
    for (std::size_t h = 0; h < 6; ++h) {
      for (std::size_t wdx = 0; wdx < 6; ++wdx) {
        one_input.at4(0, 0, h, wdx) = input.at4(0, c, h, wdx);
      }
    }
    Tensor one_w(Shape{1, 1, 3, 3});
    for (std::size_t kh = 0; kh < 3; ++kh) {
      for (std::size_t kw = 0; kw < 3; ++kw) {
        one_w.at4(0, 0, kh, kw) = w.at4(c, 0, kh, kw);
      }
    }
    Tensor one_b(Shape{1}, {b[c]});
    Conv2dSpec one_spec;
    one_spec.in_channels = 1;
    one_spec.out_channels = 1;
    one_spec.kernel = 3;
    one_spec.padding = 1;
    Tensor ref = conv2d(one_input, one_w, one_b, one_spec);
    for (std::size_t h = 0; h < 6; ++h) {
      for (std::size_t wdx = 0; wdx < 6; ++wdx) {
        EXPECT_NEAR(dw.at4(0, c, h, wdx), ref.at4(0, 0, h, wdx), 1e-4F);
      }
    }
  }
}

TEST(OpsTest, MaxAndAvgPooling) {
  Tensor input(Shape{1, 1, 4, 4},
               {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor mx = maxpool2d(input, 2);
  EXPECT_TRUE(mx.all_close(Tensor(Shape{1, 1, 2, 2}, {6, 8, 14, 16})));
  Tensor av = avgpool2d(input, 2);
  EXPECT_TRUE(av.all_close(Tensor(Shape{1, 1, 2, 2}, {3.5, 5.5, 11.5, 13.5})));
}

TEST(OpsTest, PoolingRejectsOversizedWindow) {
  EXPECT_THROW(maxpool2d(Tensor(Shape{1, 1, 2, 2}), 3), openei::InvalidArgument);
}

TEST(OpsTest, GlobalAvgPool) {
  Tensor input(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out = global_avgpool(input);
  EXPECT_TRUE(out.all_close(Tensor(Shape{1, 2}, {2.5, 25})));
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 5, 0});
  Tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (std::size_t c = 0; c < 3; ++c) sum += p.at2(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
  EXPECT_GT(p.at2(0, 2), p.at2(0, 1));
  EXPECT_GT(p.at2(1, 1), p.at2(1, 0));
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a(Shape{1, 3}, {1000, 1001, 1002});  // would overflow naive exp
  Tensor p = softmax_rows(a);
  Tensor b(Shape{1, 3}, {0, 1, 2});
  EXPECT_TRUE(p.all_close(softmax_rows(b), 1e-5F));
}

TEST(OpsTest, OneHot) {
  Tensor oh = one_hot({2, 0}, 3);
  EXPECT_TRUE(oh.all_close(Tensor(Shape{2, 3}, {0, 0, 1, 1, 0, 0})));
  EXPECT_THROW(one_hot({3}, 3), openei::InvalidArgument);
}

TEST(OpsTest, ConcatAndSliceRowsRoundTrip) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{1, 2}, {5, 6});
  Tensor cat = concat_rows({a, b});
  EXPECT_EQ(cat.shape(), Shape({3, 2}));
  EXPECT_EQ(slice_rows(cat, 0, 2), a);
  EXPECT_EQ(slice_rows(cat, 2, 3), b);
  EXPECT_THROW(slice_rows(cat, 2, 2), openei::InvalidArgument);
  EXPECT_THROW(concat_rows({a, Tensor(Shape{1, 3})}), openei::InvalidArgument);
}

TEST(QuantizeTest, ParamsCoverRangeIncludingZero) {
  QuantParams p = QuantParams::choose(0.5F, 2.0F);
  // Range is widened to include zero; zero must be exactly representable.
  float zero_q = std::round(0.0F / p.scale) + static_cast<float>(p.zero_point);
  EXPECT_GE(zero_q, -128.0F);
  EXPECT_LE(zero_q, 127.0F);
}

TEST(QuantizeTest, QuantizeDequantizeSmallError) {
  Rng rng(31);
  Tensor t = Tensor::random_uniform(Shape{64}, rng, -2.0F, 2.0F);
  QuantizedTensor q = QuantizedTensor::quantize(t);
  Tensor back = q.dequantize();
  float max_err = quantization_step_error(q.params());
  for (std::size_t i = 0; i < t.elements(); ++i) {
    EXPECT_NEAR(back[i], t[i], max_err + 1e-6F);
  }
}

TEST(QuantizeTest, StorageIsQuarterOfFloat) {
  Tensor t = Tensor::zeros(Shape{100});
  QuantizedTensor q = QuantizedTensor::quantize(t);
  EXPECT_EQ(q.size_bytes() * 4, t.size_bytes());
}

TEST(QuantizeTest, ConstantTensorQuantizesExactly) {
  Tensor t = Tensor::zeros(Shape{8});
  QuantizedTensor q = QuantizedTensor::quantize(t);
  EXPECT_TRUE(q.dequantize().all_close(t, 1e-6F));
}

// Property: quantized matmul approximates float matmul with bounded error.
class QuantMatmulProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantMatmulProperty, ApproximatesFloatMatmul) {
  std::size_t k = GetParam();
  Rng rng(41 + k);
  Tensor a = Tensor::random_uniform(Shape{4, k}, rng, -1.0F, 1.0F);
  Tensor b = Tensor::random_uniform(Shape{k, 5}, rng, -1.0F, 1.0F);
  Tensor exact = matmul(a, b);
  QuantizedTensor qa = QuantizedTensor::quantize(a);
  QuantizedTensor qb = QuantizedTensor::quantize(b);
  Tensor approx = quantized_matmul(qa, qb);
  // Error per product term is bounded by step errors; accumulate over k.
  float tol =
      static_cast<float>(k) * 2.5F *
      (quantization_step_error(qa.params()) + quantization_step_error(qb.params()));
  for (std::size_t i = 0; i < exact.elements(); ++i) {
    EXPECT_NEAR(approx[i], exact[i], tol) << "k=" << k << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantMatmulProperty,
                         ::testing::Values(1, 2, 8, 32, 128));

}  // namespace
}  // namespace openei::tensor
