// Tests for the edge-hardware simulator: device fleet orderings, roofline
// cost model, package effects, network links.
#include <gtest/gtest.h>

#include <algorithm>

#include "collab/edge_edge.h"
#include "common/rng.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

namespace openei::hwsim {
namespace {

using common::Rng;

nn::Model test_model() {
  Rng rng(1);
  return nn::zoo::make_mlp("probe", 32, 4, {64, 32}, rng);
}

TEST(DeviceTest, FleetOrderingByCompute) {
  // The capability ladder the paper assumes: MCU << Pi << phone << Jetson
  // << edge server << cloud.
  EXPECT_LT(arduino_class().effective_gflops, raspberry_pi_3().effective_gflops);
  EXPECT_LT(raspberry_pi_3().effective_gflops, raspberry_pi_4().effective_gflops);
  EXPECT_LT(raspberry_pi_4().effective_gflops, mobile_phone().effective_gflops);
  EXPECT_LT(mobile_phone().effective_gflops, jetson_tx2().effective_gflops);
  EXPECT_LT(jetson_tx2().effective_gflops, edge_server().effective_gflops);
  EXPECT_LT(edge_server().effective_gflops, cloud_gpu().effective_gflops);
}

TEST(DeviceTest, FleetsHaveUniqueNames) {
  auto fleet = default_fleet();
  EXPECT_EQ(fleet.size(), 7U);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = i + 1; j < fleet.size(); ++j) {
      EXPECT_NE(fleet[i].name, fleet[j].name);
    }
  }
  EXPECT_EQ(edge_fleet().size(), 6U);  // cloud excluded
}

TEST(DeviceTest, InferenceEnergyIsAboveIdleDraw) {
  DeviceProfile pi = raspberry_pi_3();
  double energy = pi.inference_energy_j(2.0);
  EXPECT_NEAR(energy, (pi.active_power_w - pi.idle_power_w) * 2.0, 1e-12);
  EXPECT_GT(energy, 0.0);
}

TEST(CostModelTest, FasterDeviceLowerLatency) {
  nn::Model model = test_model();
  PackageSpec package = openei_package();
  InferenceCost slow = estimate_inference(model, package, raspberry_pi_3());
  InferenceCost fast = estimate_inference(model, package, edge_server());
  EXPECT_GT(slow.latency_s, fast.latency_s);
}

TEST(CostModelTest, LatencyScalesWithModelFlops) {
  Rng rng(2);
  nn::Model small = nn::zoo::make_mlp("small", 32, 4, {16}, rng);
  nn::Model large = nn::zoo::make_mlp("large", 32, 4, {256, 256}, rng);
  PackageSpec package = lite_framework();
  DeviceProfile device = raspberry_pi_3();
  EXPECT_LT(estimate_inference(small, package, device).latency_s,
            estimate_inference(large, package, device).latency_s);
}

TEST(CostModelTest, FullFrameworkHasHigherOverheadThanLite) {
  nn::Model model = test_model();
  DeviceProfile device = raspberry_pi_3();
  InferenceCost full = estimate_inference(model, full_framework(), device);
  InferenceCost lite = estimate_inference(model, lite_framework(), device);
  // The pCAMP observation: the lite package wins latency AND memory on a Pi.
  EXPECT_GT(full.latency_s, lite.latency_s);
  EXPECT_GT(full.memory_bytes, lite.memory_bytes);
}

TEST(CostModelTest, PeakActivationCoversWidestLayerPair) {
  Rng rng(3);
  nn::Model model = nn::zoo::make_mlp("m", 8, 2, {100}, rng);
  // Peak pair is the 100-wide ReLU: 100 in + 100 out floats live at once.
  EXPECT_EQ(peak_activation_bytes(model), (100U + 100U) * sizeof(float));
}

TEST(CostModelTest, McuCannotHoldCnn) {
  Rng rng(4);
  nn::zoo::ImageSpec spec;
  nn::Model cnn = nn::zoo::make_mini_vgg(spec, rng);
  EXPECT_FALSE(fits_in_ram(cnn, lite_framework(), arduino_class()));
  EXPECT_TRUE(fits_in_ram(cnn, lite_framework(), raspberry_pi_3()));
}

TEST(CostModelTest, EnergyFollowsLatencyAndPower) {
  nn::Model model = test_model();
  PackageSpec package = openei_package();
  DeviceProfile pi = raspberry_pi_3();
  InferenceCost cost = estimate_inference(model, package, pi);
  EXPECT_NEAR(cost.energy_j, (pi.active_power_w - pi.idle_power_w) * cost.latency_s,
              1e-12);
}

TEST(CostModelTest, TrainingCostsMoreThanInference) {
  nn::Model model = test_model();
  PackageSpec package = openei_package();
  DeviceProfile device = raspberry_pi_4();
  InferenceCost inference = estimate_inference(model, package, device);
  InferenceCost training = estimate_training(model, package, device, 100, 5);
  EXPECT_GT(training.latency_s, inference.latency_s * 100);
  EXPECT_GT(training.memory_bytes, inference.memory_bytes);
}

TEST(CostModelTest, TrainingRejectsInferenceOnlyPackage) {
  nn::Model model = test_model();
  EXPECT_THROW(
      estimate_training(model, lite_framework(), raspberry_pi_4(), 10, 1),
      openei::InvalidArgument);
}

TEST(CostModelTest, LayerProfileSumsToStageLatency) {
  Rng rng(5);
  nn::zoo::ImageSpec spec;
  nn::Model model = nn::zoo::make_mini_vgg(spec, rng);
  auto package = openei_package();
  auto device = raspberry_pi_4();

  auto layers = profile_layers(model, package, device);
  ASSERT_EQ(layers.size(), model.layer_count());
  double total = 0.0;
  for (const auto& layer : layers) {
    EXPECT_GT(layer.latency_s, 0.0) << layer.type;
    total += layer.latency_s;
  }
  // The profiler's total equals the split-inference stage model over the
  // whole network (they share the same roofline arithmetic).
  double stage = collab::stage_latency(model, 0, model.layer_count(), package,
                                       device);
  EXPECT_NEAR(total, stage, stage * 1e-9);

  // Conv layers dominate a VGG's time; pick the most expensive layer and
  // check it is a conv.
  auto hottest = std::max_element(layers.begin(), layers.end(),
                                  [](const LayerCost& a, const LayerCost& b) {
                                    return a.latency_s < b.latency_s;
                                  });
  EXPECT_EQ(hottest->type, "conv2d");
}

TEST(NetworkTest, LinkOrderingAndTransferMath) {
  auto links = default_links();
  ASSERT_EQ(links.size(), 4U);
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_GT(links[i].bandwidth_bps, links[i - 1].bandwidth_bps);
  }
  NetworkLink link = wifi();
  std::size_t payload = 10'000'000;  // 10 MB
  double t = link.transfer_time_s(payload);
  EXPECT_NEAR(t, 0.0025 + 8e7 / 100e6, 1e-9);
  EXPECT_NEAR(link.round_trip_s(payload, 100),
              link.rtt_s + (1e7 + 100) * 8.0 / 100e6, 1e-9);
  EXPECT_GT(link.transfer_energy_j(payload), 0.0);
}

TEST(NetworkTest, LorawanIsUnusableForVideo) {
  // The Fig. 1 motivation in numbers: a single 100 kB frame takes ~30 s on
  // LoRaWAN but milliseconds on LAN.
  std::size_t frame = 100'000;
  EXPECT_GT(lorawan().transfer_time_s(frame), 25.0);
  EXPECT_LT(ethernet_lan().transfer_time_s(frame), 0.01);
}

}  // namespace
}  // namespace openei::hwsim
