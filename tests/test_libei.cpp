// Integration tests for libei + EdgeNode: the Fig. 6 REST resource scheme
// end-to-end — in-process and over real loopback HTTP — including the full
// Sec. III-E walkthrough (camera data API -> detection algorithm API).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/edge_node.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"

namespace openei::libei {
namespace {

using common::Json;
using common::Rng;

/// Node fixture: a Raspberry-Pi-class node with two detection model
/// variants (big/accurate and small/fast) and a camera sensor.
class NodeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(21);
    dataset_ = new data::Dataset(data::make_blobs(400, 8, 3, rng));
    auto [train, test] = data::train_test_split(*dataset_, 0.8, rng);
    test_ = new data::Dataset(std::move(test));

    nn::TrainOptions topt;
    topt.epochs = 20;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;

    node_ = new core::EdgeNode(core::EdgeNodeConfig{
        hwsim::raspberry_pi_3(), hwsim::openei_package(), 1024});

    nn::Model big = nn::zoo::make_mlp("detect_big", 8, 3, {64, 32}, rng);
    nn::fit(big, train, topt);
    double big_acc = nn::evaluate_accuracy(big, *test_);
    nn::Model small = nn::zoo::make_mlp("detect_small", 8, 3, {4}, rng);
    nn::fit(small, train, topt);
    double small_acc = nn::evaluate_accuracy(small, *test_);
    // The fixture's premise: big is more accurate, small is lighter.
    ASSERT_GT(big_acc, small_acc - 0.01);
    node_->deploy_model("safety", "detection", std::move(big), big_acc);
    node_->deploy_model("safety", "detection", std::move(small), small_acc);

    // Camera feed: payloads are 8-feature vectors.
    for (std::size_t i = 0; i < 10; ++i) {
      common::JsonArray features;
      for (std::size_t f = 0; f < 8; ++f) {
        features.emplace_back(
            static_cast<double>(test_->features.at2(i, f)));
      }
      node_->ingest("camera1", static_cast<double>(i), Json(std::move(features)));
    }
  }

  static void TearDownTestSuite() {
    delete node_;
    delete test_;
    delete dataset_;
    node_ = nullptr;
    test_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::Dataset* test_;
  static core::EdgeNode* node_;
};

data::Dataset* NodeFixture::dataset_ = nullptr;
data::Dataset* NodeFixture::test_ = nullptr;
core::EdgeNode* NodeFixture::node_ = nullptr;

TEST_F(NodeFixture, DataRealtimeRoute) {
  auto response = node_->call("GET", "/ei_data/realtime/camera1?timestamp=3");
  ASSERT_EQ(response.status, 200);
  Json doc = Json::parse(response.body);
  EXPECT_DOUBLE_EQ(doc.at("timestamp").as_number(), 3.0);
  EXPECT_EQ(doc.at("payload").as_array().size(), 8U);
}

TEST_F(NodeFixture, DataHistoryRoute) {
  auto response = node_->call("GET", "/ei_data/history/camera1?start=2&end=5");
  ASSERT_EQ(response.status, 200);
  Json doc = Json::parse(response.body);
  EXPECT_EQ(doc.at("records").as_array().size(), 4U);
}

TEST_F(NodeFixture, DataRoutesReject) {
  EXPECT_EQ(node_->call("GET", "/ei_data/realtime/nope?timestamp=0").status, 404);
  EXPECT_EQ(node_->call("GET", "/ei_data/realtime/camera1?timestamp=99").status,
            404);
  EXPECT_EQ(node_->call("GET", "/ei_data/bogus/camera1").status, 400);
  EXPECT_EQ(node_->call("GET", "/ei_data/realtime").status, 400);
  EXPECT_EQ(node_->call("GET", "/nonsense").status, 404);
}

TEST_F(NodeFixture, AlgorithmCallDefaultsToAccuracyOriented) {
  // Paper Sec. III-E: default selection is accuracy oriented -> detect_big.
  auto response = node_->call(
      "GET", "/ei_algorithms/safety/detection?sensor=camera1&timestamp=0");
  ASSERT_EQ(response.status, 200) << response.body;
  Json doc = Json::parse(response.body);
  EXPECT_EQ(doc.at("model").as_string(), "detect_big");
  EXPECT_EQ(doc.at("predictions").as_array().size(), 1U);
  EXPECT_TRUE(doc.at("alem").contains("latency_s"));
}

TEST_F(NodeFixture, AlgorithmCallLatencyObjectivePicksSmallModel) {
  auto response = node_->call(
      "GET",
      "/ei_algorithms/safety/detection?sensor=camera1&objective=latency");
  ASSERT_EQ(response.status, 200) << response.body;
  Json doc = Json::parse(response.body);
  EXPECT_EQ(doc.at("model").as_string(), "detect_small");
}

TEST_F(NodeFixture, AlgorithmCallWithInlineBatchPredictsWell) {
  // Send 50 test rows inline and check the predictions against labels.
  common::JsonArray rows;
  for (std::size_t i = 0; i < 50; ++i) {
    common::JsonArray row;
    for (std::size_t f = 0; f < 8; ++f) {
      row.emplace_back(static_cast<double>(test_->features.at2(i, f)));
    }
    rows.emplace_back(std::move(row));
  }
  auto response = node_->call("POST", "/ei_algorithms/safety/detection",
                              Json(std::move(rows)).dump());
  ASSERT_EQ(response.status, 200) << response.body;
  Json doc = Json::parse(response.body);
  const auto& predictions = doc.at("predictions").as_array();
  ASSERT_EQ(predictions.size(), 50U);
  std::vector<std::size_t> predicted;
  for (const Json& p : predictions) {
    predicted.push_back(static_cast<std::size_t>(p.as_int()));
  }
  std::vector<std::size_t> truth(test_->labels.begin(),
                                 test_->labels.begin() + 50);
  EXPECT_GT(data::accuracy(predicted, truth), 0.8);
}

TEST_F(NodeFixture, AlgorithmCallInfeasibleConstraints400s) {
  auto response = node_->call(
      "GET", "/ei_algorithms/safety/detection?sensor=camera1&min_accuracy=1.5"
             "&objective=latency");
  EXPECT_EQ(response.status, 400);
}

TEST_F(NodeFixture, AlgorithmCallValidation) {
  EXPECT_EQ(node_->call("GET", "/ei_algorithms/safety/unknown?input=[1]").status,
            404);
  EXPECT_EQ(node_->call("GET", "/ei_algorithms/safety/detection").status, 400);
  EXPECT_EQ(
      node_->call("GET", "/ei_algorithms/safety/detection?input=[1,2]").status,
      400);  // wrong width
  EXPECT_EQ(node_->call("GET",
                        "/ei_algorithms/safety/detection?input=[1]&objective=warp")
                .status,
            400);
}

TEST_F(NodeFixture, ModelIndexAndFetch) {
  auto index = node_->call("GET", "/ei_models");
  ASSERT_EQ(index.status, 200);
  Json doc = Json::parse(index.body);
  EXPECT_EQ(doc.at("models").as_array().size(), 2U);

  auto fetch = node_->call("GET", "/ei_models/detect_small");
  ASSERT_EQ(fetch.status, 200);
  Json model_doc = Json::parse(fetch.body);
  nn::Model rebuilt = nn::model_from_json(model_doc.at("model"));
  EXPECT_EQ(rebuilt.name(), "detect_small");

  EXPECT_EQ(node_->call("GET", "/ei_models/ghost").status, 404);
}

TEST_F(NodeFixture, ModelDeploymentOverRest) {
  Rng rng(31);
  nn::Model fresh = nn::zoo::make_mlp("detect_v3", 8, 3, {8}, rng);
  std::string body = nn::save_model(fresh);
  auto response = node_->call(
      "POST", "/ei_models?scenario=safety&algorithm=detection&accuracy=0.5",
      body);
  EXPECT_EQ(response.status, 201);
  EXPECT_TRUE(node_->registry().contains("detect_v3"));
  node_->registry().erase("detect_v3");  // restore fixture state

  EXPECT_EQ(node_->call("POST", "/ei_models", body).status, 400);  // no scenario
}

TEST_F(NodeFixture, FullSec3EWalkthroughOverRealHttp) {
  // The paper's Sec. III-E programming model, over actual loopback HTTP:
  // 1. GET /ei_data/realtime/camera1?timestamp=...   (fetch the frame)
  // 2. GET /ei_algorithms/safety/detection?sensor=camera1 (detect objects)
  std::uint16_t port = node_->start_server(0);
  net::HttpClient client(port);

  auto frame = client.get("/ei_data/realtime/camera1?timestamp=1");
  ASSERT_EQ(frame.status, 200);
  Json frame_doc = Json::parse(frame.body);
  EXPECT_DOUBLE_EQ(frame_doc.at("timestamp").as_number(), 1.0);

  auto detection =
      client.get("/ei_algorithms/safety/detection?sensor=camera1&timestamp=1");
  ASSERT_EQ(detection.status, 200);
  Json result = Json::parse(detection.body);
  EXPECT_EQ(result.at("scenario").as_string(), "safety");
  EXPECT_EQ(result.at("device").as_string(), "raspberry-pi-3");
  EXPECT_EQ(result.at("predictions").as_array().size(), 1U);

  node_->stop_server();
  EXPECT_FALSE(node_->serving());
}

TEST(EdgeNodeTest, DeployAndPlayOnAnyProfile) {
  // "any hardware ... will become an intelligent edge after deploying
  // OpenEI" — same code path on a Jetson profile.
  Rng rng(41);
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                           hwsim::lite_framework(), 64});
  nn::Model model = nn::zoo::make_mlp("m", 4, 2, {8}, rng);
  node.deploy_model("home", "power_monitor", std::move(model), 0.9);
  auto response = node.call("GET",
                            "/ei_algorithms/home/power_monitor?input=[1,2,3,4]");
  EXPECT_EQ(response.status, 200);
  Json doc = Json::parse(response.body);
  EXPECT_EQ(doc.at("device").as_string(), "jetson-tx2");
}

TEST(EdgeNodeTest, ServerLifecycleGuards) {
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                           hwsim::openei_package(), 16});
  EXPECT_THROW(node.port(), openei::InvalidArgument);
  node.start_server(0);
  EXPECT_THROW(node.start_server(0), openei::InvalidArgument);
  node.stop_server();
  node.stop_server();  // idempotent
}

}  // namespace
}  // namespace openei::libei
