// fp32 SIMD GEMM suite (label: simd): packing round-trips, the accuracy
// contract of the dispatched microkernels against the exact scalar
// reference, thread-count bit-identity at every ISA level the host
// supports, fused epilogue equivalence, the 64-byte tensor alignment
// regression, and prepacked weights round-tripping through session
// hot-swap/rollback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "runtime/model_registry.h"
#include "runtime/session_cache.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "tensor/pack.h"
#include "tensor/tensor.h"

namespace openei {
namespace {

using common::Rng;
using tensor::PackedMatrix;
using tensor::Shape;
using tensor::Tensor;

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : previous_(common::thread_count()) {
    common::set_thread_count(n);
  }
  ~ScopedThreads() { common::set_thread_count(previous_); }

 private:
  std::size_t previous_;
};

/// Clamps the fp32 dispatch level for the scope, so one host can drive the
/// scalar, AVX2, and AVX-512 kernels (up to what it supports).
class ScopedIsaCap {
 public:
  explicit ScopedIsaCap(int cap)
      : previous_(tensor::detail::set_fp32_isa_cap(cap)) {}
  ~ScopedIsaCap() { tensor::detail::set_fp32_isa_cap(previous_); }

 private:
  int previous_;
};

/// Exact-reference product via gemm_ref into a zeroed buffer.
Tensor ref_product(const Tensor& a, const Tensor& b) {
  std::size_t m = a.shape().dim(0);
  std::size_t k = a.shape().dim(1);
  std::size_t n = b.shape().dim(1);
  Tensor out(Shape{m, n});
  tensor::gemm_ref(a.data().data(), b.data().data(), out.data().data(), m, k,
                   n);
  return out;
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

TEST(PackedMatrixTest, PackUnpackRoundTripIsExact) {
  Rng rng(21);
  // Widths crossing every panel-tail case: full panels, one ragged panel,
  // sub-panel, single column.
  for (auto [k, n] : {std::pair<std::size_t, std::size_t>{7, 16},
                      {12, 32},
                      {5, 17},
                      {9, 3},
                      {1, 1},
                      {33, 95}}) {
    Tensor b = Tensor::random_normal(Shape{k, n}, rng);
    PackedMatrix packed = PackedMatrix::pack(b);
    EXPECT_EQ(packed.rows(), k);
    EXPECT_EQ(packed.cols(), n);
    EXPECT_EQ(packed.panels(), (n + 15) / 16);
    EXPECT_EQ(packed.unpack(), b) << k << "x" << n;
  }
}

TEST(PackedMatrixTest, PackTransposedMatchesExplicitTranspose) {
  Rng rng(22);
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{8, 27},
                      {17, 5},
                      {40, 33}}) {
    Tensor bt = Tensor::random_normal(Shape{n, k}, rng);  // [n, k] source
    PackedMatrix packed = PackedMatrix::pack_transposed(bt);
    EXPECT_EQ(packed.rows(), k);
    EXPECT_EQ(packed.cols(), n);
    EXPECT_EQ(packed.unpack(), tensor::transpose(bt));
  }
}

TEST(PackedMatrixTest, PanelsAreCacheLineAligned) {
  Rng rng(23);
  PackedMatrix packed =
      PackedMatrix::pack(Tensor::random_normal(Shape{11, 37}, rng));
  for (std::size_t j = 0; j < packed.panels(); ++j) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed.panel(j)) % 64, 0U);
  }
}

TEST(PackedMatrixTest, RepackReusesGrownStorage) {
  Rng rng(24);
  Tensor big = Tensor::random_normal(Shape{32, 48}, rng);
  Tensor small = Tensor::random_normal(Shape{4, 5}, rng);
  PackedMatrix scratch;
  scratch.repack(big.data().data(), 32, 48);
  EXPECT_EQ(scratch.unpack(), big);
  scratch.repack(small.data().data(), 4, 5);
  EXPECT_EQ(scratch.unpack(), small);
  scratch.repack(big.data().data(), 32, 48);
  EXPECT_EQ(scratch.unpack(), big);
}

// ---------------------------------------------------------------------------
// Tensor alignment regression
// ---------------------------------------------------------------------------

bool is_aligned64(const float* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(TensorAlignmentTest, AllTensorBuffersAre64ByteAligned) {
  Rng rng(25);
  for (std::size_t elems : {1UL, 2UL, 15UL, 16UL, 17UL, 63UL, 257UL}) {
    Tensor t = Tensor::random_normal(Shape{elems}, rng);
    EXPECT_TRUE(is_aligned64(t.data().data())) << elems;

    Tensor copy = t;
    EXPECT_TRUE(is_aligned64(copy.data().data()));

    Tensor moved = std::move(copy);
    EXPECT_TRUE(is_aligned64(moved.data().data()));

    Tensor reshaped = t.reshaped(Shape{elems, 1});
    EXPECT_TRUE(is_aligned64(reshaped.data().data()));

    Tensor from_vec(Shape{elems}, std::vector<float>(elems, 0.5F));
    EXPECT_TRUE(is_aligned64(from_vec.data().data()));
  }
}

// ---------------------------------------------------------------------------
// Accuracy contract: dispatched kernels vs exact scalar reference
// ---------------------------------------------------------------------------

/// Absolute tolerance for a length-k fp32 FMA chain over ~unit-magnitude
/// operands: rounding error grows linearly in chain length.
float gemm_tolerance(std::size_t k) {
  return 1e-5F + 2e-7F * static_cast<float>(k);
}

TEST(SimdGemmTest, EveryIsaLevelMatchesReferenceWithinTolerance) {
  Rng rng(26);
  const int detected = tensor::fp32_isa_level_detected();
  // Shapes hitting both partition regimes, all row-tail MR cases, ragged
  // panels, and single-row (m == 1) GEMV.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 64, 17},  {3, 128, 16}, {7, 33, 95},   {37, 301, 53},
      {64, 96, 80}, {129, 65, 33}, {256, 64, 16}, {5, 40, 512}};
  for (const auto& s : shapes) {
    auto [m, k, n] = std::tuple{s[0], s[1], s[2]};
    Tensor a = Tensor::random_normal(Shape{m, k}, rng);
    Tensor b = Tensor::random_normal(Shape{k, n}, rng);
    Tensor expected = ref_product(a, b);
    PackedMatrix bp = PackedMatrix::pack(b);
    for (int level = 0; level <= detected; ++level) {
      ScopedIsaCap cap(level);
      Tensor got(Shape{m, n});
      tensor::gemm_packed(a.data().data(), m, bp, nullptr, false,
                          /*accumulate=*/false, got.data().data());
      float tol = gemm_tolerance(k);
      for (std::size_t i = 0; i < got.elements(); ++i) {
        ASSERT_NEAR(got[i], expected[i], tol)
            << m << "x" << k << "x" << n << " level " << level << " flat " << i;
      }
    }
  }
}

TEST(SimdGemmTest, ScalarLevelMatchesReferenceExactly) {
  Rng rng(27);
  ScopedIsaCap cap(0);
  ScopedThreads serial(1);
  for (auto [m, k, n] : {std::array<std::size_t, 3>{13, 57, 29},
                         {1, 300, 16},
                         {37, 301, 53}}) {
    Tensor a = Tensor::random_normal(Shape{m, k}, rng);
    Tensor b = Tensor::random_normal(Shape{k, n}, rng);
    Tensor expected = ref_product(a, b);
    Tensor got(Shape{m, n});
    tensor::gemm_packed(a.data().data(), m, PackedMatrix::pack(b), nullptr,
                        false, /*accumulate=*/false, got.data().data());
    // Same multiply-then-add arithmetic in the same ascending-k order:
    // the scalar microkernel is bit-identical to the reference (float ==
    // treats the only possible difference, zero sign, as equal).
    for (std::size_t i = 0; i < got.elements(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "flat " << i;
    }
  }
}

TEST(SimdGemmTest, ThreadCountBitIdenticalAtEveryLevel) {
  Rng rng(28);
  const int detected = tensor::fp32_isa_level_detected();
  // Row-dominant and panel-dominant shapes: both parallel partitions.
  for (auto [m, k, n] : {std::array<std::size_t, 3>{256, 64, 48},
                         {8, 64, 512},
                         {61, 77, 130}}) {
    Tensor a = Tensor::random_normal(Shape{m, k}, rng);
    Tensor b = Tensor::random_normal(Shape{k, n}, rng);
    Tensor bias = Tensor::random_normal(Shape{n}, rng);
    PackedMatrix bp = PackedMatrix::pack(b);
    for (int level = 0; level <= detected; ++level) {
      ScopedIsaCap cap(level);
      Tensor one(Shape{m, n}), four(Shape{m, n});
      {
        ScopedThreads threads(1);
        tensor::gemm_packed(a.data().data(), m, bp, bias.data().data(),
                            /*fuse_relu=*/true, false, one.data().data());
      }
      {
        ScopedThreads threads(4);
        tensor::gemm_packed(a.data().data(), m, bp, bias.data().data(),
                            /*fuse_relu=*/true, false, four.data().data());
      }
      EXPECT_EQ(one, four) << m << "x" << k << "x" << n << " level " << level;
    }
  }
}

TEST(SimdGemmTest, FusedBiasReluEpilogueMatchesSeparateOps) {
  Rng rng(29);
  const int detected = tensor::fp32_isa_level_detected();
  const std::size_t m = 23, k = 65, n = 43;
  Tensor a = Tensor::random_normal(Shape{m, k}, rng);
  Tensor b = Tensor::random_normal(Shape{k, n}, rng);
  Tensor bias = Tensor::random_normal(Shape{n}, rng);
  PackedMatrix bp = PackedMatrix::pack(b);
  for (int level = 0; level <= detected; ++level) {
    ScopedIsaCap cap(level);
    Tensor plain(Shape{m, n});
    tensor::gemm_packed(a.data().data(), m, bp, nullptr, false, false,
                        plain.data().data());
    // Separate epilogue: one bias add, one ReLU clamp per element.
    Tensor expected = plain;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float v = expected.at2(i, j) + bias[j];
        expected.at2(i, j) = v > 0.0F ? v : 0.0F;
      }
    }
    Tensor fused(Shape{m, n});
    tensor::gemm_packed(a.data().data(), m, bp, bias.data().data(),
                        /*fuse_relu=*/true, false, fused.data().data());
    EXPECT_EQ(fused, expected) << "level " << level;
  }
}

TEST(SimdGemmTest, AccumulateModeAddsOntoExistingValues) {
  Rng rng(30);
  const std::size_t m = 19, k = 31, n = 37;
  Tensor a = Tensor::random_normal(Shape{m, k}, rng);
  Tensor b = Tensor::random_normal(Shape{k, n}, rng);
  Tensor base = Tensor::random_normal(Shape{m, n}, rng);
  PackedMatrix bp = PackedMatrix::pack(b);

  Tensor product(Shape{m, n});
  tensor::gemm_packed(a.data().data(), m, bp, nullptr, false, false,
                      product.data().data());

  Tensor acc = base;
  tensor::gemm_packed(a.data().data(), m, bp, nullptr, false,
                      /*accumulate=*/true, acc.data().data());
  // accumulate applies exactly one add of the kernel total per element.
  for (std::size_t i = 0; i < acc.elements(); ++i) {
    ASSERT_EQ(acc[i], base[i] + product[i]) << "flat " << i;
  }
}

TEST(SimdGemmTest, MatmulAndConvRouteThroughPackedKernels) {
  Rng rng(31);
  // matmul == prepacked gemm_packed (same kernels, per-call packing).
  Tensor a = Tensor::random_normal(Shape{9, 50}, rng);
  Tensor b = Tensor::random_normal(Shape{50, 21}, rng);
  Tensor via_matmul = tensor::matmul(a, b);
  Tensor direct(Shape{9, 21});
  tensor::gemm_packed(a.data().data(), 9, PackedMatrix::pack(b), nullptr,
                      false, false, direct.data().data());
  EXPECT_EQ(via_matmul, direct);

  // conv2d_im2col still agrees with direct convolution numerically.
  tensor::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 10;
  spec.kernel = 3;
  spec.padding = 1;
  Tensor input = Tensor::random_normal(Shape{2, 3, 9, 9}, rng);
  Tensor weights = Tensor::random_normal(Shape{10, 3, 3, 3}, rng);
  Tensor bias = Tensor::random_normal(Shape{10}, rng);
  Tensor im2col_out = tensor::conv2d_im2col(input, weights, bias, spec);
  Tensor direct_out = tensor::conv2d(input, weights, bias, spec);
  EXPECT_TRUE(im2col_out.all_close(direct_out, 1e-3F));
}

// ---------------------------------------------------------------------------
// Prepacked weights through the session lifecycle
// ---------------------------------------------------------------------------

TEST(SimdLifecycleTest, PrepackedWeightsSurviveHotSwapAndRollback) {
  Rng rng(32);
  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  hwsim::PackageSpec package = hwsim::openei_package();

  runtime::ModelRegistry registry;
  registry.put({"s", "a", nn::zoo::make_mlp("m", 12, 4, {32, 16}, rng), 0.5});
  runtime::SessionCache cache(registry, package, device,
                              runtime::SessionCache::Options{});

  Rng data_rng(33);
  Tensor batch = Tensor::random_uniform(Shape{8, 12}, data_rng);

  // v1 predictions through the cache (arena-planned, weights prepacked at
  // session build) must match a fresh session built from the same entry.
  std::vector<std::size_t> v1_pred;
  {
    runtime::SessionCache::Lease lease = cache.acquire("m");
    v1_pred = lease.session->run(batch).predictions;
    runtime::InferenceSession fresh(registry.get("m")->model.clone(),
                                    package, device);
    EXPECT_EQ(v1_pred, fresh.run(batch).predictions);
  }

  // Hot-swap to v2: the next acquire retires the stale session and prepacks
  // the new weights.
  registry.put({"s", "a", nn::zoo::make_mlp("m", 12, 4, {32, 16}, rng), 0.6});
  std::vector<std::size_t> v2_pred;
  {
    runtime::SessionCache::Lease lease = cache.acquire("m");
    v2_pred = lease.session->run(batch).predictions;
    runtime::InferenceSession fresh(registry.get("m")->model.clone(),
                                    package, device);
    EXPECT_EQ(v2_pred, fresh.run(batch).predictions);
  }

  // Rollback restores v1 — and the re-planned, re-packed session reproduces
  // the original v1 predictions bit-for-bit.
  ASSERT_TRUE(registry.rollback("m"));
  {
    runtime::SessionCache::Lease lease = cache.acquire("m");
    EXPECT_EQ(lease.session->run(batch).predictions, v1_pred);
  }
}

}  // namespace
}  // namespace openei
