// Tests for the model selector: ALEM constraint semantics, the exact Eq. 1
// solver (validated against brute force), objective swapping, infeasibility,
// and the Q-learning extension's convergence to the exact optimum.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/alem.h"
#include "selector/capability_db.h"
#include "selector/rl_selector.h"
#include "selector/selecting_algorithm.h"

namespace openei::selector {
namespace {

using common::Rng;

TEST(AlemTest, SatisfiesIgnoresTheObjectiveAttribute) {
  Alem alem{.accuracy = 0.5, .latency_s = 10.0, .energy_j = 1.0,
            .memory_bytes = 100};
  Requirements req;
  req.min_accuracy = 0.9;  // violated
  // When accuracy IS the objective its constraint is waived.
  EXPECT_TRUE(satisfies(alem, req, Objective::kMaxAccuracy));
  EXPECT_FALSE(satisfies(alem, req, Objective::kMinLatency));
}

TEST(AlemTest, SatisfiesChecksEveryConstraint) {
  Alem alem{.accuracy = 0.95, .latency_s = 0.01, .energy_j = 0.5,
            .memory_bytes = 1000};
  Requirements req;
  req.min_accuracy = 0.9;
  req.max_energy_j = 1.0;
  req.max_memory_bytes = 2000;
  EXPECT_TRUE(satisfies(alem, req, Objective::kMinLatency));
  req.max_energy_j = 0.4;
  EXPECT_FALSE(satisfies(alem, req, Objective::kMinLatency));
  req.max_energy_j = 1.0;
  req.max_memory_bytes = 500;
  EXPECT_FALSE(satisfies(alem, req, Objective::kMinLatency));
}

TEST(AlemTest, BetterComparesAlongObjective) {
  Alem fast{.accuracy = 0.8, .latency_s = 0.1, .energy_j = 2.0, .memory_bytes = 10};
  Alem accurate{.accuracy = 0.95, .latency_s = 0.5, .energy_j = 1.0,
                .memory_bytes = 5};
  EXPECT_TRUE(better(fast, accurate, Objective::kMinLatency));
  EXPECT_TRUE(better(accurate, fast, Objective::kMaxAccuracy));
  EXPECT_TRUE(better(accurate, fast, Objective::kMinEnergy));
  EXPECT_TRUE(better(accurate, fast, Objective::kMinMemory));
}

/// Shared fixture: a capability database over real trained models.
class SelectorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    auto dataset = data::make_blobs(400, 16, 3, rng);
    auto [train, test] = data::train_test_split(dataset, 0.8, rng);
    test_ = new data::Dataset(std::move(test));

    nn::TrainOptions topt;
    topt.epochs = 15;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;

    models_ = new std::vector<nn::Model>();
    for (auto hidden : std::vector<std::vector<std::size_t>>{
             {4}, {32}, {128, 64}}) {
      nn::Model model = nn::zoo::make_mlp(
          "mlp_" + std::to_string(hidden.front()), 16, 3, hidden, rng);
      nn::fit(model, train, topt);
      models_->push_back(std::move(model));
    }

    db_ = new CapabilityDatabase(CapabilityDatabase::build(
        *models_, hwsim::default_packages(), hwsim::edge_fleet(), *test_));
  }

  static void TearDownTestSuite() {
    delete db_;
    delete models_;
    delete test_;
    db_ = nullptr;
    models_ = nullptr;
    test_ = nullptr;
  }

  static data::Dataset* test_;
  static std::vector<nn::Model>* models_;
  static CapabilityDatabase* db_;
};

data::Dataset* SelectorFixture::test_ = nullptr;
std::vector<nn::Model>* SelectorFixture::models_ = nullptr;
CapabilityDatabase* SelectorFixture::db_ = nullptr;

TEST_F(SelectorFixture, DatabaseCoversTheFullCube) {
  // 3 models x 3 packages x 6 devices.
  EXPECT_EQ(db_->entries().size(), 3U * 3U * 6U);
  EXPECT_EQ(db_->on_device("raspberry-pi-3").size(), 9U);
  EXPECT_TRUE(db_->on_device("no-such-device").empty());
}

TEST_F(SelectorFixture, ProfileMeasuresRealAccuracy) {
  CapabilityEntry entry = profile((*models_)[1], hwsim::openei_package(),
                                  hwsim::raspberry_pi_3(), *test_);
  EXPECT_GT(entry.alem.accuracy, 0.8);
  EXPECT_GT(entry.alem.latency_s, 0.0);
  EXPECT_TRUE(entry.deployable);
}

TEST_F(SelectorFixture, McuEntriesAreNotDeployable) {
  for (const CapabilityEntry& entry : db_->on_device("arduino-class-mcu")) {
    EXPECT_FALSE(entry.deployable) << entry.model_name << "/" << entry.package_name;
  }
}

TEST_F(SelectorFixture, SelectMatchesBruteForce) {
  // Exhaustive cross-check of the solver against a straight scan, for every
  // objective and a grid of constraint levels.
  for (Objective objective :
       {Objective::kMinLatency, Objective::kMaxAccuracy, Objective::kMinEnergy,
        Objective::kMinMemory}) {
    for (double min_acc : {0.0, 0.7, 0.9, 0.99}) {
      for (double max_energy : {1e-6, 1e-2, 1e300}) {
        SelectionRequest request;
        request.objective = objective;
        request.requirements.min_accuracy = min_acc;
        request.requirements.max_energy_j = max_energy;
        request.device_name = "raspberry-pi-4";

        auto picked = select(*db_, request);

        // Brute force.
        const CapabilityEntry* expected = nullptr;
        for (const CapabilityEntry& entry : db_->entries()) {
          if (entry.device_name != request.device_name || !entry.deployable) {
            continue;
          }
          if (!satisfies(entry.alem, request.requirements, objective)) continue;
          if (expected == nullptr || better(entry.alem, expected->alem, objective)) {
            expected = &entry;
          }
        }

        if (expected == nullptr) {
          EXPECT_FALSE(picked.has_value());
        } else {
          ASSERT_TRUE(picked.has_value());
          EXPECT_EQ(picked->model_name, expected->model_name);
          EXPECT_EQ(picked->package_name, expected->package_name);
        }
      }
    }
  }
}

TEST_F(SelectorFixture, AccuracyObjectivePicksBiggerModelThanLatencyObjective) {
  SelectionRequest latency_first;
  latency_first.objective = Objective::kMinLatency;
  latency_first.device_name = "raspberry-pi-3";
  SelectionRequest accuracy_first = latency_first;
  accuracy_first.objective = Objective::kMaxAccuracy;

  auto fast = select(*db_, latency_first);
  auto accurate = select(*db_, accuracy_first);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(accurate.has_value());
  EXPECT_LE(fast->alem.latency_s, accurate->alem.latency_s);
  EXPECT_GE(accurate->alem.accuracy, fast->alem.accuracy);
}

TEST_F(SelectorFixture, InfeasibleConstraintsReturnNullopt) {
  SelectionRequest request;
  request.requirements.min_accuracy = 1.01;  // impossible
  EXPECT_FALSE(select(*db_, request).has_value());

  SelectionRequest mcu;
  mcu.device_name = "arduino-class-mcu";  // nothing deploys there
  EXPECT_FALSE(select(*db_, mcu).has_value());
}

TEST_F(SelectorFixture, RankIsSortedAndFeasible) {
  SelectionRequest request;
  request.objective = Objective::kMinLatency;
  request.device_name = "jetson-tx2";
  request.requirements.min_accuracy = 0.5;
  auto ranked = rank(*db_, request);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].alem.latency_s, ranked[i].alem.latency_s);
  }
  for (const auto& entry : ranked) {
    EXPECT_GE(entry.alem.accuracy, 0.5);
  }
}

TEST_F(SelectorFixture, QLearningConvergesToExactOptimum) {
  for (Objective objective : {Objective::kMinLatency, Objective::kMaxAccuracy}) {
    SelectionRequest request;
    request.objective = objective;
    request.device_name = "raspberry-pi-4";
    request.requirements.min_accuracy = 0.6;

    QLearningOptions options;
    options.episodes = 4000;
    QLearningSelector rl(*db_, options);
    rl.train(request);
    auto rl_pick = rl.select(request);
    auto exact = select(*db_, request);

    ASSERT_TRUE(rl_pick.has_value());
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(rl_pick->model_name, exact->model_name)
        << "objective " << static_cast<int>(objective);
    EXPECT_EQ(rl_pick->package_name, exact->package_name);
  }
}

TEST_F(SelectorFixture, QLearningReportsInfeasibilityAsNullopt) {
  SelectionRequest request;
  request.device_name = "raspberry-pi-4";
  request.requirements.min_accuracy = 1.01;
  QLearningSelector rl(*db_, QLearningOptions{.episodes = 200});
  rl.train(request);
  EXPECT_FALSE(rl.select(request).has_value());
}

TEST_F(SelectorFixture, QLearningSelectBeforeTrainThrows) {
  QLearningSelector rl(*db_, QLearningOptions{});
  SelectionRequest request;
  EXPECT_THROW(rl.select(request), openei::InvalidArgument);
}

TEST_F(SelectorFixture, DatabaseJsonSerializes) {
  common::Json doc = db_->to_json();
  EXPECT_EQ(doc.as_array().size(), db_->entries().size());
  const common::Json& first = doc.at(std::size_t{0});
  EXPECT_TRUE(first.contains("model"));
  EXPECT_TRUE(first.at("alem").contains("latency_s"));
}

}  // namespace
}  // namespace openei::selector
