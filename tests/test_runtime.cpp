// Tests for the package-manager runtime: model registry, inference sessions,
// local transfer-learning, and the real-time ML scheduler.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/inference.h"
#include "runtime/model_registry.h"
#include "runtime/realtime.h"

namespace openei::runtime {
namespace {

using common::Rng;

TEST(RegistryTest, PutGetEraseRoundTrip) {
  Rng rng(1);
  ModelRegistry registry;
  registry.put({"safety", "detection", nn::zoo::make_mlp("det_v1", 8, 2, {4}, rng),
                0.91});
  EXPECT_TRUE(registry.contains("det_v1"));
  EXPECT_EQ(registry.size(), 1U);

  ModelEntryPtr entry = registry.get("det_v1");
  EXPECT_EQ(entry->scenario, "safety");
  EXPECT_EQ(entry->algorithm, "detection");
  EXPECT_DOUBLE_EQ(entry->accuracy, 0.91);

  EXPECT_TRUE(registry.erase("det_v1"));
  EXPECT_FALSE(registry.erase("det_v1"));
  EXPECT_THROW(registry.get("det_v1"), openei::NotFound);
}

TEST(RegistryTest, FindByScenarioAlgorithmReturnsAllVariants) {
  Rng rng(2);
  ModelRegistry registry;
  registry.put({"safety", "detection", nn::zoo::make_mlp("det_big", 8, 2, {32}, rng),
                0.95});
  registry.put({"safety", "detection", nn::zoo::make_mlp("det_small", 8, 2, {4}, rng),
                0.88});
  registry.put({"home", "power_monitor", nn::zoo::make_mlp("pm", 8, 2, {8}, rng),
                0.9});
  auto variants = registry.find("safety", "detection");
  EXPECT_EQ(variants.size(), 2U);
  EXPECT_TRUE(registry.find("safety", "tracking").empty());
  auto names = registry.names();
  EXPECT_EQ(names.size(), 3U);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, GetReturnsSharedSnapshotNotACopy) {
  Rng rng(3);
  ModelRegistry registry;
  registry.put({"s", "a", nn::zoo::make_mlp("m", 4, 2, {4}, rng), 0.5});
  // Snapshot semantics: repeated gets share one immutable entry (zero model
  // copies on the read path), and a snapshot taken before a hot-swap stays
  // pinned to the version it observed.
  ModelEntryPtr first = registry.get("m");
  ModelEntryPtr again = registry.get("m");
  EXPECT_EQ(first.get(), again.get());
  std::uint64_t version_before = registry.version();
  registry.put({"s", "a", nn::zoo::make_mlp("m", 4, 2, {8}, rng), 0.6});
  EXPECT_GT(registry.version(), version_before);
  ModelEntryPtr swapped = registry.get("m");
  EXPECT_NE(first.get(), swapped.get());
  EXPECT_DOUBLE_EQ(first->accuracy, 0.5);   // pinned old version
  EXPECT_DOUBLE_EQ(swapped->accuracy, 0.6);
}

TEST(RegistryTest, RollbackRestoresPriorVersion) {
  Rng rng(7);
  ModelRegistry registry;
  registry.put({"s", "a", nn::zoo::make_mlp("m", 4, 2, {4}, rng), 0.5});
  EXPECT_FALSE(registry.has_prior("m"));
  EXPECT_FALSE(registry.rollback("m"));  // nothing retained yet
  registry.put({"s", "a", nn::zoo::make_mlp("m", 4, 2, {8}, rng), 0.6});
  ASSERT_TRUE(registry.has_prior("m"));
  ASSERT_TRUE(registry.rollback("m"));
  EXPECT_DOUBLE_EQ(registry.get("m")->accuracy, 0.5);
  // The prior slot empties: a second rollback of the same name fails.
  EXPECT_FALSE(registry.rollback("m"));
  // Registering a *fresh* name clears any stale prior retained under it.
  registry.put({"s", "a", nn::zoo::make_mlp("m2", 4, 2, {4}, rng), 0.7});
  registry.put({"s", "a", nn::zoo::make_mlp("m2", 4, 2, {8}, rng), 0.8});
  EXPECT_TRUE(registry.erase("m2"));
  registry.put({"s", "a", nn::zoo::make_mlp("m2", 4, 2, {4}, rng), 0.9});
  EXPECT_FALSE(registry.has_prior("m2"));
}

TEST(SessionTest, RunsRealInferenceWithSimulatedCosts) {
  Rng rng(4);
  auto dataset = data::make_blobs(200, 8, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::Model model = nn::zoo::make_mlp("m", 8, 3, {16}, rng);
  nn::TrainOptions topt;
  topt.epochs = 20;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(model, train, topt);

  InferenceSession session(std::move(model), hwsim::openei_package(),
                           hwsim::raspberry_pi_3());
  InferenceResult result = session.run(test.features);
  EXPECT_EQ(result.predictions.size(), test.size());
  EXPECT_GT(data::accuracy(result.predictions, test.labels), 0.85);
  EXPECT_GT(result.per_sample.latency_s, 0.0);
  EXPECT_NEAR(result.batch_latency_s,
              result.per_sample.latency_s * static_cast<double>(test.size()),
              1e-12);
}

TEST(SessionTest, RefusesModelLargerThanDeviceRam) {
  Rng rng(5);
  nn::Model big = nn::zoo::make_mlp("big", 64, 4, {128, 128}, rng);
  EXPECT_THROW(InferenceSession(std::move(big), hwsim::lite_framework(),
                                hwsim::arduino_class()),
               openei::ResourceExhausted);
}

TEST(LocalTrainingTest, PersonalizationRecoversDriftedAccuracy) {
  // The Fig. 3 dataflow-3 story: a cloud-trained model degrades on drifted
  // local data; on-device head retraining recovers it.
  Rng rng(6);
  auto cloud_data = data::make_blobs(600, 10, 3, rng, /*separation=*/2.0F,
                                     /*stddev=*/1.2F);
  auto [cloud_train, cloud_test] = data::train_test_split(cloud_data, 0.8, rng);
  nn::Model model = nn::zoo::make_mlp("general", 10, 3, {24}, rng);
  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(model, cloud_train, topt);

  Rng drift_rng(7);
  auto local_data = data::apply_drift(cloud_data, drift_rng, 0.8F);
  Rng split_rng(8);
  auto [local_train, local_test] =
      data::train_test_split(local_data, 0.7, split_rng);

  double before = nn::evaluate_accuracy(model, local_test);

  nn::TrainOptions retrain;
  retrain.epochs = 20;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;
  LocalTrainingResult result = retrain_head_locally(
      model, local_train, hwsim::openei_package(), hwsim::raspberry_pi_4(),
      retrain);

  double after = nn::evaluate_accuracy(result.model, local_test);
  EXPECT_GT(after, before + 0.05) << "personalization must help on drifted data";
  EXPECT_GT(result.simulated_latency_s, 0.0);
  EXPECT_GT(result.simulated_energy_j, 0.0);
}

TEST(LocalTrainingTest, OnlyHeadParametersChange) {
  Rng rng(9);
  auto dataset = data::make_blobs(100, 6, 2, rng);
  nn::Model model = nn::zoo::make_mlp("m", 6, 2, {12}, rng);
  nn::Tensor body_before = *model.parameters()[0];
  nn::Tensor head_before = *model.parameters()[2];

  nn::TrainOptions retrain;
  retrain.epochs = 3;
  LocalTrainingResult result = retrain_head_locally(
      model, dataset, hwsim::openei_package(), hwsim::raspberry_pi_3(), retrain);

  EXPECT_TRUE(body_before.all_close(*result.model.parameters()[0]));
  EXPECT_FALSE(head_before.all_close(*result.model.parameters()[2], 1e-6F));
}

TEST(LocalTrainingTest, RejectsInferenceOnlyPackage) {
  Rng rng(10);
  auto dataset = data::make_blobs(50, 4, 2, rng);
  nn::Model model = nn::zoo::make_mlp("m", 4, 2, {4}, rng);
  EXPECT_THROW(retrain_head_locally(model, dataset, hwsim::lite_framework(),
                                    hwsim::raspberry_pi_3(), nn::TrainOptions{}),
               openei::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Real-time ML module.
// ---------------------------------------------------------------------------

TEST(RealtimeTest, FifoRunsInArrivalOrder) {
  std::vector<MlTask> tasks = {
      {"a", 0.0, 1.0, TaskPriority::kBestEffort},
      {"b", 0.1, 1.0, TaskPriority::kUrgent},
  };
  auto done = simulate_schedule(tasks, SchedulingPolicy::kFifo);
  ASSERT_EQ(done.size(), 2U);
  // FIFO: urgent b still waits for a.
  EXPECT_EQ(done[0].task.name, "a");
  EXPECT_NEAR(done[1].finish_s, 2.0, 1e-9);
}

TEST(RealtimeTest, UrgentPreemptsBestEffortImmediately) {
  std::vector<MlTask> tasks = {
      {"background", 0.0, 10.0, TaskPriority::kBestEffort},
      {"urgent", 1.0, 0.5, TaskPriority::kUrgent},
  };
  auto done = simulate_schedule(tasks, SchedulingPolicy::kPriorityPreemptive);
  ASSERT_EQ(done.size(), 2U);
  EXPECT_EQ(done[0].task.name, "urgent");
  EXPECT_NEAR(done[0].finish_s, 1.5, 1e-9);  // ran the moment it arrived
  // Background: 1 s done before preemption + 0.5 s paused + 9 s remaining.
  EXPECT_NEAR(done[1].finish_s, 10.5, 1e-9);
}

TEST(RealtimeTest, IdleGapsAreSkipped) {
  std::vector<MlTask> tasks = {
      {"late", 5.0, 1.0, TaskPriority::kBestEffort},
  };
  auto done = simulate_schedule(tasks, SchedulingPolicy::kFifo);
  EXPECT_NEAR(done[0].start_s, 5.0, 1e-9);
  EXPECT_NEAR(done[0].finish_s, 6.0, 1e-9);
}

TEST(RealtimeTest, PreemptionImprovesUrgentTailLatency) {
  // A stream of heavy best-effort jobs plus sparse urgent jobs.
  std::vector<MlTask> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back({"bg" + std::to_string(i), i * 0.5, 2.0,
                     TaskPriority::kBestEffort});
  }
  for (int i = 0; i < 5; ++i) {
    tasks.push_back({"urgent" + std::to_string(i), 3.0 + i * 7.0, 0.2,
                     TaskPriority::kUrgent});
  }
  auto fifo = simulate_schedule(tasks, SchedulingPolicy::kFifo);
  auto preemptive = simulate_schedule(tasks, SchedulingPolicy::kPriorityPreemptive);

  double fifo_p99 = response_percentile(fifo, 99.0, TaskPriority::kUrgent);
  double rt_p99 = response_percentile(preemptive, 99.0, TaskPriority::kUrgent);
  EXPECT_LT(rt_p99 * 5, fifo_p99) << "real-time module must slash urgent tail";

  // Conservation: both policies do the same total work.
  double fifo_last = fifo.back().finish_s;
  double rt_last = preemptive.back().finish_s;
  EXPECT_NEAR(fifo_last, rt_last, 1e-9);
}

TEST(RealtimeTest, RejectsBadTasks) {
  EXPECT_THROW(
      simulate_schedule({{"x", 0.0, 0.0, TaskPriority::kUrgent}},
                        SchedulingPolicy::kFifo),
      openei::InvalidArgument);
  EXPECT_THROW(
      simulate_schedule({{"x", -1.0, 1.0, TaskPriority::kUrgent}},
                        SchedulingPolicy::kFifo),
      openei::InvalidArgument);
}

TEST(RealtimeTest, PercentileValidation) {
  auto done = simulate_schedule({{"a", 0.0, 1.0, TaskPriority::kUrgent}},
                                SchedulingPolicy::kFifo);
  EXPECT_NEAR(response_percentile(done, 50.0, TaskPriority::kUrgent), 1.0, 1e-9);
  EXPECT_THROW(response_percentile(done, 0.0, TaskPriority::kUrgent),
               openei::InvalidArgument);
  EXPECT_THROW(response_percentile(done, 50.0, TaskPriority::kBestEffort),
               openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::runtime
