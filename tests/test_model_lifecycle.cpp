// End-to-end model lifecycle suite (label: lifecycle): hot-swap, rollback,
// undeploy over the REST API; LRU eviction + bit-identical reload; admission
// control's documented 503; the warm-path zero-copy guarantee; and a
// swap-under-load stress meant to run first under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/edge_node.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "net/faults.h"
#include "net/http.h"
#include "net/resilient_client.h"
#include "net/socket.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "runtime/inference.h"
#include "runtime/session_cache.h"
#include "tensor/tensor.h"

namespace openei::libei {
namespace {

using common::Json;
using common::Rng;

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;
constexpr const char* kInput =
    "?input=[[1,2,3,4,5,6,7,8],[8,7,6,5,4,3,2,1]]";

/// A model that deterministically predicts `winner` for every input: all
/// parameters zeroed, output bias one-hot.  Lets swap/rollback/evict tests
/// read which deployment version served a request straight off the
/// predictions, with zero training or flakiness.
nn::Model make_constant_model(const std::string& name, std::size_t winner) {
  Rng rng(99);
  nn::Model model = nn::zoo::make_mlp(name, kFeatures, kClasses, {4}, rng);
  for (nn::Tensor* param : model.parameters()) *param *= 0.0F;
  model.parameters().back()->data()[winner] = 1.0F;
  return model;
}

core::EdgeNodeConfig base_config() {
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(), hwsim::openei_package(),
                              64};
  return config;
}

std::vector<std::size_t> predictions_of(const net::HttpResponse& response) {
  Json doc = Json::parse(response.body);  // keep alive while iterating
  std::vector<std::size_t> out;
  for (const Json& p : doc.at("predictions").as_array()) {
    out.push_back(static_cast<std::size_t>(p.as_int()));
  }
  return out;
}

TEST(LifecycleZeroCopyTest, WarmRequestsPerformZeroTensorAllocations) {
  core::EdgeNodeConfig config = base_config();
  config.service.coalesce_inference = false;  // direct run_rows path
  core::EdgeNode node(config);
  node.deploy_model("safety", "detection", make_constant_model("det", 1), 0.9);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  // Warm-up: materializes the session (one model clone) and grows the
  // thread-local row staging; everything after is steady state.
  ASSERT_EQ(node.call("GET", target).status, 200);

  for (int i = 0; i < 5; ++i) {
    tensor::AllocationTrackingScope scope;
    net::HttpResponse response = node.call("GET", target);
    EXPECT_EQ(response.status, 200);
    // Zero tensor allocations == zero model deep copies (a clone would
    // allocate every parameter tensor) and an arena-served forward pass.
    EXPECT_EQ(scope.stats().allocations, 0U)
        << "warm request " << i << " allocated tensor memory";
    EXPECT_EQ(predictions_of(response), (std::vector<std::size_t>{1, 1}));
  }

  runtime::SessionCache::Stats stats = node.service().lifecycle().stats();
  EXPECT_EQ(stats.misses, 1U);   // exactly one materialization
  EXPECT_GE(stats.hits, 5U);
  EXPECT_EQ(stats.resident_sessions, 1U);
  auto residents = node.service().lifecycle().resident_info();
  ASSERT_EQ(residents.size(), 1U);
  EXPECT_TRUE(residents[0].arena_active);
}

TEST(LifecycleSwapTest, InFlightLeasePinsOldVersionAcrossHotSwap) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  EXPECT_EQ(predictions_of(node.call("GET", target)),
            (std::vector<std::size_t>{0, 0}));

  // Pin the v1 snapshot the way an in-flight request does.
  runtime::SessionCache::Lease lease =
      node.service().lifecycle().acquire("det");

  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  net::HttpResponse swap = node.call(
      "POST", "/ei_models?scenario=safety&algorithm=detection&accuracy=0.8",
      v2_body);
  ASSERT_EQ(swap.status, 201);
  EXPECT_TRUE(Json::parse(swap.body).at("swapped").as_bool());

  // New requests see v2...
  EXPECT_EQ(predictions_of(node.call("GET", target)),
            (std::vector<std::size_t>{2, 2}));
  // ...while the pinned lease still computes v1's outputs.
  nn::Tensor batch = runtime::rows_to_batch(
      Json::parse("[[1,2,3,4,5,6,7,8]]"), lease.session->model().input_shape());
  EXPECT_EQ(lease.session->run(batch).predictions,
            (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(lease.entry->accuracy, 0.9);

  runtime::SessionCache::Stats stats = node.service().lifecycle().stats();
  EXPECT_EQ(stats.invalidations, 1U);  // v1 session retired on first v2 hit
}

TEST(LifecycleEvictionTest, EvictedModelReloadsBitIdentical) {
  nn::Model model_a = make_constant_model("det_a", 0);
  nn::Model model_b = make_constant_model("det_b", 1);

  core::EdgeNodeConfig config = base_config();
  config.service.coalesce_inference = false;
  // Budget fits exactly one resident session: every switch between the two
  // models forces an LRU eviction + cold reload.
  std::size_t session_bytes =
      hwsim::estimate_inference(model_a, config.package, config.device)
          .memory_bytes;
  config.service.lifecycle.budget_bytes = session_bytes + session_bytes / 2;
  core::EdgeNode node(config);
  node.deploy_model("safety", "detect_a", std::move(model_a), 0.9);
  node.deploy_model("safety", "detect_b", std::move(model_b), 0.9);

  const std::string target_a =
      std::string("/ei_algorithms/safety/detect_a") + kInput;
  const std::string target_b =
      std::string("/ei_algorithms/safety/detect_b") + kInput;

  net::HttpResponse first = node.call("GET", target_a);
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(node.call("GET", target_a).body, first.body);  // warm hit

  net::HttpResponse other = node.call("GET", target_b);  // evicts det_a
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(predictions_of(other), (std::vector<std::size_t>{1, 1}));

  runtime::SessionCache::Stats stats = node.service().lifecycle().stats();
  EXPECT_EQ(stats.evictions, 1U);
  EXPECT_EQ(stats.resident_sessions, 1U);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);

  // Cold reload after eviction answers bit-identically to the first serve.
  net::HttpResponse reloaded = node.call("GET", target_a);
  EXPECT_EQ(reloaded.body, first.body);
  stats = node.service().lifecycle().stats();
  EXPECT_EQ(stats.evictions, 2U);
  EXPECT_EQ(stats.misses, 3U);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);
}

TEST(LifecycleAdmissionTest, OverBudgetModelAnswers503MemoryPressure) {
  core::EdgeNodeConfig config = base_config();
  config.service.lifecycle.budget_bytes = 1;  // nothing can be admitted
  core::EdgeNode node(config);
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);

  net::HttpResponse response = node.call(
      "GET", std::string("/ei_algorithms/safety/detection") + kInput);
  ASSERT_EQ(response.status, 503);
  Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("error").as_string(), "memory_pressure");
  EXPECT_EQ(body.at("model").as_string(), "det");
  EXPECT_GT(body.at("needed_bytes").as_int(), 1);
  EXPECT_EQ(body.at("budget_bytes").as_int(), 1);
  EXPECT_EQ(body.at("resident_bytes").as_int(), 0);

  runtime::SessionCache::Stats stats = node.service().lifecycle().stats();
  EXPECT_EQ(stats.admission_rejections, 1U);
  EXPECT_EQ(stats.resident_sessions, 0U);
  // The rejection reaches the observability layer too.
  EXPECT_NE(node.call("GET", "/ei_metrics").body.find(
                "ei_admission_rejections_total 1"),
            std::string::npos);
  Json status = Json::parse(node.call("GET", "/ei_status").body);
  EXPECT_EQ(status.at("lifecycle").at("admission_rejections").as_int(), 1);
}

TEST(LifecycleHttpTest, SwapRollbackUndeployOverRealHttp) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  std::uint16_t port = node.start_server(0);
  net::HttpClient client(port);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  EXPECT_EQ(predictions_of(client.get(target)),
            (std::vector<std::size_t>{0, 0}));
  Json index = Json::parse(client.get("/ei_models").body);
  EXPECT_FALSE(
      index.at("models").as_array()[0].at("rollback_available").as_bool());

  // Rollback with nothing retained: 409, as documented.
  EXPECT_EQ(client.del("/ei_models/det?rollback=1").status, 409);

  // Hot-swap to v2 over the wire.
  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  net::HttpResponse swap = client.post(
      "/ei_models?scenario=safety&algorithm=detection&accuracy=0.8", v2_body);
  ASSERT_EQ(swap.status, 201);
  EXPECT_TRUE(Json::parse(swap.body).at("swapped").as_bool());
  EXPECT_EQ(predictions_of(client.get(target)),
            (std::vector<std::size_t>{2, 2}));
  index = Json::parse(client.get("/ei_models").body);
  EXPECT_TRUE(
      index.at("models").as_array()[0].at("rollback_available").as_bool());

  // Rollback restores v1's outputs exactly.
  net::HttpResponse rollback = client.del("/ei_models/det?rollback=1");
  ASSERT_EQ(rollback.status, 200);
  EXPECT_EQ(Json::parse(rollback.body).at("rolled_back").as_string(), "det");
  EXPECT_EQ(predictions_of(client.get(target)),
            (std::vector<std::size_t>{0, 0}));
  // The prior slot emptied: a second rollback fails again.
  EXPECT_EQ(client.del("/ei_models/det?rollback=1").status, 409);

  // Undeploy: the route 404s afterwards, and again on a double delete.
  EXPECT_EQ(client.del("/ei_models/det").status, 200);
  EXPECT_EQ(client.get(target).status, 404);
  EXPECT_EQ(client.del("/ei_models/det").status, 404);
  node.stop_server();
}

TEST(LifecycleHttpTest, NodeConveniencesMirrorDeleteRoutes) {
  core::EdgeNode node(base_config());
  node.deploy_model("s", "a", make_constant_model("m", 0), 0.5);
  EXPECT_FALSE(node.rollback_model("m"));
  node.deploy_model("s", "a", make_constant_model("m", 1), 0.6);
  EXPECT_TRUE(node.rollback_model("m"));
  EXPECT_DOUBLE_EQ(node.registry().get("m")->accuracy, 0.5);
  EXPECT_TRUE(node.undeploy_model("m"));
  EXPECT_FALSE(node.undeploy_model("m"));
}

// The TSan target: client threads hammer the algorithm route while a
// deployer thread swaps, rolls back, undeploys, and redeploys the model.
// Every response must be a well-formed 200 or 404 (the model briefly does
// not exist between erase and redeploy); predictions must always belong to
// one of the deployed versions — never a torn mix.
TEST(LifecycleStressTest, ConcurrentInferenceSurvivesSwapsAndErases) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  std::string v1_body = nn::model_to_json(make_constant_model("det", 0)).dump();
  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  const std::string deploy_target =
      "/ei_models?scenario=safety&algorithm=detection&accuracy=0.9";
  const std::string infer_target =
      std::string("/ei_algorithms/safety/detection") + kInput;

  std::atomic<bool> failed{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&node, &failed, &stop, &infer_target] {
      while (!stop.load()) {
        net::HttpResponse response = node.call("GET", infer_target);
        if (response.status == 200) {
          auto predictions = predictions_of(response);
          if (predictions.size() != 2 || predictions[0] != predictions[1] ||
              (predictions[0] != 0 && predictions[0] != 2)) {
            failed = true;
          }
        } else if (response.status != 404) {
          failed = true;
        }
        node.call("GET", "/ei_status");
      }
    });
  }

  for (int i = 0; i < 25 && !failed; ++i) {
    ASSERT_EQ(node.call("POST", deploy_target, v2_body).status, 201);  // swap
    node.call("GET", infer_target);
    if (i % 3 == 0) {
      ASSERT_EQ(node.call("DELETE", "/ei_models/det?rollback=1").status, 200);
    } else {
      ASSERT_EQ(node.call("DELETE", "/ei_models/det").status, 200);
      ASSERT_EQ(node.call("POST", deploy_target, v1_body).status, 201);
    }
  }
  stop = true;
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(failed.load());

  // Consistency after the dust settles: one current version serves.
  EXPECT_EQ(node.call("GET", infer_target).status, 200);
  runtime::SessionCache::Stats stats = node.service().lifecycle().stats();
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);
}

// --- Hot-swap atomicity under injected faults ------------------------------
//
// A swap either fully lands (registry version bumps once, new predictions
// serve) or leaves no trace (version unchanged, old predictions serve).
// Fault placement matters: kRefuseConnection and kErrorBurst fire *before*
// the handler, and a truncated upload never completes parsing — in all three
// cases the registry must be untouched.

std::uint64_t registry_version_of(net::HttpClient& client) {
  return static_cast<std::uint64_t>(Json::parse(client.get("/ei_status").body)
                                        .at("lifecycle")
                                        .at("registry_version")
                                        .as_int());
}

TEST(LifecycleFaultTest, RefusedSwapLeavesRegistryOnOldVersion) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  auto plan = std::make_shared<net::FaultPlan>(11);
  // Every POST /ei_models is refused; /ei_status and inference stay healthy.
  plan->add(net::FaultRule{"/ei_models", net::FaultKind::kRefuseConnection});
  net::HttpServer::Options server;
  server.faults = plan;
  std::uint16_t port = node.start_server(0, server);
  net::HttpClient client(port);

  std::uint64_t version = registry_version_of(client);
  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  const std::string deploy_target =
      "/ei_models?scenario=safety&algorithm=detection&accuracy=0.8";
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(client.post(deploy_target, v2_body), openei::IoError);
  }
  EXPECT_EQ(registry_version_of(client), version);
  EXPECT_EQ(predictions_of(client.get(
                std::string("/ei_algorithms/safety/detection") + kInput)),
            (std::vector<std::size_t>{0, 0}));
  node.stop_server();
}

TEST(LifecycleFaultTest, TruncatedSwapUploadNeverReachesTheRegistry) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  net::HttpServer::Options server;
  server.read_timeout_s = 0.2;  // give up on the stalled upload quickly
  std::uint16_t port = node.start_server(0, server);
  net::HttpClient client(port);
  std::uint64_t version = registry_version_of(client);

  // A partial write: correct head, Content-Length promising more body than
  // ever arrives, then the connection dies mid-upload.
  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  std::string head =
      "POST /ei_models?scenario=safety&algorithm=detection HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Length: " + std::to_string(v2_body.size()) + "\r\n\r\n";
  {
    net::TcpConnection torn = net::connect_local(port);
    torn.write_all(head + v2_body.substr(0, v2_body.size() / 2));
    torn.close();
  }

  EXPECT_EQ(registry_version_of(client), version);
  EXPECT_EQ(predictions_of(client.get(
                std::string("/ei_algorithms/safety/detection") + kInput)),
            (std::vector<std::size_t>{0, 0}));
  node.stop_server();
}

TEST(LifecycleFaultTest, RetriedSwapThroughFaultBurstBumpsVersionExactlyOnce) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  auto plan = std::make_shared<net::FaultPlan>(12);
  // The first two deploy attempts are served a 503 with the handler
  // bypassed; the third goes through.  The retrying client must converge on
  // exactly one version bump — transient faults never double-apply a swap.
  plan->add(net::FaultRule{"/ei_models", net::FaultKind::kErrorBurst,
                           /*probability=*/1.0, /*from_request=*/0,
                           /*until_request=*/2});
  net::HttpServer::Options server;
  server.faults = plan;
  std::uint16_t port = node.start_server(0, server);
  net::HttpClient status_client(port);
  std::uint64_t version = registry_version_of(status_client);

  net::ResilientClient::Options options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_s = 0.001;
  options.breaker.failure_threshold = 100;
  net::ResilientClient client(port, options);
  std::string v2_body = nn::model_to_json(make_constant_model("det", 2)).dump();
  net::HttpResponse swap = client.post(
      "/ei_models?scenario=safety&algorithm=detection&accuracy=0.8", v2_body);
  ASSERT_EQ(swap.status, 201);
  EXPECT_TRUE(Json::parse(swap.body).at("swapped").as_bool());
  EXPECT_EQ(client.stats().retries, 2U);

  EXPECT_EQ(registry_version_of(status_client), version + 1);
  EXPECT_EQ(predictions_of(status_client.get(
                std::string("/ei_algorithms/safety/detection") + kInput)),
            (std::vector<std::size_t>{2, 2}));
  node.stop_server();
}

TEST(LifecycleFaultTest, RollbackUnderFaultsRestoresPriorVersionOrNothing) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  node.deploy_model("safety", "detection", make_constant_model("det", 2), 0.8);
  auto plan = std::make_shared<net::FaultPlan>(13);
  // Rollback attempt #0 refused (no registry change), #1 clean.
  plan->add(net::FaultRule{"/ei_models", net::FaultKind::kRefuseConnection,
                           /*probability=*/1.0, /*from_request=*/0,
                           /*until_request=*/1});
  net::HttpServer::Options server;
  server.faults = plan;
  std::uint16_t port = node.start_server(0, server);
  net::HttpClient client(port);
  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  std::uint64_t version = registry_version_of(client);

  // The faulted rollback fails in transport and must change nothing: v2
  // keeps serving.
  EXPECT_THROW(client.del("/ei_models/det?rollback=1"), openei::IoError);
  EXPECT_EQ(registry_version_of(client), version);
  EXPECT_EQ(predictions_of(client.get(target)),
            (std::vector<std::size_t>{2, 2}));

  // The retry lands: exactly one version bump, v1 serves again, and the
  // retained slot emptied (a second rollback 409s).
  EXPECT_EQ(client.del("/ei_models/det?rollback=1").status, 200);
  EXPECT_EQ(registry_version_of(client), version + 1);
  EXPECT_EQ(predictions_of(client.get(target)),
            (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(client.del("/ei_models/det?rollback=1").status, 409);
  node.stop_server();
}

}  // namespace
}  // namespace openei::libei
