// Streaming pipeline suite (label: stream): the DrainGate shutdown
// contract, FrameQueue admission-policy and deadline semantics (driven by a
// fake clock), drain-on-close and concurrent-producer behaviour, the
// StreamSession worker over the real session cache, and the /ei_stream REST
// surface end-to-end over real HTTP.  Runs early on both sanitizer legs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/drain_gate.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "net/http.h"
#include "nn/zoo.h"
#include "stream/frame_queue.h"
#include "stream/stream_manager.h"
#include "stream/stream_session.h"
#include "tensor/tensor.h"

namespace openei::stream {
namespace {

using common::Json;
using common::Rng;

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;

/// Deterministically predicts `winner` for every input (zeroed parameters,
/// one-hot output bias): streamed predictions identify the model version
/// with zero training or flakiness.
nn::Model make_constant_model(const std::string& name, std::size_t winner) {
  Rng rng(99);
  nn::Model model = nn::zoo::make_mlp(name, kFeatures, kClasses, {4}, rng);
  for (nn::Tensor* param : model.parameters()) *param *= 0.0F;
  model.parameters().back()->data()[winner] = 1.0F;
  return model;
}

core::EdgeNodeConfig base_config() {
  return core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                              hwsim::openei_package(), 64};
}

nn::Tensor sample_frame(float fill = 0.5F) {
  nn::Tensor frame(tensor::Shape{kFeatures});
  for (float& v : frame.data()) v = fill;
  return frame;
}

Frame bare_frame() {
  Frame frame;
  frame.rows = nn::Tensor(tensor::Shape{1, 1});
  return frame;
}

/// Drains `session` until `want` results arrived or `timeout_s` elapsed.
std::vector<DeliveredResult> poll_until(StreamSession& session,
                                        std::size_t want,
                                        double timeout_s = 10.0) {
  std::vector<DeliveredResult> out;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_s);
  while (out.size() < want && std::chrono::steady_clock::now() < deadline) {
    for (DeliveredResult& result : session.poll()) {
      out.push_back(std::move(result));
    }
    if (out.size() < want) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DrainGate: the extracted shutdown contract shared by MicroBatcher and
// FrameQueue.
// ---------------------------------------------------------------------------

TEST(DrainGateTest, CloseWakesBlockedWaiterAndIsIdempotent) {
  common::DrainGate gate;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    common::DrainGate::Lock lock = gate.acquire();
    // Never-ready predicate: only close() can end this wait.
    bool ready = gate.await(lock, [] { return false; });
    EXPECT_FALSE(ready);  // woken by close, not by work
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  EXPECT_TRUE(gate.close());
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_TRUE(gate.closed());
  EXPECT_FALSE(gate.close());  // already closed
}

TEST(DrainGateTest, AwaitForReportsReadinessAndHonorsTimeout) {
  common::DrainGate gate;
  common::DrainGate::Lock lock = gate.acquire();
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(gate.await_for(lock, 0.02, [] { return false; }));
  EXPECT_GE(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            0.015);
  EXPECT_TRUE(gate.await_for(lock, 0.02, [] { return true; }));
  EXPECT_FALSE(gate.closed(lock));
}

// ---------------------------------------------------------------------------
// FrameQueue admission policies, driven by a fake clock.
// ---------------------------------------------------------------------------

TEST(FrameQueueTest, BlockPolicyDeliversExactAdmissionOrder) {
  FrameQueue::Options options;
  options.capacity = 8;
  options.policy = AdmitPolicy::kBlock;
  FrameQueue queue(options);
  for (int i = 0; i < 5; ++i) {
    PushResult pushed = queue.push(bare_frame());
    EXPECT_EQ(pushed.outcome, PushOutcome::kAdmitted);
    EXPECT_EQ(pushed.seq, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(pushed.evicted, 0U);
  }
  for (std::uint64_t expected = 1; expected <= 5; ++expected) {
    auto frame = queue.try_pop();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->seq, expected);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.produced, 5U);
  EXPECT_EQ(counters.admitted, 5U);
  EXPECT_EQ(counters.delivered, 5U);
  EXPECT_EQ(counters.dropped_policy, 0U);
  EXPECT_EQ(counters.depth, 0U);
}

TEST(FrameQueueTest, BlockPolicyZeroWaitRejectsWhenFull) {
  FrameQueue::Options options;
  options.capacity = 2;
  options.policy = AdmitPolicy::kBlock;
  FrameQueue queue(options);
  EXPECT_EQ(queue.push(bare_frame()).outcome, PushOutcome::kAdmitted);
  EXPECT_EQ(queue.push(bare_frame()).outcome, PushOutcome::kAdmitted);
  PushResult rejected = queue.push(bare_frame(), /*max_wait_s=*/0.0);
  EXPECT_EQ(rejected.outcome, PushOutcome::kRejectedBackpressure);
  EXPECT_EQ(rejected.seq, 0U);
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.rejected_backpressure, 1U);
  EXPECT_EQ(counters.blocked_pushes, 1U);
  EXPECT_EQ(counters.dropped_policy, 0U);  // kBlock never drops by policy
  EXPECT_EQ(counters.depth, 2U);
}

TEST(FrameQueueTest, BlockedProducerWakesWhenConsumerMakesSpace) {
  FrameQueue::Options options;
  options.capacity = 1;
  options.policy = AdmitPolicy::kBlock;
  FrameQueue queue(options);
  ASSERT_EQ(queue.push(bare_frame()).outcome, PushOutcome::kAdmitted);
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    PushResult pushed = queue.push(bare_frame());  // blocks until space
    EXPECT_EQ(pushed.outcome, PushOutcome::kAdmitted);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  ASSERT_TRUE(queue.pop().has_value());  // frees the slot, wakes the producer
  producer.join();
  EXPECT_TRUE(admitted.load());
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 2U);
  EXPECT_GE(queue.counters().blocked_pushes, 1U);
}

TEST(FrameQueueTest, LatestWinsEvictsOldestAtPush) {
  FrameQueue::Options options;
  options.capacity = 2;
  options.policy = AdmitPolicy::kLatestWins;
  FrameQueue queue(options);
  EXPECT_EQ(queue.push(bare_frame()).seq, 1U);
  EXPECT_EQ(queue.push(bare_frame()).seq, 2U);
  PushResult third = queue.push(bare_frame());
  EXPECT_EQ(third.outcome, PushOutcome::kAdmitted);
  EXPECT_EQ(third.seq, 3U);
  EXPECT_EQ(third.evicted, 1U);  // seq 1 shed to make room
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.dropped_policy, 1U);
  EXPECT_EQ(counters.depth, 2U);
}

TEST(FrameQueueTest, LatestWinsPopSkipsToNewest) {
  FrameQueue::Options options;
  options.capacity = 8;
  options.policy = AdmitPolicy::kLatestWins;
  FrameQueue queue(options);
  for (int i = 0; i < 4; ++i) queue.push(bare_frame());
  auto frame = queue.try_pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 4U);  // everything older was superseded
  EXPECT_FALSE(queue.try_pop().has_value());
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.delivered, 1U);
  EXPECT_EQ(counters.dropped_policy, 3U);
  EXPECT_EQ(counters.depth, 0U);
}

TEST(FrameQueueTest, DropOldestStaysFifoOverSurvivors) {
  FrameQueue::Options options;
  options.capacity = 2;
  options.policy = AdmitPolicy::kDropOldest;
  FrameQueue queue(options);
  for (int i = 0; i < 4; ++i) queue.push(bare_frame());  // sheds 1 and 2
  auto first = queue.try_pop();
  auto second = queue.try_pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, 3U);  // FIFO over what survives, unlike latest-wins
  EXPECT_EQ(second->seq, 4U);
  EXPECT_EQ(queue.counters().dropped_policy, 2U);
}

TEST(FrameQueueTest, ExpiredFramesDroppedAtPopNeverDelivered) {
  std::int64_t now_ns = 0;
  FrameQueue::Options options;
  options.capacity = 8;
  options.policy = AdmitPolicy::kBlock;
  options.deadline_s = 1.0;  // 1s from admission, on the fake clock
  options.now = [&now_ns] { return now_ns; };
  FrameQueue queue(options);
  queue.push(bare_frame());  // seq 1, deadline t=1s
  now_ns = 500'000'000;
  queue.push(bare_frame());  // seq 2, deadline t=1.5s
  now_ns = 1'200'000'000;    // seq 1 expired, seq 2 still live
  auto frame = queue.try_pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 2U);
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.dropped_deadline, 1U);
  EXPECT_EQ(counters.delivered, 1U);
  now_ns = 10'000'000'000;
  EXPECT_FALSE(queue.try_pop().has_value());  // nothing left to expire
}

TEST(FrameQueueTest, FrameKeepsEarlierOfOwnAndQueueDeadline) {
  std::int64_t now_ns = 0;
  FrameQueue::Options options;
  options.capacity = 4;
  options.deadline_s = 10.0;  // generous queue-wide deadline
  options.now = [&now_ns] { return now_ns; };
  FrameQueue queue(options);
  Frame urgent = bare_frame();
  urgent.deadline_ns = 1'000;  // the frame's own deadline is much tighter
  queue.push(std::move(urgent));
  now_ns = 2'000;
  EXPECT_FALSE(queue.try_pop().has_value());
  EXPECT_EQ(queue.counters().dropped_deadline, 1U);
}

TEST(FrameQueueTest, CloseRefusesNewWorkButDrainsAdmitted) {
  FrameQueue::Options options;
  options.capacity = 4;
  options.policy = AdmitPolicy::kBlock;
  FrameQueue queue(options);
  queue.push(bare_frame());
  queue.push(bare_frame());
  queue.close();
  PushResult late = queue.push(bare_frame());
  EXPECT_EQ(late.outcome, PushOutcome::kRejectedClosed);
  // Drain-on-close: both admitted frames still come out, in order.
  auto first = queue.pop();
  auto second = queue.pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, 1U);
  EXPECT_EQ(second->seq, 2U);
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.rejected_closed, 1U);
  EXPECT_EQ(counters.delivered, 2U);
  EXPECT_EQ(counters.dropped_closed, 0U);
}

TEST(FrameQueueTest, BlockedProducersWakeOnCloseWithoutDeadlock) {
  FrameQueue::Options options;
  options.capacity = 1;
  options.policy = AdmitPolicy::kBlock;
  FrameQueue queue(options);
  ASSERT_EQ(queue.push(bare_frame()).outcome, PushOutcome::kAdmitted);
  std::vector<std::thread> producers;
  std::atomic<int> rejected_closed{0};
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&] {
      PushResult pushed = queue.push(bare_frame());  // unbounded block
      if (pushed.outcome == PushOutcome::kRejectedClosed) ++rejected_closed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();  // must wake all three; none may sleep through it
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(rejected_closed.load(), 3);
  ASSERT_TRUE(queue.pop().has_value());  // the admitted frame still drains
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(FrameQueueTest, ConcurrentProducersConservationHolds) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  FrameQueue::Options options;
  options.capacity = 4;
  options.policy = AdmitPolicy::kLatestWins;
  FrameQueue queue(options);
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    while (queue.pop().has_value()) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(bare_frame());
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.close();
  consumer.join();
  QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.produced,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(counters.produced, counters.admitted +
                                   counters.rejected_backpressure +
                                   counters.rejected_closed);
  EXPECT_EQ(counters.admitted,
            counters.delivered + counters.dropped_deadline +
                counters.dropped_policy + counters.dropped_closed +
                counters.depth);
  EXPECT_EQ(counters.delivered, popped.load());
  EXPECT_EQ(counters.depth, 0U);  // consumer drained everything
}

// ---------------------------------------------------------------------------
// StreamSession over the real SessionCache/InferenceSession path.
// ---------------------------------------------------------------------------

TEST(StreamSessionTest, DeliversPredictionsInOrder) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 2), 0.9);
  StreamSession::Options options;
  options.queue.policy = AdmitPolicy::kBlock;
  options.queue.capacity = 16;
  StreamSession session("s1", "safety", "detection", "det",
                        node.service().lifecycle(), options);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(session.submit(sample_frame()).outcome, PushOutcome::kAdmitted);
  }
  std::vector<DeliveredResult> results = poll_until(session, 6);
  ASSERT_EQ(results.size(), 6U);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seq, i + 1);  // kBlock: exact admission order
    EXPECT_EQ(results[i].prediction, 2U);
    EXPECT_GE(results[i].queue_wait_s, 0.0);
    EXPECT_GT(results[i].sim_latency_s, 0.0);
  }
  session.close();
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.inferred, 6U);
  EXPECT_EQ(stats.queue.delivered, 6U);
  EXPECT_EQ(stats.infer_failures, 0U);
}

TEST(StreamSessionTest, ExpiredFramesNeverReachInference) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 1), 0.9);
  StreamSession::Options options;
  options.queue.policy = AdmitPolicy::kBlock;
  options.queue.capacity = 16;
  // 1ns from admission: on the real clock every frame is already expired by
  // the time the worker's pop examines it.
  options.queue.deadline_s = 1e-9;
  StreamSession session("s2", "safety", "detection", "det",
                        node.service().lifecycle(), options);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(session.submit(sample_frame()).outcome, PushOutcome::kAdmitted);
  }
  session.close();  // drains: every admitted frame resolves before this returns
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.inferred, 0U);  // the compute was never spent
  EXPECT_EQ(stats.queue.dropped_deadline, 8U);
  EXPECT_EQ(stats.queue.delivered, 0U);
  EXPECT_TRUE(session.poll().empty());
}

TEST(StreamSessionTest, ShapeMismatchThrows) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  StreamSession session("s3", "safety", "detection", "det",
                        node.service().lifecycle(), {});
  nn::Tensor wrong(tensor::Shape{kFeatures + 1});
  EXPECT_THROW(session.submit(std::move(wrong)), ParseError);
  // A flat tensor with the right element count is accepted (reshaped).
  nn::Tensor flat(tensor::Shape{1, kFeatures});
  EXPECT_EQ(session.submit(std::move(flat)).outcome, PushOutcome::kAdmitted);
}

TEST(StreamSessionTest, CloseMidHammerDrainsCleanly) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  auto session = std::make_unique<StreamSession>(
      "s4", "safety", "detection", "det", node.service().lifecycle(),
      StreamSession::Options{});  // latest_wins, capacity 8
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 300;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&session] {
      for (int i = 0; i < kPerProducer; ++i) {
        session->submit(sample_frame());  // post-close submits just reject
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  session->close();  // mid-stream: must neither deadlock nor leak frames
  for (std::thread& producer : producers) producer.join();
  SessionStats stats = session->stats();
  EXPECT_EQ(stats.queue.produced,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.queue.produced, stats.queue.admitted +
                                      stats.queue.rejected_backpressure +
                                      stats.queue.rejected_closed);
  EXPECT_EQ(stats.queue.admitted,
            stats.queue.delivered + stats.queue.dropped_deadline +
                stats.queue.dropped_policy + stats.queue.dropped_closed +
                stats.queue.depth);
  EXPECT_EQ(stats.queue.depth, 0U);  // the worker drained before close returned
  EXPECT_EQ(stats.inferred, stats.queue.delivered);
  session.reset();  // double-shutdown: dtor close after explicit close
}

// ---------------------------------------------------------------------------
// Continuous frame sources: deterministic, timestamped.
// ---------------------------------------------------------------------------

TEST(StreamSourceTest, SourcesAreSeedDeterministicAndTimestamped) {
  data::SensorStreamSource::Options options;
  options.features = 6;
  options.classes = 3;
  options.period_ns = 1'000'000;
  options.hold_frames = 4;
  data::SensorStreamSource a(options, 7);
  data::SensorStreamSource b(options, 7);
  std::size_t first_regime = SIZE_MAX;
  for (std::uint64_t i = 0; i < 12; ++i) {
    data::StreamFrame fa = a.next();
    data::StreamFrame fb = b.next();
    EXPECT_EQ(fa.index, i);
    // jitter=0: exact nominal capture times.
    EXPECT_EQ(fa.timestamp_ns, static_cast<std::int64_t>(i) * 1'000'000);
    EXPECT_EQ(fa.timestamp_ns, fb.timestamp_ns);
    EXPECT_EQ(fa.label, fb.label);
    EXPECT_LT(fa.label, options.classes);
    if (i < options.hold_frames) {
      if (first_regime == SIZE_MAX) first_regime = fa.label;
      EXPECT_EQ(fa.label, first_regime);  // regime holds for hold_frames
    }
    ASSERT_EQ(fa.features.elements(), fb.features.elements());
    for (std::size_t j = 0; j < fa.features.elements(); ++j) {
      EXPECT_EQ(fa.features.data()[j], fb.features.data()[j]);
    }
  }

  data::VideoStreamSource::Options video;
  video.channels = 1;
  video.size = 4;
  video.scene_frames = 5;
  data::VideoStreamSource v(video, 11), w(video, 11);
  for (int i = 0; i < 10; ++i) {
    data::StreamFrame fv = v.next();
    data::StreamFrame fw = w.next();
    EXPECT_EQ(fv.label, fw.label);
    EXPECT_EQ(fv.timestamp_ns, fw.timestamp_ns);
    EXPECT_EQ(fv.features.shape().rank(), 3U);
  }
}

// ---------------------------------------------------------------------------
// /ei_stream over real HTTP.
// ---------------------------------------------------------------------------

std::string frame_rows(std::size_t rows) {
  std::string body = "[";
  for (std::size_t r = 0; r < rows; ++r) {
    if (r > 0) body += ",";
    body += "[1,2,3,4,5,6,7,8]";
  }
  return body + "]";
}

TEST(StreamHttpTest, EndToEndStreamOverRealHttp) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 1), 0.9);
  std::uint16_t port = node.start_server(0);
  net::HttpClient client(port, 10.0);

  auto opened = client.post(
      "/ei_stream?scenario=safety&algorithm=detection&policy=block&capacity=8",
      "");
  ASSERT_EQ(opened.status, 201);
  Json open_body = Json::parse(opened.body);
  std::string id = open_body.at("stream").as_string();
  EXPECT_EQ(open_body.at("model").as_string(), "det");
  EXPECT_EQ(open_body.at("policy").as_string(), "block");

  auto submitted = client.post("/ei_stream/" + id + "/frames", frame_rows(3));
  ASSERT_EQ(submitted.status, 200);
  Json submit_body = Json::parse(submitted.body);
  EXPECT_EQ(submit_body.at("accepted").as_number(), 3.0);
  EXPECT_EQ(submit_body.at("rejected_backpressure").as_number(), 0.0);

  // Results arrive asynchronously; poll until all three frames delivered.
  std::size_t delivered = 0;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (delivered < 3 && std::chrono::steady_clock::now() < deadline) {
    Json results =
        Json::parse(client.get("/ei_stream/" + id + "/results?max=10").body);
    for (const Json& row : results.at("results").as_array()) {
      EXPECT_EQ(row.at("prediction").as_number(), 1.0);
      EXPECT_GE(row.at("queue_wait_s").as_number(), 0.0);
      EXPECT_GT(row.at("sim_latency_s").as_number(), 0.0);
      ++delivered;
    }
    if (delivered < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(delivered, 3U);

  Json stats = Json::parse(client.get("/ei_stream/" + id).body);
  EXPECT_EQ(stats.at("queue").at("admitted").as_number(), 3.0);
  EXPECT_EQ(stats.at("queue").at("delivered").as_number(), 3.0);
  EXPECT_EQ(stats.at("inferred").as_number(), 3.0);

  auto closed = client.del("/ei_stream/" + id);
  EXPECT_EQ(closed.status, 200);
  EXPECT_TRUE(Json::parse(closed.body).at("closed").as_bool());
  EXPECT_EQ(client.get("/ei_stream/" + id).status, 404);
  node.stop_server();
}

TEST(StreamHttpTest, DeadlineDropsAccountedOverHttp) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  std::uint16_t port = node.start_server(0);
  net::HttpClient client(port, 10.0);
  // deadline_ms = 1e-6 -> 1ns: every frame expires before the worker's pop.
  auto opened = client.post("/ei_stream?scenario=safety&algorithm=detection"
                            "&policy=drop_oldest&capacity=8&deadline_ms=1e-6",
                            "");
  ASSERT_EQ(opened.status, 201);
  std::string id = Json::parse(opened.body).at("stream").as_string();
  auto submitted = client.post("/ei_stream/" + id + "/frames", frame_rows(4));
  ASSERT_EQ(submitted.status, 200);
  EXPECT_EQ(Json::parse(submitted.body).at("accepted").as_number(), 4.0);

  // DELETE drains the worker, so the final stats are settled.
  Json final_stats = Json::parse(client.del("/ei_stream/" + id).body);
  EXPECT_EQ(final_stats.at("queue").at("dropped_deadline").as_number(), 4.0);
  EXPECT_EQ(final_stats.at("queue").at("delivered").as_number(), 0.0);
  EXPECT_EQ(final_stats.at("inferred").as_number(), 0.0);
  node.stop_server();
}

TEST(StreamHttpTest, SessionCapAnswers503TooManyStreams) {
  core::EdgeNodeConfig config = base_config();
  config.service.streaming.max_sessions = 1;
  core::EdgeNode node(config);
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  const std::string open = "/ei_stream?scenario=safety&algorithm=detection";
  ASSERT_EQ(node.call("POST", open).status, 201);
  auto refused = node.call("POST", open);
  EXPECT_EQ(refused.status, 503);
  Json body = Json::parse(refused.body);
  EXPECT_EQ(body.at("error").as_string(), "too_many_streams");
  EXPECT_EQ(body.at("max_sessions").as_number(), 1.0);
}

TEST(StreamHttpTest, BackpressureAnswers429WhenBoundedWaitExpires) {
  nn::Model model = make_constant_model("det", 0);
  core::EdgeNodeConfig config = base_config();
  // Pace the worker to ~0.75s per frame (hwsim latency scaled), so the
  // kBlock queue stays provably full across the HTTP round-trips below.
  hwsim::InferenceCost cost =
      hwsim::estimate_inference(model, config.package, config.device);
  ASSERT_GT(cost.latency_s, 0.0);
  config.service.streaming.session.pace_sim_latency_scale =
      0.75 / cost.latency_s;
  config.service.stream_http_max_block_s = 0.02;
  core::EdgeNode node(config);
  node.deploy_model("safety", "detection", std::move(model), 0.9);
  std::uint16_t port = node.start_server(0);
  net::HttpClient client(port, 10.0);

  auto opened = client.post(
      "/ei_stream?scenario=safety&algorithm=detection&policy=block&capacity=1",
      "");
  ASSERT_EQ(opened.status, 201);
  std::string id = Json::parse(opened.body).at("stream").as_string();
  // Frame 1 occupies the (paced) worker, frame 2 fills the 1-slot queue.
  ASSERT_EQ(client.post("/ei_stream/" + id + "/frames", frame_rows(1)).status,
            200);
  ASSERT_EQ(client.post("/ei_stream/" + id + "/frames", frame_rows(1)).status,
            200);
  // Frame 3 waits the bounded 20ms, finds no space, reports backpressure.
  auto throttled = client.post("/ei_stream/" + id + "/frames", frame_rows(1));
  EXPECT_EQ(throttled.status, 429);
  Json body = Json::parse(throttled.body);
  EXPECT_EQ(body.at("accepted").as_number(), 0.0);
  EXPECT_EQ(body.at("rejected_backpressure").as_number(), 1.0);
  client.del("/ei_stream/" + id);  // drains promptly: pacing is interruptible
  node.stop_server();
}

TEST(StreamHttpTest, UnknownStreamAndBadParameterErrors) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 0), 0.9);
  EXPECT_EQ(node.call("GET", "/ei_stream/nope").status, 404);
  EXPECT_EQ(node.call("POST", "/ei_stream/nope/frames", "[[1]]").status, 404);
  EXPECT_EQ(node.call("DELETE", "/ei_stream/nope").status, 404);
  EXPECT_EQ(node.call("POST", "/ei_stream?scenario=safety"
                              "&algorithm=detection&policy=bogus")
                .status,
            400);
  EXPECT_EQ(node.call("POST", "/ei_stream?scenario=safety"
                              "&algorithm=detection&capacity=0")
                .status,
            400);
  EXPECT_EQ(node.call("POST", "/ei_stream?scenario=safety").status, 400);
  EXPECT_EQ(
      node.call("POST", "/ei_stream?scenario=nope&algorithm=nothing").status,
      404);
}

TEST(StreamStatusTest, StatusAndMetricsExposeStreams) {
  core::EdgeNode node(base_config());
  node.deploy_model("safety", "detection", make_constant_model("det", 2), 0.9);
  auto opened = node.call(
      "POST", "/ei_stream?scenario=safety&algorithm=detection&policy=block");
  ASSERT_EQ(opened.status, 201);
  std::string id = Json::parse(opened.body).at("stream").as_string();
  ASSERT_EQ(
      node.call("POST", "/ei_stream/" + id + "/frames", frame_rows(2)).status,
      200);

  Json status = Json::parse(node.call("GET", "/ei_status").body);
  const Json& streams = status.at("streams");
  EXPECT_EQ(streams.at("active").as_number(), 1.0);
  EXPECT_EQ(streams.at("opened_total").as_number(), 1.0);
  const auto& sessions = streams.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1U);
  EXPECT_EQ(sessions[0].at("id").as_string(), id);
  EXPECT_EQ(sessions[0].at("model").as_string(), "det");
  EXPECT_EQ(sessions[0].at("policy").as_string(), "block");
  EXPECT_EQ(sessions[0].at("produced").as_number(), 2.0);

  std::string metrics = node.call("GET", "/ei_metrics").body;
  EXPECT_NE(metrics.find("ei_stream_sessions_active 1"), std::string::npos);
  EXPECT_NE(metrics.find("ei_stream_frames_admitted_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("ei_stream_frame_latency_seconds"),
            std::string::npos);

  Json index = Json::parse(node.call("GET", "/ei_stream").body);
  EXPECT_EQ(index.at("active").as_number(), 1.0);
  ASSERT_EQ(index.at("streams").as_array().size(), 1U);

  ASSERT_EQ(node.call("DELETE", "/ei_stream/" + id).status, 200);
  Json after = Json::parse(node.call("GET", "/ei_status").body);
  EXPECT_EQ(after.at("streams").at("active").as_number(), 0.0);
  EXPECT_EQ(after.at("streams").at("closed_total").as_number(), 1.0);
  // Four /ei_stream routes were hit: open, frames, index, delete.
  EXPECT_EQ(after.at("requests").at("stream_requests").as_number(), 4.0);
}

}  // namespace
}  // namespace openei::stream
