// Tests for the failover client (Sec. IV-C high availability) and the
// libei inference-session cache.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/edge_node.h"
#include "core/failover.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

namespace openei::core {
namespace {

using common::Rng;

std::unique_ptr<EdgeNode> make_replica(Rng& rng) {
  auto node = std::make_unique<EdgeNode>(EdgeNodeConfig{
      hwsim::raspberry_pi_4(), hwsim::openei_package(), 32});
  Rng model_rng(1234);  // identical weights on every replica
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("det", 4, 2, {8}, model_rng), 0.9);
  (void)rng;
  return node;
}

TEST(FailoverTest, SurvivesPrimaryDeath) {
  Rng rng(1);
  auto primary = make_replica(rng);
  auto backup = make_replica(rng);
  auto p_port = primary->start_server(0);
  auto b_port = backup->start_server(0);

  FailoverClient client({p_port, b_port});
  std::string target = "/ei_algorithms/safety/detection?input=[1,2,3,4]";

  auto first = client.get(target);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(client.active_replica(), 0U);
  EXPECT_EQ(client.failover_count(), 0U);

  // Primary dies; the same call keeps working via the backup.
  primary->stop_server();
  auto after = client.get(target);
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(client.active_replica(), 1U);
  EXPECT_EQ(client.failover_count(), 1U);

  // Identical weights -> identical answer across the failover.
  EXPECT_EQ(common::Json::parse(first.body).at("predictions"),
            common::Json::parse(after.body).at("predictions"));
  backup->stop_server();
}

TEST(FailoverTest, AllReplicasDownThrowsIoError) {
  Rng rng(2);
  std::uint16_t dead1;
  std::uint16_t dead2;
  {
    auto a = make_replica(rng);
    auto b = make_replica(rng);
    dead1 = a->start_server(0);
    dead2 = b->start_server(0);
    a->stop_server();
    b->stop_server();
  }
  FailoverClient client({dead1, dead2});
  EXPECT_THROW(client.get("/ei_status"), openei::IoError);
}

TEST(FailoverTest, ApplicationErrorsDoNotTriggerFailover) {
  Rng rng(3);
  auto primary = make_replica(rng);
  auto backup = make_replica(rng);
  auto p_port = primary->start_server(0);
  auto b_port = backup->start_server(0);
  FailoverClient client({p_port, b_port});

  auto missing = client.get("/ei_algorithms/ghost/none?input=[1]");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(client.failover_count(), 0U);  // 404 is not a transport failure
  primary->stop_server();
  backup->stop_server();
}

TEST(FailoverTest, NeedsAtLeastOneReplica) {
  EXPECT_THROW(FailoverClient({}), openei::InvalidArgument);
}

TEST(SessionCacheTest, RepeatCallsReuseCacheAndRedeployInvalidates) {
  Rng rng(4);
  EdgeNode node(EdgeNodeConfig{hwsim::raspberry_pi_4(),
                               hwsim::openei_package(), 32});
  Rng m1(5);
  node.deploy_model("home", "monitor", nn::zoo::make_mlp("m", 4, 2, {8}, m1),
                    0.9);

  std::string target = "/ei_algorithms/home/monitor?input=[1,2,3,4]";
  auto first = node.call("GET", target);
  ASSERT_EQ(first.status, 200);
  auto again = node.call("GET", target);
  EXPECT_EQ(again.body, first.body);

  // Redeploy under the same name with different weights; the cache must not
  // serve the stale session.
  Rng m2(6);
  node.deploy_model("home", "monitor", nn::zoo::make_mlp("m", 4, 2, {8}, m2),
                    0.9);
  auto fresh = node.call("GET", target);
  ASSERT_EQ(fresh.status, 200);
  // ALEM/latency metadata identical but predictions may change; at minimum
  // the call still works and reflects the *new* registry version.
  common::Json doc = common::Json::parse(fresh.body);
  EXPECT_EQ(doc.at("model").as_string(), "m");
}

TEST(SessionCacheTest, ConcurrentAlgorithmCallsShareOneSessionSafely) {
  // Hammer one node's algorithm route from several clients at once: the
  // shared cached session must produce identical, correct results with no
  // crashes (inference-mode forward is read-only).
  Rng rng(7);
  EdgeNode node(EdgeNodeConfig{hwsim::jetson_tx2(),
                               hwsim::openei_package(), 32});
  node.deploy_model("safety", "detection",
                    nn::zoo::make_mlp("det", 6, 3, {16}, rng), 0.9);
  auto port = node.start_server(0);

  std::string target = "/ei_algorithms/safety/detection?input=[1,2,3,4,5,6]";
  std::string expected = node.call("GET", target).body;

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, port] {
      net::HttpClient client(port);
      for (int i = 0; i < 25; ++i) {
        auto response = client.get(target);
        if (response.status != 200) {
          ++failures;
        } else if (response.body != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  node.stop_server();
}

}  // namespace
}  // namespace openei::core
