// Tests for the streaming inference pipeline.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/pipeline.h"

namespace openei::runtime {
namespace {

using common::Rng;

struct PipelineFixture {
  data::Dataset test;
  datastore::SensorStore store;
  std::unique_ptr<StreamingPipeline> pipeline;

  explicit PipelineFixture(double fps = 10.0) {
    Rng rng(1);
    auto dataset = data::make_blobs(300, 8, 3, rng);
    auto split = data::train_test_split(dataset, 0.8, rng);
    test = std::move(split.second);

    nn::Model model = nn::zoo::make_mlp("streamer", 8, 3, {16}, rng);
    nn::TrainOptions topt;
    topt.epochs = 15;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(model, split.first, topt);

    InferenceSession session(std::move(model), hwsim::openei_package(),
                             hwsim::raspberry_pi_4());
    pipeline =
        std::make_unique<StreamingPipeline>(std::move(session), store, "cam");

    // Feed test rows as timestamped frames at `fps`.
    for (std::size_t i = 0; i < test.size(); ++i) {
      common::JsonArray features;
      for (std::size_t f = 0; f < 8; ++f) {
        features.emplace_back(static_cast<double>(test.features.at2(i, f)));
      }
      store.append("cam", {static_cast<double>(i) / fps,
                           common::Json(std::move(features))});
    }
  }
};

TEST(PipelineTest, DrainsExactlyOnceInOrder) {
  PipelineFixture fx;
  std::size_t n = fx.test.size();

  auto first = fx.pipeline->process_available(static_cast<double>(n) / 20.0);
  auto second = fx.pipeline->process_available(static_cast<double>(n));
  auto third = fx.pipeline->process_available(static_cast<double>(n));

  EXPECT_GT(first.processed, 0U);
  EXPECT_EQ(first.processed + second.processed, n);
  EXPECT_EQ(third.processed, 0U);  // nothing new
  EXPECT_DOUBLE_EQ(fx.pipeline->watermark(),
                   (static_cast<double>(n) - 1.0) / 10.0);
}

TEST(PipelineTest, PredictionsMatchDirectInference) {
  PipelineFixture fx;
  auto pass = fx.pipeline->process_available(1e6);
  ASSERT_EQ(pass.processed, fx.test.size());
  EXPECT_GT(data::accuracy(pass.predictions, fx.test.labels), 0.85);
}

TEST(PipelineTest, FrameLatencyAccountsCaptureToCompletion) {
  PipelineFixture fx;
  double now = 100.0;  // frames captured long before the pass -> latency
  auto pass = fx.pipeline->process_available(now);
  ASSERT_GT(pass.processed, 0U);
  // Oldest frame (t=0) waited at least `now` seconds.
  EXPECT_GE(pass.max_frame_latency_s, now);
  EXPECT_GT(pass.mean_frame_latency_s, 0.0);
  EXPECT_LE(pass.mean_frame_latency_s, pass.max_frame_latency_s);
}

TEST(PipelineTest, SustainableFpsMatchesCostModel) {
  PipelineFixture fx;
  double fps = fx.pipeline->sustainable_fps();
  EXPECT_GT(fps, 0.0);
  // A Pi-4 on a small MLP sustains far more than a 30 fps camera.
  EXPECT_GT(fps, 30.0);
}

TEST(PipelineTest, MalformedPayloadThrows) {
  Rng rng(2);
  datastore::SensorStore store;
  nn::Model model = nn::zoo::make_mlp("m", 4, 2, {4}, rng);
  InferenceSession session(std::move(model), hwsim::openei_package(),
                           hwsim::raspberry_pi_3());
  StreamingPipeline pipeline(std::move(session), store, "s");
  store.append("s", {1.0, common::Json::parse("[1, 2]")});  // width 2 != 4
  EXPECT_THROW(pipeline.process_available(2.0), openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::runtime
