// Tests for the extension features: DDNN-style early exit, EMI-style
// sequence early exit, Pareto-frontier selection, peer model sharing, and
// the /ei_status route.
#include <gtest/gtest.h>

#include "collab/early_exit.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "eialg/fastgrnn.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"

namespace openei {
namespace {

using common::Rng;

// ---------------------------------------------------------------------------
// DDNN-style early exit.
// ---------------------------------------------------------------------------

class EarlyExitFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(71);
    auto dataset = data::make_blobs(600, 12, 3, rng, 2.2F, 1.2F);
    auto split = data::train_test_split(dataset, 0.8, rng);
    train_ = new data::Dataset(std::move(split.first));
    test_ = new data::Dataset(std::move(split.second));

    model_ = new nn::Model(nn::zoo::make_mlp("backbone", 12, 3, {32, 16}, rng));
    nn::TrainOptions topt;
    topt.epochs = 25;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(*model_, *train_, topt);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete test_;
    delete train_;
    model_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
  }

  static collab::EarlyExitModel make_exit_model() {
    Rng rng(72);
    collab::EarlyExitModel exit_model(*model_, /*exit_layer=*/2, 3, rng);
    nn::TrainOptions head_opt;
    head_opt.epochs = 20;
    head_opt.sgd.learning_rate = 0.05F;
    head_opt.sgd.momentum = 0.9F;
    exit_model.fit_exit(*train_, head_opt);
    return exit_model;
  }

  static data::Dataset* train_;
  static data::Dataset* test_;
  static nn::Model* model_;
};

data::Dataset* EarlyExitFixture::train_ = nullptr;
data::Dataset* EarlyExitFixture::test_ = nullptr;
nn::Model* EarlyExitFixture::model_ = nullptr;

TEST_F(EarlyExitFixture, ThresholdZeroExitsEverythingLocally) {
  auto exit_model = make_exit_model();
  auto result = exit_model.run(test_->features, 0.0F);
  EXPECT_DOUBLE_EQ(result.local_fraction, 1.0);
  // A trained exit head alone is already decent.
  EXPECT_GT(data::accuracy(result.predictions, test_->labels), 0.7);
}

TEST_F(EarlyExitFixture, EscalatedSamplesGetFullModelPredictions) {
  auto exit_model = make_exit_model();
  // Threshold 1.0 escalates every sample whose exit softmax has not
  // saturated to exactly 1.0 in float.
  auto result = exit_model.run(test_->features, 1.0F);
  nn::Model full = model_->clone();
  auto full_preds = full.predict(test_->features);
  std::size_t escalated = 0;
  for (std::size_t i = 0; i < result.predictions.size(); ++i) {
    if (!result.exited_locally[i]) {
      ++escalated;
      EXPECT_EQ(result.predictions[i], full_preds[i]);
    }
  }
  EXPECT_GT(escalated, 0U);
  EXPECT_NEAR(result.local_fraction,
              1.0 - static_cast<double>(escalated) /
                        static_cast<double>(test_->size()),
              1e-12);
}

TEST_F(EarlyExitFixture, LocalFractionIsMonotoneInThreshold) {
  auto exit_model = make_exit_model();
  double previous = 1.1;
  for (float threshold : {0.0F, 0.5F, 0.8F, 0.95F, 1.0F}) {
    auto result = exit_model.run(test_->features, threshold);
    EXPECT_LE(result.local_fraction, previous + 1e-12) << threshold;
    previous = result.local_fraction;
  }
}

TEST_F(EarlyExitFixture, EarlyExitBeatsFullOffloadLatency) {
  auto exit_model = make_exit_model();
  auto metrics = collab::evaluate_early_exit(
      exit_model, *test_, 0.9F, hwsim::openei_package(),
      hwsim::raspberry_pi_3(), hwsim::edge_server(), hwsim::cellular_lte());
  EXPECT_GT(metrics.local_fraction, 0.3);
  EXPECT_LT(metrics.mean_latency_s, metrics.offload_latency_s);
  EXPECT_GT(metrics.accuracy, 0.8);
  // Escalated-only traffic is below one activation per inference.
  EXPECT_LT(metrics.mean_bytes_per_inference,
            static_cast<double>(exit_model.escalation_bytes()));
}

TEST_F(EarlyExitFixture, ExitLayerBoundsValidated) {
  Rng rng(73);
  EXPECT_THROW(collab::EarlyExitModel(*model_, 0, 3, rng),
               openei::InvalidArgument);
  EXPECT_THROW(collab::EarlyExitModel(*model_, model_->layer_count(), 3, rng),
               openei::InvalidArgument);
  auto exit_model = make_exit_model();
  EXPECT_THROW(exit_model.run(test_->features, 1.5F), openei::InvalidArgument);
}

// ---------------------------------------------------------------------------
// EMI-style sequence early exit.
// ---------------------------------------------------------------------------

TEST(FastGrnnEarlyExit, SavesStepsWithSmallAccuracyCost) {
  Rng rng(74);
  eialg::FastGrnnOptions options;
  options.steps = 16;
  options.input_dims = 2;
  options.hidden = 12;
  options.epochs = 15;
  options.learning_rate = 0.1F;
  options.early_exit_supervision = 0.5F;  // train intermediate readouts
  auto dataset =
      data::make_sequences(500, options.steps, options.input_dims, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  eialg::FastGrnn model(options);
  model.fit(train);

  auto full = model.predict(test.features);
  double full_accuracy = data::accuracy(full, test.labels);

  auto early = model.predict_early(test.features, 0.9F);
  double early_accuracy = data::accuracy(early.predictions, test.labels);

  EXPECT_LT(early.mean_steps_fraction, 0.95) << "no computation saved";
  EXPECT_GT(early_accuracy, full_accuracy - 0.1);
}

TEST(FastGrnnEarlyExit, ThresholdOneMatchesFullPredictions) {
  Rng rng(75);
  eialg::FastGrnnOptions options;
  options.steps = 8;
  options.input_dims = 2;
  options.epochs = 5;
  auto dataset = data::make_sequences(200, 8, 2, 3, rng);
  eialg::FastGrnn model(options);
  model.fit(dataset);
  auto early = model.predict_early(dataset.features, 1.0F);
  // Threshold 1.0: exit only at the last step (or at exact certainty) —
  // nearly all sequences run fully, and final-step decisions match predict().
  EXPECT_GT(early.mean_steps_fraction, 0.95);
  auto full = model.predict(dataset.features);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == early.predictions[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(full.size()), 0.95);
}

TEST(FastGrnnEarlyExit, LowerThresholdNeverComputesMore) {
  Rng rng(76);
  eialg::FastGrnnOptions options;
  options.steps = 12;
  options.input_dims = 2;
  options.epochs = 8;
  auto dataset = data::make_sequences(300, 12, 2, 3, rng);
  eialg::FastGrnn model(options);
  model.fit(dataset);
  double previous = 0.0;
  for (float threshold : {0.4F, 0.6F, 0.8F, 0.95F, 1.0F}) {
    auto result = model.predict_early(dataset.features, threshold);
    EXPECT_GE(result.mean_steps_fraction + 1e-12, previous) << threshold;
    previous = result.mean_steps_fraction;
  }
}

// ---------------------------------------------------------------------------
// Pareto frontier.
// ---------------------------------------------------------------------------

TEST(ParetoTest, DominanceSemantics) {
  selector::Alem better_everywhere{.accuracy = 0.9, .latency_s = 0.1,
                                   .energy_j = 1.0, .memory_bytes = 100};
  selector::Alem worse{.accuracy = 0.8, .latency_s = 0.2, .energy_j = 2.0,
                       .memory_bytes = 200};
  selector::Alem tradeoff{.accuracy = 0.95, .latency_s = 0.5, .energy_j = 1.0,
                          .memory_bytes = 100};
  EXPECT_TRUE(selector::dominates(better_everywhere, worse));
  EXPECT_FALSE(selector::dominates(worse, better_everywhere));
  EXPECT_FALSE(selector::dominates(better_everywhere, tradeoff));
  EXPECT_FALSE(selector::dominates(tradeoff, better_everywhere));
  EXPECT_FALSE(selector::dominates(worse, worse));  // not strictly better
}

TEST(ParetoTest, FrontierContainsNoDominatedEntries) {
  Rng rng(77);
  auto dataset = data::make_blobs(300, 10, 3, rng, 1.8F, 1.3F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::TrainOptions topt;
  topt.epochs = 15;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  std::vector<nn::Model> models;
  for (auto hidden : std::vector<std::vector<std::size_t>>{{2}, {16}, {96}}) {
    nn::Model model =
        nn::zoo::make_mlp("m" + std::to_string(hidden[0]), 10, 3, hidden, rng);
    nn::fit(model, train, topt);
    models.push_back(std::move(model));
  }
  auto db = selector::CapabilityDatabase::build(
      models, hwsim::default_packages(), hwsim::edge_fleet(), test);

  auto frontier = selector::pareto_frontier(db, "raspberry-pi-4");
  ASSERT_FALSE(frontier.empty());
  ASSERT_LE(frontier.size(), db.on_device("raspberry-pi-4").size());
  // No frontier member dominated by any deployable entry on that device.
  for (const auto& member : frontier) {
    for (const auto& entry : db.on_device("raspberry-pi-4")) {
      if (!entry.deployable) continue;
      EXPECT_FALSE(selector::dominates(entry.alem, member.alem))
          << entry.model_name << "/" << entry.package_name << " dominates "
          << member.model_name << "/" << member.package_name;
    }
  }
  // The frontier preserves every single-objective optimum: for each ALEM
  // attribute, the best frontier value equals the best value over all
  // deployable entries.  (The Eq. 1 *winner entry* itself may be dominated
  // when it ties on the objective but loses elsewhere — e.g. the same model
  // under a fatter package has equal accuracy but worse memory.)
  for (auto objective :
       {selector::Objective::kMinLatency, selector::Objective::kMaxAccuracy,
        selector::Objective::kMinEnergy, selector::Objective::kMinMemory}) {
    selector::SelectionRequest request;
    request.objective = objective;
    request.device_name = "raspberry-pi-4";
    auto winner = selector::select(db, request);
    ASSERT_TRUE(winner.has_value());
    bool frontier_matches_optimum = false;
    for (const auto& member : frontier) {
      if (!selector::better(winner->alem, member.alem, objective)) {
        frontier_matches_optimum = true;  // member is at least as good
      }
    }
    EXPECT_TRUE(frontier_matches_optimum)
        << "objective " << static_cast<int>(objective);
  }
}

TEST(ParetoTest, McuFrontierIsEmpty) {
  Rng rng(78);
  auto dataset = data::make_blobs(100, 8, 2, rng);
  std::vector<nn::Model> models;
  models.push_back(nn::zoo::make_mlp("m", 8, 2, {16}, rng));
  auto db = selector::CapabilityDatabase::build(
      models, hwsim::default_packages(), hwsim::edge_fleet(), dataset);
  EXPECT_TRUE(selector::pareto_frontier(db, "arduino-class-mcu").empty());
}

// ---------------------------------------------------------------------------
// Peer model sharing + /ei_status.
// ---------------------------------------------------------------------------

TEST(PeerSharingTest, FetchModelFromPeerDeploysIt) {
  Rng rng(79);
  core::EdgeNode peer(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                           hwsim::openei_package(), 64});
  nn::Model model = nn::zoo::make_mlp("shared_detector", 6, 2, {8}, rng);
  nn::Tensor probe = nn::Tensor::random_uniform(tensor::Shape{3, 6}, rng);
  nn::Tensor expected = model.forward(probe, false);
  peer.deploy_model("safety", "detection", std::move(model), 0.88);
  std::uint16_t peer_port = peer.start_server(0);

  core::EdgeNode local(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                            hwsim::openei_package(), 64});
  local.fetch_model_from_peer(peer_port, "shared_detector");
  ASSERT_TRUE(local.registry().contains("shared_detector"));
  auto entry = local.registry().get("shared_detector");
  EXPECT_EQ(entry->scenario, "safety");
  EXPECT_DOUBLE_EQ(entry->accuracy, 0.88);
  nn::Model fetched = entry->model.clone();
  EXPECT_TRUE(fetched.forward(probe, false).all_close(expected, 1e-5F));

  EXPECT_THROW(local.fetch_model_from_peer(peer_port, "ghost"), openei::NotFound);
  peer.stop_server();
}

TEST(StatusRouteTest, RequestCountersTrackTrafficAndErrors) {
  Rng rng(81);
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 32});
  node.deploy_model("home", "monitor", nn::zoo::make_mlp("m", 4, 2, {4}, rng),
                    0.9);
  node.ingest("s1", 1.0, common::Json(1.0));

  // 2 data hits, 1 data miss (404), 1 algorithm hit, 1 algorithm error.
  node.call("GET", "/ei_data/realtime/s1?timestamp=0");
  node.call("GET", "/ei_data/history/s1?start=0&end=2");
  node.call("GET", "/ei_data/realtime/ghost?timestamp=0");
  node.call("GET", "/ei_algorithms/home/monitor?input=[1,2,3,4]");
  node.call("GET", "/ei_algorithms/home/monitor?input=[1]");  // wrong width

  common::Json status =
      common::Json::parse(node.call("GET", "/ei_status").body);
  const common::Json& requests = status.at("requests");
  EXPECT_EQ(requests.at("data_requests").as_int(), 3);
  EXPECT_EQ(requests.at("algorithm_requests").as_int(), 2);
  EXPECT_EQ(requests.at("errors").as_int(), 2);
}

TEST(StatusRouteTest, ReportsNodeState) {
  Rng rng(80);
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::lite_framework(), 32});
  node.deploy_model("home", "power_monitor",
                    nn::zoo::make_mlp("pm", 4, 2, {4}, rng), 0.9);
  node.ingest("meter1", 1.0, common::Json(5.0));

  auto response = node.call("GET", "/ei_status");
  ASSERT_EQ(response.status, 200);
  common::Json doc = common::Json::parse(response.body);
  EXPECT_EQ(doc.at("device").as_string(), "raspberry-pi-4");
  EXPECT_EQ(doc.at("package").as_string(), "tensorstream-lite");
  EXPECT_FALSE(doc.at("supports_training").as_bool());
  EXPECT_EQ(doc.at("models").as_array().size(), 1U);
  EXPECT_EQ(doc.at("sensors").at(std::size_t{0}).as_string(), "meter1");
}

}  // namespace
}  // namespace openei
