// The event-loop serving suite (`ctest -L serving`): keep-alive reuse,
// pipelined requests, slow-loris reaping, per-request read deadlines,
// graceful stop() drain, fault injection on the event loop, the
// concurrent-connection cap, the legacy engine's worker cap, and the
// /ei_status "serving" block.
//
// Tests talk raw HTTP over TcpConnection where keep-alive/pipelining
// matters (HttpClient is deliberately one-shot Connection: close).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/json.h"
#include "core/edge_node.h"
#include "net/faults.h"
#include "net/http.h"
#include "net/socket.h"

namespace openei::net {
namespace {

using namespace std::chrono_literals;

HttpResponse echo_handler(const HttpRequest& request) {
  HttpResponse response;
  response.body = R"({"path":")" + request.path + R"("})";
  return response;
}

std::string keepalive_get(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
         "Connection: keep-alive\r\n\r\n";
}

/// Reads exactly `count` responses off a keep-alive connection, returning
/// each body.  Fails the test (via exception) on malformed framing.
std::vector<std::string> read_responses(TcpConnection& connection,
                                        std::size_t count) {
  std::vector<std::string> bodies;
  std::string buffer;
  char chunk[4096];
  while (bodies.size() < count) {
    auto head_end = buffer.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      std::size_t n = connection.read_some(chunk, sizeof(chunk));
      if (n == 0) throw IoError("peer closed mid-response-stream");
      buffer.append(chunk, n);
      continue;
    }
    std::string head = buffer.substr(0, head_end);
    auto pos = head.find("Content-Length:");
    if (pos == std::string::npos) {
      throw IoError("response head missing Content-Length: " + head);
    }
    std::size_t body_len = std::stoul(head.substr(pos + 15));
    while (buffer.size() < head_end + 4 + body_len) {
      std::size_t n = connection.read_some(chunk, sizeof(chunk));
      if (n == 0) throw IoError("peer closed mid-body");
      buffer.append(chunk, n);
    }
    bodies.push_back(buffer.substr(head_end + 4, body_len));
    buffer.erase(0, head_end + 4 + body_len);
  }
  return bodies;
}

// NOLINTNEXTLINE(readability-function-cognitive-complexity)
TEST(ServingTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server(0, echo_handler);
  TcpConnection connection = connect_local(server.port(), 5.0);
  for (int i = 0; i < 5; ++i) {
    connection.write_all(keepalive_get("/req" + std::to_string(i)));
    std::vector<std::string> bodies = read_responses(connection, 1);
    ASSERT_EQ(bodies.size(), 1U);
    EXPECT_NE(bodies[0].find("/req" + std::to_string(i)), std::string::npos);
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.engine, "event_loop");
  EXPECT_EQ(stats.connections_accepted, 1U);
  EXPECT_EQ(stats.requests_served, 5U);
  EXPECT_EQ(stats.keepalive_reuses, 4U);
  server.stop();
}

TEST(ServingTest, PipelinedRequestsAnswerInOrder) {
  HttpServer server(0, echo_handler);
  TcpConnection connection = connect_local(server.port(), 5.0);
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += keepalive_get("/p" + std::to_string(i));
  connection.write_all(burst);  // all eight in one write
  std::vector<std::string> bodies = read_responses(connection, 8);
  ASSERT_EQ(bodies.size(), 8U);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(bodies[i].find("/p" + std::to_string(i)), std::string::npos)
        << "response " << i << " out of order: " << bodies[i];
  }
  server.stop();
}

TEST(ServingTest, RequestSplitAcrossManyTinyWritesStillParses) {
  HttpServer server(0, echo_handler);
  TcpConnection connection = connect_local(server.port(), 5.0);
  std::string wire = keepalive_get("/fragmented");
  for (char byte : wire) {  // one byte per segment — worst-case coalescing
    connection.write_all(&byte, 1);
  }
  std::vector<std::string> bodies = read_responses(connection, 1);
  EXPECT_NE(bodies[0].find("/fragmented"), std::string::npos);
  server.stop();
}

TEST(ServingTest, Http10WithoutKeepAliveHeaderClosesAfterResponse) {
  HttpServer server(0, echo_handler);
  TcpConnection connection = connect_local(server.port(), 5.0);
  connection.write_all(std::string("GET /old HTTP/1.0\r\nHost: x\r\n\r\n"));
  std::vector<std::string> bodies = read_responses(connection, 1);
  EXPECT_NE(bodies[0].find("/old"), std::string::npos);
  char byte;
  EXPECT_EQ(connection.read_some(&byte, 1), 0U);  // orderly close
  server.stop();
}

TEST(ServingTest, IdleKeepAliveConnectionIsReaped) {
  HttpServer::Options options;
  options.idle_timeout_s = 0.15;
  HttpServer server(0, echo_handler, options);
  TcpConnection connection = connect_local(server.port(), 5.0);
  // One served request, then silence: the idle reaper must close the conn.
  connection.write_all(keepalive_get("/warm"));
  read_responses(connection, 1);
  connection.set_read_timeout(3.0);
  char byte;
  EXPECT_EQ(connection.read_some(&byte, 1), 0U);
  EXPECT_GE(server.stats().idle_closed, 1U);
  server.stop();
}

TEST(ServingTest, SlowLorisMidRequestHitsReadDeadline) {
  HttpServer::Options options;
  options.read_timeout_s = 0.15;
  options.idle_timeout_s = 30.0;  // only the per-request deadline may fire
  HttpServer server(0, echo_handler, options);
  TcpConnection connection = connect_local(server.port(), 5.0);
  connection.write_all(std::string("GET /loris HTTP/1.1\r\nHos"));  // stall
  connection.set_read_timeout(3.0);
  char byte;
  EXPECT_EQ(connection.read_some(&byte, 1), 0U);
  EXPECT_GE(server.stats().deadline_closed, 1U);
  server.stop();
}

TEST(ServingTest, StopWithMidRequestAndIdleConnectionsReturnsPromptly) {
  auto server = std::make_unique<HttpServer>(0, echo_handler);
  TcpConnection idle = connect_local(server->port(), 5.0);
  TcpConnection mid = connect_local(server->port(), 5.0);
  mid.write_all(std::string("GET /never HTTP/1.1\r\nH"));  // forever partial
  TcpConnection served = connect_local(server->port(), 5.0);
  served.write_all(keepalive_get("/served"));
  read_responses(served, 1);  // response flushed before the stop
  std::this_thread::sleep_for(50ms);

  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server->stop();
    stopped.store(true);
  });
  for (int i = 0; i < 100 && !stopped.load(); ++i) {
    std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(stopped.load()) << "stop() hung on open connections";
  stopper.join();
  server.reset();
}

TEST(ServingTest, EventLoopMaxConnectionsAnswers503Overflow) {
  HttpServer::Options options;
  options.max_connections = 3;
  HttpServer server(0, echo_handler, options);
  std::vector<TcpConnection> held;
  for (int i = 0; i < 3; ++i) {
    held.push_back(connect_local(server.port(), 5.0));
    held.back().write_all(keepalive_get("/hold" + std::to_string(i)));
    read_responses(held.back(), 1);  // proves the conn is registered + alive
  }
  // The 4th connection must be rejected with a 503 and closed.
  HttpClient overflow(server.port(), 5.0);
  HttpResponse response = overflow.get("/overflow");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("capacity"), std::string::npos);
  EXPECT_GE(server.stats().connections_rejected, 1U);
  // Draining one held connection frees a slot.
  held.pop_back();
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(HttpClient(server.port(), 5.0).get("/after").status, 200);
  server.stop();
}

TEST(ServingTest, FaultPlanInjectsOnTheEventLoop) {
  auto plan = std::make_shared<FaultPlan>();
  plan->add(FaultRule{.path_prefix = "/burst",
                      .kind = FaultKind::kErrorBurst,
                      .status = 503});
  plan->add(FaultRule{.path_prefix = "/reset",
                      .kind = FaultKind::kResetMidStream});
  plan->add(FaultRule{.path_prefix = "/slow",
                      .kind = FaultKind::kInjectDelay,
                      .delay_s = 0.6});
  HttpServer::Options options;
  options.faults = plan;
  HttpServer server(0, echo_handler, options);

  EXPECT_EQ(HttpClient(server.port(), 5.0).get("/burst").status, 503);
  EXPECT_THROW(HttpClient(server.port(), 5.0).get("/reset"), IoError);
  // The injected delay rides a blocking offload worker, not the loop: a
  // parallel healthy request must not queue behind it.
  common::Stopwatch wall;
  std::thread slow([&] {
    EXPECT_EQ(HttpClient(server.port(), 5.0).get("/slow").status, 200);
  });
  EXPECT_EQ(HttpClient(server.port(), 5.0).get("/ok").status, 200);
  double healthy_s = wall.elapsed_seconds();
  slow.join();
  // The threshold leaves sanitizer headroom: a healthy roundtrip costs well
  // under 0.45s even under TSan, while queuing behind the fault forces 0.6s+.
  EXPECT_LT(healthy_s, 0.45) << "healthy request queued behind injected delay";
  EXPECT_GE(wall.elapsed_seconds(), 0.6);
  server.stop();
}

TEST(ServingTest, LegacyEngineCapsConnectionWorkerThreads) {
  HttpServer::Options options;
  options.thread_per_connection = true;
  options.max_connection_threads = 4;
  options.read_timeout_s = 0.2;  // idle workers release quickly
  HttpServer server(0, echo_handler, options);

  // A flood of idle connections: each pins one worker until its read times
  // out, so without the cap this spawns 24 threads at once.
  std::vector<TcpConnection> flood;
  for (int i = 0; i < 24; ++i) flood.push_back(connect_local(server.port(), 5.0));
  std::this_thread::sleep_for(100ms);
  EXPECT_LE(server.stats().peak_connections, 4U);
  // A real request still gets served once the idle workers cycle out.
  EXPECT_EQ(HttpClient(server.port(), 5.0).get("/through").status, 200);
  EXPECT_EQ(server.stats().engine, "thread_per_connection");
  server.stop();
}

TEST(ServingTest, EiStatusReportsServingBlock) {
  core::EdgeNodeConfig config;
  core::EdgeNode node(config);
  std::uint16_t port = node.start_server(0);
  HttpClient client(port, 5.0);
  EXPECT_EQ(client.get("/ei_status").status, 200);  // warm the counters
  HttpResponse status = client.get("/ei_status");
  ASSERT_EQ(status.status, 200);
  common::Json doc = common::Json::parse(status.body);
  const common::Json& serving = doc.at("serving");
  EXPECT_EQ(serving.at("engine").as_string(), "event_loop");
  EXPECT_GE(serving.at("connections_accepted").as_int(), 1);
  EXPECT_GE(serving.at("requests_served").as_int(), 1);
  node.stop_server();
  // Stopped server: the block disappears instead of dangling.
  net::HttpResponse direct = node.call("GET", "/ei_status");
  EXPECT_EQ(direct.body.find("\"serving\""), std::string::npos);
}

TEST(ServingTest, ManyConcurrentKeepAliveClientsAllServe) {
  HttpServer server(0, echo_handler);
  constexpr int kClients = 16;
  constexpr int kRequestsEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        TcpConnection connection = connect_local(server.port(), 5.0);
        for (int i = 0; i < kRequestsEach; ++i) {
          connection.write_all(
              keepalive_get("/c" + std::to_string(c) + "/r" + std::to_string(i)));
          std::vector<std::string> bodies = read_responses(connection, 1);
          if (bodies.size() != 1 ||
              bodies[0].find("/c" + std::to_string(c)) == std::string::npos) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_served,
            static_cast<std::uint64_t>(kClients) * kRequestsEach);
  EXPECT_EQ(stats.keepalive_reuses,
            static_cast<std::uint64_t>(kClients) * (kRequestsEach - 1));
  server.stop();
}

}  // namespace
}  // namespace openei::net
