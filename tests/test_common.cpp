// Unit tests for src/common: errors, strings, JSON codec, RNG, clocks.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace openei::common {
namespace {

TEST(ErrorTest, CheckMacroThrowsWithMessage) {
  try {
    OPENEI_CHECK(1 == 2, "context ", 42);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw ResourceExhausted("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitNonemptyDropsEmptyFields) {
  auto parts = split_nonempty("/ei_algorithms//safety/detection/", '/');
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "ei_algorithms");
  EXPECT_EQ(parts[1], "safety");
  EXPECT_EQ(parts[2], "detection");
}

TEST(StringsTest, TrimStripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("GET /path", "GET"));
  EXPECT_FALSE(starts_with("GE", "GET"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, ToLower) { EXPECT_EQ(to_lower("Content-TYPE"), "content-type"); }

TEST(StringsTest, UriDecodeHandlesEscapesAndPlus) {
  EXPECT_EQ(uri_decode("a%20b+c"), "a b c");
  EXPECT_EQ(uri_decode("%2Fpath%3Fq"), "/path?q");
}

TEST(StringsTest, UriDecodeRejectsMalformedEscapes) {
  EXPECT_THROW(uri_decode("%2"), ParseError);
  EXPECT_THROW(uri_decode("%zz"), ParseError);
}

TEST(StringsTest, UriEncodeRoundTrips) {
  std::string original = "camera 1/stream?t=5&x=%";
  EXPECT_EQ(uri_decode(uri_encode(original)), original);
}

TEST(StringsTest, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"one"}, ", "), "one");
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  Json v = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "text"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3U);
  EXPECT_TRUE(v.at("a").at(2).at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "text");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("missing"));
}

TEST(JsonTest, AtThrowsNotFoundForMissingKey) {
  Json v = Json::parse(R"({"a": 1})");
  EXPECT_THROW(v.at("b"), NotFound);
}

TEST(JsonTest, TypeMismatchThrows) {
  Json v = Json::parse("42");
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.as_array(), InvalidArgument);
  EXPECT_THROW(v.as_object(), InvalidArgument);
}

TEST(JsonTest, DumpRoundTripsStructures) {
  std::string text = R"({"name":"openei","alem":[0.91,12.5,0.8,64],"ok":true,"n":null})";
  Json v = Json::parse(text);
  Json again = Json::parse(v.dump());
  EXPECT_EQ(v, again);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json v(std::string("line1\nline2\t\"quoted\"\\slash"));
  Json back = Json::parse(v.dump());
  EXPECT_EQ(back.as_string(), "line1\nline2\t\"quoted\"\\slash");
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  Json v = Json::parse(R"("é中")");
  EXPECT_EQ(v.as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("--3"), ParseError);
}

TEST(JsonTest, DeepNestingIsRejectedNotStackOverflowed) {
  std::string bomb(100000, '[');
  EXPECT_THROW(Json::parse(bomb), ParseError);
  // A structure just under the limit still parses.
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_NO_THROW(Json::parse(deep));
}

TEST(JsonTest, SetInsertsAndReplacesPreservingOrder) {
  Json v;  // null -> becomes object on first set
  v.set("b", Json(1));
  v.set("a", Json(2));
  v.set("b", Json(3));
  EXPECT_EQ(v.as_object().size(), 2U);
  EXPECT_EQ(v.as_object()[0].first, "b");
  EXPECT_EQ(v.at("b").as_int(), 3);
  EXPECT_EQ(v.at("a").as_int(), 2);
}

TEST(JsonTest, IntegersSerializeWithoutDecimalPoint) {
  Json v(JsonObject{{"n", Json(42)}});
  EXPECT_EQ(v.dump(), R"({"n":42})");
}

TEST(JsonTest, NanSerializesAsNull) {
  Json v(std::nan(""));
  EXPECT_EQ(v.dump(), "null");
}

TEST(JsonTest, PrettyOutputParsesBack) {
  Json v = Json::parse(R"({"a":[1,2],"b":{"c":null}})");
  EXPECT_EQ(Json::parse(v.pretty()), v);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRejectsReversedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(rng.uniform_int(5, 4), InvalidArgument);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(11);
  auto perm = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (auto idx : perm) {
    ASSERT_LT(idx, 50U);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(RngTest, ForkedStreamsAreIndependentOfParentDraws) {
  Rng parent1(9);
  Rng child1 = parent1.fork();
  Rng parent2(9);
  Rng child2 = parent2.fork();
  // Draw from parent2 only; children must still agree.
  parent2.uniform();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
}

TEST(ClockTest, SimClockAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 0.0);
  clock.advance(1.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 1.75);
}

TEST(ClockTest, SimClockRejectsNegativeAdvance) {
  SimClock clock;
  EXPECT_THROW(clock.advance(-1.0), InvalidArgument);
}

TEST(ClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock;
  clock.advance_to(5.0);
  clock.advance_to(2.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 5.0);
}

TEST(ClockTest, StopwatchMeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(LoggingTest, LevelGatesOutput) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);

  ::testing::internal::CaptureStderr();
  log_debug("hidden debug ", 1);
  log_info("hidden info");
  log_warn("visible warn ", 42);
  log_error("visible error");
  std::string output = ::testing::internal::GetCapturedStderr();

  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible warn 42"), std::string::npos);
  EXPECT_NE(output.find("[openei ERROR] visible error"), std::string::npos);

  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("muted");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());

  set_log_level(original);
}

}  // namespace
}  // namespace openei::common
