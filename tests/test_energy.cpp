// Energy-conformance suite (label `energy`): the hwsim power-state ladder,
// the cumulative joule ledger's conservation laws, the frequency governor's
// state machine, the energy-governed scheduler's determinism, and the
// service-level surface (degrade/503, /ei_status energy block, metrics).
//
// Everything runs on injected clocks, so every expectation is exact — the
// same discipline as the FrameQueue/StreamProperty suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "hwsim/power.h"
#include "nn/zoo.h"
#include "runtime/energy_governor.h"
#include "selector/capability_db.h"
#include "selector/energy_schedule.h"

namespace openei {
namespace {

using common::Json;
using hwsim::EnergyLedger;
using hwsim::PowerState;
using runtime::EnergyGovernor;

hwsim::DeviceProfile test_device() { return hwsim::raspberry_pi_4(); }

// ---------------------------------------------------------------------------
// Ledger conservation laws.
// ---------------------------------------------------------------------------

TEST(EnergyLedgerTest, AccruesIdlePowerOverTime) {
  std::int64_t now_ns = 0;
  EnergyLedger ledger(test_device(), [&now_ns] { return now_ns; });
  now_ns = 2'000'000'000;  // 2 s
  EnergyLedger::Snapshot snap = ledger.snapshot();
  EXPECT_DOUBLE_EQ(snap.state_j[0], test_device().idle_power_w * 2.0);
  EXPECT_DOUBLE_EQ(snap.total_j, snap.state_j[0]);
  EXPECT_DOUBLE_EQ(snap.state_seconds[0], 2.0);
  EXPECT_EQ(snap.state, PowerState::kIdle);
}

TEST(EnergyLedgerTest, TotalIsAlwaysSumOfPerStateJoules) {
  hwsim::DeviceProfile device = test_device();
  std::int64_t now_ns = 0;
  EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  now_ns += 1'000'000'000;
  ledger.set_state(PowerState::kActive);
  now_ns += 500'000'000;
  ledger.charge_busy(0.25);
  ledger.set_state(PowerState::kBoost);
  now_ns += 250'000'000;
  ledger.charge_busy(0.1);
  EnergyLedger::Snapshot snap = ledger.snapshot();
  EXPECT_DOUBLE_EQ(snap.total_j,
                   snap.state_j[0] + snap.state_j[1] + snap.state_j[2]);
  // Each state accrued something: idle time, active time + charge, boost
  // time + charge.
  EXPECT_GT(snap.state_j[0], 0.0);
  EXPECT_GT(snap.state_j[1], 0.0);
  EXPECT_GT(snap.state_j[2], 0.0);
  EXPECT_EQ(snap.charges, 2U);
}

TEST(EnergyLedgerTest, ChargeBusyFollowsTheCubeLawPerRung) {
  hwsim::DeviceProfile device = test_device();
  std::int64_t now_ns = 0;
  EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  ledger.set_state(PowerState::kActive);
  double dynamic_w = device.active_power_w - device.idle_power_w;

  // Nominal rung (f = 1): joules = (active - idle) * t.
  EXPECT_DOUBLE_EQ(ledger.charge_busy(0.1), dynamic_w * 0.1);

  // Half clock: dynamic power scales f^3, time stretches 1/f, so energy per
  // unit of nominal busy time scales f^2 — slower is cheaper.
  ledger.set_freq_level(0);
  double f = device.freq_levels[0];
  EXPECT_DOUBLE_EQ(ledger.charge_busy(0.1), dynamic_w * f * f * 0.1);

  // Boost rung: more joules per op than nominal (f > 1).
  ledger.set_freq_level(device.freq_levels.size() - 1);
  ledger.set_state(PowerState::kBoost);
  double boost_joules = ledger.charge_busy(0.1);
  EXPECT_GT(boost_joules, dynamic_w * 0.1);
  double s = device.boost_freq_scale;
  EXPECT_DOUBLE_EQ(boost_joules,
                   (device.boost_power() - device.idle_power_w) * 0.1 / s);
}

TEST(EnergyLedgerTest, MonotoneEvenWhenTheClockStepsBackward) {
  std::int64_t now_ns = 0;
  EnergyLedger ledger(test_device(), [&now_ns] { return now_ns; });
  now_ns = 1'000'000'000;
  double before = ledger.snapshot().total_j;
  now_ns = 500'000'000;  // non-monotone injected clock
  EnergyLedger::Snapshot snap = ledger.snapshot();
  EXPECT_GE(snap.total_j, before);
  now_ns = 3'000'000'000;
  EXPECT_GE(ledger.snapshot().total_j, snap.total_j);
}

TEST(EnergyLedgerTest, IdleFloorHoldsAcrossAnySchedule) {
  hwsim::DeviceProfile device = test_device();
  std::int64_t now_ns = 0;
  EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  now_ns += 700'000'000;
  ledger.set_state(PowerState::kActive);
  ledger.set_freq_level(0);  // cheapest rung
  now_ns += 1'300'000'000;
  ledger.set_state(PowerState::kIdle);
  now_ns += 500'000'000;
  EnergyLedger::Snapshot snap = ledger.snapshot();
  // No state draws less than idle, so the ledger can never undercut the
  // idle-power floor for the elapsed time.
  EXPECT_GE(snap.total_j, device.idle_power_w * snap.elapsed_seconds - 1e-9);
  EXPECT_DOUBLE_EQ(snap.elapsed_seconds, 2.5);
}

// ---------------------------------------------------------------------------
// State-machine legality.
// ---------------------------------------------------------------------------

TEST(EnergyLedgerTest, StateLadderRejectsSkips) {
  EnergyLedger ledger(test_device());
  EXPECT_THROW(ledger.set_state(PowerState::kBoost), InvalidArgument);
  ledger.set_state(PowerState::kActive);
  ledger.set_state(PowerState::kBoost);
  EXPECT_THROW(ledger.set_state(PowerState::kIdle), InvalidArgument);
  ledger.set_state(PowerState::kActive);
  ledger.set_state(PowerState::kIdle);
  EXPECT_EQ(ledger.snapshot().transitions, 4U);
}

TEST(EnergyLedgerTest, SameStateSetIsANoOp) {
  EnergyLedger ledger(test_device());
  ledger.set_state(PowerState::kIdle);
  EXPECT_EQ(ledger.snapshot().transitions, 0U);
}

TEST(EnergyLedgerTest, ChargingWhileIdleIsIllegal) {
  EnergyLedger ledger(test_device());
  EXPECT_THROW(ledger.charge_busy(0.1), InvalidArgument);
}

TEST(EnergyGovernorTest, ZeroLoadNeverReachesBoost) {
  EnergyGovernor governor(test_device());
  governor.on_queue_depth(0);  // zero load: no transition at all
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kIdle);
  governor.on_queue_depth(1);  // wake to active, never straight to boost
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kActive);
}

TEST(EnergyGovernorTest, BacklogClimbsToBoostAndDrainReturnsToIdle) {
  EnergyGovernor::Options options;
  options.boost_queue_depth = 8;
  EnergyGovernor governor(test_device(), options);
  governor.on_queue_depth(4);
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kActive);
  governor.on_queue_depth(4);  // below the boost threshold: stays active
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kActive);
  governor.on_queue_depth(9);
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kBoost);
  EXPECT_EQ(governor.snapshot().boost_entries, 1U);
  governor.on_drained();
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kActive);
  governor.on_drained();
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kIdle);
  governor.on_drained();  // already at the bottom: no-op
  EXPECT_EQ(governor.snapshot().ledger.state, PowerState::kIdle);
}

TEST(EnergyGovernorTest, ChargeWakesAnIdleDevice) {
  EnergyGovernor governor(test_device());
  double joules = governor.charge(0.1);
  EXPECT_GT(joules, 0.0);
  EnergyGovernor::Snapshot snap = governor.snapshot();
  EXPECT_EQ(snap.ledger.state, PowerState::kActive);
  EXPECT_DOUBLE_EQ(snap.ledger.busy_j, joules);
}

// ---------------------------------------------------------------------------
// Rolling-watts admission.
// ---------------------------------------------------------------------------

TEST(EnergyGovernorTest, NoCapMeansEveryRequestAdmits) {
  EnergyGovernor governor(test_device());
  governor.charge(100.0);  // enormous draw, but no envelope configured
  EXPECT_EQ(governor.admit(), EnergyGovernor::Admission::kOk);
  EXPECT_EQ(governor.snapshot().degrades, 0U);
}

TEST(EnergyGovernorTest, RollingWattsDriveDegradeThenRejectThenRecover) {
  hwsim::DeviceProfile device = test_device();  // idle 2.7 W, active 6.4 W
  std::int64_t now_ns = 0;
  EnergyGovernor::Options options;
  options.power_cap_w = 7.0;
  options.reject_factor = 1.2;  // reject past 8.4 W
  options.rolling_window_s = 1.0;
  options.now = [&now_ns] { return now_ns; };
  EnergyGovernor governor(device, options);

  // Idle baseline (2.7 W) sits inside the envelope.
  EXPECT_EQ(governor.admit(), EnergyGovernor::Admission::kOk);

  // 0.2 s of busy compute: baseline jumps to active (6.4 W) and the window
  // holds 0.74 J -> 7.14 W: above the cap, below the reject line.
  governor.charge(0.2);
  EXPECT_NEAR(governor.rolling_watts(), 7.14, 1e-9);
  EXPECT_EQ(governor.admit(), EnergyGovernor::Admission::kDegrade);

  // Another 0.4 s: 2.22 J in the window -> 8.62 W: past the reject line.
  governor.charge(0.4);
  EXPECT_EQ(governor.admit(), EnergyGovernor::Admission::kReject);

  // The window slides: two seconds later the busy joules have pruned out
  // and only the active baseline (6.4 W) remains -> admitted again.
  now_ns += 2'000'000'000;
  EXPECT_EQ(governor.admit(), EnergyGovernor::Admission::kOk);
  EnergyGovernor::Snapshot snap = governor.snapshot();
  EXPECT_EQ(snap.degrades, 1U);
  EXPECT_EQ(snap.rejects, 1U);
}

// ---------------------------------------------------------------------------
// Energy-governed scheduling: determinism under a seeded load trace.
// ---------------------------------------------------------------------------

selector::CapabilityDatabase schedule_db(const hwsim::DeviceProfile& device) {
  selector::CapabilityDatabase db;
  selector::CapabilityEntry heavy;
  heavy.model_name = "detector-xl";
  heavy.package_name = "openei";
  heavy.device_name = device.name;
  heavy.alem = {0.95, 0.020,
                (device.active_power_w - device.idle_power_w) * 0.020,
                8UL << 20};
  db.add(heavy);
  selector::CapabilityEntry light;
  light.model_name = "detector-lite";
  light.package_name = "openei";
  light.device_name = device.name;
  light.alem = {0.80, 0.004,
                (device.active_power_w - device.idle_power_w) * 0.004,
                1UL << 20};
  db.add(light);
  return db;
}

std::vector<selector::EnergyScheduleChoice> plan_trace(std::uint64_t seed) {
  hwsim::DeviceProfile device = test_device();
  selector::CapabilityDatabase db = schedule_db(device);
  common::Rng rng(seed);
  double arrival_hz = 20.0;
  std::vector<selector::EnergyScheduleChoice> choices;
  for (int epoch = 0; epoch < 60; ++epoch) {
    // Drifting load: multiplicative random walk, clamped to a sane band.
    arrival_hz *= rng.uniform(0.7, 1.4);
    arrival_hz = std::min(std::max(arrival_hz, 1.0), 400.0);
    selector::EnergyScheduleRequest request;
    request.arrival_rate_hz = arrival_hz;
    request.requirements.min_accuracy = 0.75;
    request.requirements.max_latency_s = 0.25;
    choices.push_back(selector::plan_energy_schedule(db, device, request));
  }
  return choices;
}

TEST(EnergyScheduleTest, SeededLoadTraceProducesIdenticalChoices) {
  for (std::uint64_t seed : {7ULL, 42ULL, 2026ULL}) {
    auto first = plan_trace(seed);
    auto second = plan_trace(seed);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].model_name, second[i].model_name) << "epoch " << i;
      EXPECT_EQ(first[i].batch_rows, second[i].batch_rows) << "epoch " << i;
      EXPECT_EQ(first[i].freq_level, second[i].freq_level) << "epoch " << i;
      EXPECT_EQ(first[i].boost, second[i].boost) << "epoch " << i;
      EXPECT_DOUBLE_EQ(first[i].predicted_energy_per_req_j,
                       second[i].predicted_energy_per_req_j)
          << "epoch " << i;
    }
  }
}

TEST(EnergyScheduleTest, FeasibleChoicesMeetEveryConstraint) {
  for (const auto& choice : plan_trace(99)) {
    if (!choice.feasible) continue;
    EXPECT_LE(choice.predicted_latency_s, 0.25);
    EXPECT_GT(choice.capacity_hz, 0.0);
  }
}

TEST(EnergyScheduleTest, LowLoadPicksTheLowRungHighLoadClimbs) {
  hwsim::DeviceProfile device = test_device();
  selector::CapabilityDatabase db = schedule_db(device);

  selector::EnergyScheduleRequest lazy;
  lazy.arrival_rate_hz = 5.0;
  lazy.requirements.min_accuracy = 0.75;
  lazy.requirements.max_latency_s = 1.0;
  auto low = selector::plan_energy_schedule(db, device, lazy);
  ASSERT_TRUE(low.feasible);
  // Plenty of headroom: the cheapest plan sits on the lowest DVFS rung with
  // the low-energy variant (energy scales f^2).
  EXPECT_EQ(low.freq_level, 0U);
  EXPECT_FALSE(low.boost);
  EXPECT_EQ(low.model_name, "detector-lite");
  EXPECT_DOUBLE_EQ(
      low.predicted_energy_per_req_j,
      (device.active_power_w - device.idle_power_w) * 0.004 *
          device.freq_levels[0] * device.freq_levels[0]);

  selector::EnergyScheduleRequest rushed = lazy;
  // Beyond the lite model's nominal capacity (250 Hz at f=1): only boost
  // clears the load, at higher energy per request.
  rushed.arrival_rate_hz = 280.0;
  auto high = selector::plan_energy_schedule(db, device, rushed);
  ASSERT_TRUE(high.feasible);
  EXPECT_TRUE(high.boost);
  EXPECT_GT(high.predicted_energy_per_req_j, low.predicted_energy_per_req_j);
  EXPECT_GE(high.capacity_hz, 280.0);

  rushed.arrival_rate_hz = 400.0;  // beyond even boost: best-effort fallback
  auto hopeless = selector::plan_energy_schedule(db, device, rushed);
  EXPECT_FALSE(hopeless.feasible);
  EXPECT_TRUE(hopeless.boost);  // drains backlog as fast as possible
}

// ---------------------------------------------------------------------------
// Service surface: /ei_status energy block, degrade, 503, metrics.
// ---------------------------------------------------------------------------

std::unique_ptr<core::EdgeNode> make_energy_node(double power_cap_w,
                                                 double reject_factor) {
  core::EdgeNodeConfig config{test_device(), hwsim::openei_package(), 64, {}};
  config.service.tracing.enabled = true;
  config.service.tracing.seed = 2026;
  // Direct inference path: charge + drain happen synchronously inside the
  // request, so ledger expectations below are exact, not racy against a
  // batcher flush thread.
  config.service.coalesce_inference = false;
  config.service.energy.power_cap_w = power_cap_w;
  config.service.energy.reject_factor = reject_factor;
  auto node = std::make_unique<core::EdgeNode>(std::move(config));
  common::Rng rng(99);
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector", 8, 3, {16}, rng), 0.9);
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector-lite", 8, 3, {4}, rng), 0.7);
  return node;
}

TEST(EnergyServiceTest, StatusExposesTheLedgerAndGovernor) {
  auto node = make_energy_node(0.0, 1.5);
  auto ok = node->call("GET",
                       "/ei_algorithms/safety/detection?input=[[1,2,3,4,5,6,"
                       "7,8]]");
  ASSERT_EQ(ok.status, 200);
  Json body = Json::parse(ok.body);
  EXPECT_GT(body.at("ledger_energy_j").as_number(), 0.0);
  EXPECT_EQ(body.find("energy_degraded"), nullptr);

  Json status = Json::parse(node->call("GET", "/ei_status").body);
  const Json& energy = status.at("energy");
  EXPECT_GE(energy.at("total_joules").as_number(), 0.0);
  EXPECT_GT(energy.at("busy_joules").as_number(), 0.0);
  EXPECT_GE(energy.at("charges").as_number(), 1.0);
  EXPECT_GE(energy.at("transitions").as_number(), 2.0);
  EXPECT_EQ(energy.at("power_cap_w").as_number(), 0.0);
  EXPECT_EQ(energy.at("degrades").as_number(), 0.0);
  EXPECT_EQ(energy.at("rejects").as_number(), 0.0);
  // Conservation in the exported block too.
  const Json& states = energy.at("states");
  double sum = states.at("idle").at("joules").as_number() +
               states.at("active").at("joules").as_number() +
               states.at("boost").at("joules").as_number();
  EXPECT_NEAR(energy.at("total_joules").as_number(), sum, 1e-9);
}

TEST(EnergyServiceTest, OverCapDegradesToTheMinEnergyVariant) {
  // Cap below the idle draw: every request is over budget, but the wide
  // reject factor keeps them serviceable — each one must fall back to the
  // cheapest variant and say so.
  auto node = make_energy_node(0.5, 100.0);
  auto degraded = node->call(
      "GET", "/ei_algorithms/safety/detection?input=[[1,2,3,4,5,6,7,8]]");
  ASSERT_EQ(degraded.status, 200);
  Json body = Json::parse(degraded.body);
  EXPECT_EQ(body.at("model").as_string(), "detector-lite");
  EXPECT_TRUE(body.at("energy_degraded").as_bool());

  Json status = Json::parse(node->call("GET", "/ei_status").body);
  EXPECT_GE(status.at("energy").at("degrades").as_number(), 1.0);
}

TEST(EnergyServiceTest, FarOverCapAnswers503EnergyBudget) {
  auto node = make_energy_node(0.5, 1.01);  // reject line at 0.505 W
  auto rejected = node->call(
      "GET", "/ei_algorithms/safety/detection?input=[[1,2,3,4,5,6,7,8]]");
  ASSERT_EQ(rejected.status, 503);
  Json body = Json::parse(rejected.body);
  EXPECT_EQ(body.at("error").as_string(), "energy_budget");
  EXPECT_GT(body.at("rolling_watts").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(body.at("power_cap_w").as_number(), 0.5);

  Json status = Json::parse(node->call("GET", "/ei_status").body);
  EXPECT_GE(status.at("energy").at("rejects").as_number(), 1.0);
}

TEST(EnergyServiceTest, MetricsExposeLedgerGauges) {
  auto node = make_energy_node(0.0, 1.5);
  node->call("GET", "/ei_algorithms/safety/detection?input=[[1,2,3,4,5,6,7,8]]");
  auto metrics = node->call("GET", "/ei_metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ei_energy_joules_total{state=\"idle\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_energy_joules_total{state=\"active\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_energy_joules_total{state=\"boost\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_power_watts"), std::string::npos);
  EXPECT_NE(metrics.body.find("ei_freq_level"), std::string::npos);
}

TEST(EnergyServiceTest, StreamedFramesChargeTheSameLedger) {
  auto node = make_energy_node(0.0, 1.5);
  auto opened = node->call(
      "POST", "/ei_stream?scenario=safety&algorithm=detection&policy=block");
  ASSERT_EQ(opened.status, 201);
  std::string id = Json::parse(opened.body).at("stream").as_string();
  auto submitted = node->call("POST", "/ei_stream/" + id + "/frames",
                              "[[1,2,3,4,5,6,7,8]]");
  ASSERT_EQ(submitted.status, 200);
  node->call("DELETE", "/ei_stream/" + id);  // drains the worker

  Json status = Json::parse(node->call("GET", "/ei_status").body);
  const Json& energy = status.at("energy");
  EXPECT_GE(energy.at("charges").as_number(), 1.0);
  EXPECT_GT(energy.at("busy_joules").as_number(), 0.0);
}

}  // namespace
}  // namespace openei
