// Tests for CloudTrainer, DVFS power capping, and gradient clipping.
#include <gtest/gtest.h>

#include "collab/cloud_trainer.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

namespace openei {
namespace {

using common::Rng;

TEST(CloudTrainerTest, TrainsAndAccountsCloudCost) {
  Rng rng(1);
  auto dataset = data::make_blobs(300, 8, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  collab::CloudTrainer cloud(std::move(train), std::move(test),
                             hwsim::cloud_gpu(), hwsim::full_framework());

  nn::TrainOptions options;
  options.epochs = 15;
  options.sgd.learning_rate = 0.05F;
  options.sgd.momentum = 0.9F;
  auto result = cloud.train(nn::zoo::make_mlp("m", 8, 3, {16}, rng), options);
  EXPECT_GT(result.test_accuracy, 0.85);
  EXPECT_GT(result.training_latency_s, 0.0);
  EXPECT_GT(result.training_energy_j, 0.0);
}

TEST(CloudTrainerTest, RejectsInferenceOnlyPackage) {
  Rng rng(2);
  auto dataset = data::make_blobs(100, 4, 2, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  EXPECT_THROW(collab::CloudTrainer(std::move(train), std::move(test),
                                    hwsim::cloud_gpu(), hwsim::lite_framework()),
               openei::InvalidArgument);
}

TEST(CloudTrainerTest, PushToEdgeDeploysOverHttp) {
  Rng rng(3);
  auto dataset = data::make_blobs(200, 6, 2, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  collab::CloudTrainer cloud(std::move(train), std::move(test),
                             hwsim::cloud_gpu(), hwsim::full_framework());
  nn::TrainOptions options;
  options.epochs = 10;
  auto trained = cloud.train(nn::zoo::make_mlp("pushed", 6, 2, {8}, rng),
                             options);

  core::EdgeNode edge(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 16});
  auto port = edge.start_server(0);
  collab::CloudTrainer::push_to_edge(port, trained.model, "safety", "detection",
                                     trained.test_accuracy);
  EXPECT_TRUE(edge.registry().contains("pushed"));
  EXPECT_NEAR(edge.registry().get("pushed")->accuracy, trained.test_accuracy,
              1e-5);
  edge.stop_server();

  // Dead edge -> IoError.
  EXPECT_THROW(collab::CloudTrainer::push_to_edge(port, trained.model, "s", "a",
                                                  0.5),
               openei::IoError);
}

TEST(PowerCapTest, CapSlowsComputeAndSavesPower) {
  auto jetson = hwsim::jetson_tx2();  // 5 W idle, 15 W active
  auto capped = jetson.with_power_cap(7.5);
  EXPECT_LT(capped.effective_gflops, jetson.effective_gflops);
  EXPECT_DOUBLE_EQ(capped.active_power_w, 7.5);
  // Cube-root law: (7.5-5)/(15-5) = 0.25 -> f = 0.63.
  EXPECT_NEAR(capped.effective_gflops / jetson.effective_gflops, 0.63, 0.01);
}

TEST(PowerCapTest, NonBindingCapIsIdentity) {
  auto pi = hwsim::raspberry_pi_3();
  auto same = pi.with_power_cap(100.0);
  EXPECT_DOUBLE_EQ(same.effective_gflops, pi.effective_gflops);
  EXPECT_EQ(same.name, pi.name);
}

TEST(PowerCapTest, CapAtOrBelowIdleThrows) {
  auto pi = hwsim::raspberry_pi_3();
  EXPECT_THROW(pi.with_power_cap(pi.idle_power_w), openei::InvalidArgument);
  EXPECT_THROW(pi.with_power_cap(0.0), openei::InvalidArgument);
}

TEST(PowerCapTest, LatencyGrowsMonotonicallyAsCapTightens) {
  Rng rng(4);
  nn::Model model = nn::zoo::make_mlp("m", 32, 4, {128, 64}, rng);
  auto jetson = hwsim::jetson_tx2();
  double previous = 0.0;
  for (double cap : {15.0, 12.0, 9.0, 7.0, 6.0}) {
    auto capped = jetson.with_power_cap(cap);
    double latency =
        hwsim::estimate_inference(model, hwsim::openei_package(), capped)
            .latency_s;
    EXPECT_GE(latency + 1e-15, previous) << cap;
    previous = latency;
  }
}

TEST(ClipNormTest, BoundsGlobalGradientNorm) {
  // Train one step with an absurd learning signal; clipping keeps the
  // parameters finite where the unclipped run diverges faster.
  Rng rng(5);
  auto dataset = data::make_blobs(60, 4, 2, rng, 20.0F, 0.1F);  // huge inputs

  auto param_norm_after = [&](float clip) {
    Rng model_rng(6);
    nn::Model model = nn::zoo::make_mlp("m", 4, 2, {8}, model_rng);
    nn::TrainOptions options;
    options.epochs = 3;
    options.sgd.learning_rate = 0.5F;
    options.clip_norm = clip;
    nn::fit(model, dataset, options);
    double total = 0.0;
    for (nn::Tensor* p : model.parameters()) total += p->norm();
    return total;
  };

  double clipped = param_norm_after(1.0F);
  double unclipped = param_norm_after(0.0F);
  EXPECT_LT(clipped, unclipped);
  EXPECT_TRUE(std::isfinite(clipped));
}

}  // namespace
}  // namespace openei
