// Deterministic fault-matrix tests: every injected fault class exercised
// against {HttpClient, ResilientClient, FailoverClient}, malformed-request
// hardening (400-not-crash), deadline enforcement against a never-responding
// socket, circuit-breaker state transitions, failback after replica
// recovery, and graceful degradation of the cloud-edge path — the Sec. IV-C
// "high availability ... failure avoidance" requirements as executable
// specifications.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "collab/cloud_edge.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "core/failover.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "net/faults.h"
#include "net/http.h"
#include "net/resilient_client.h"
#include "nn/zoo.h"

namespace openei::net {
namespace {

HttpServer::Options with_plan(std::shared_ptr<FaultPlan> plan,
                              double read_timeout_s = 5.0) {
  HttpServer::Options options;
  options.read_timeout_s = read_timeout_s;
  options.faults = std::move(plan);
  return options;
}

HttpResponse ok_handler(const HttpRequest&) {
  return HttpResponse::json(200, R"({"ok":true,"payload":"0123456789abcdef"})");
}

// --- FaultPlan scheduling ------------------------------------------------

TEST(FaultPlanTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.add(FaultRule{"", FaultKind::kErrorBurst, /*probability=*/0.5});
    std::vector<FaultKind> kinds;
    for (int i = 0; i < 32; ++i) kinds.push_back(plan.next("/any").kind);
    return kinds;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seed, different burst pattern
}

TEST(FaultPlanTest, WindowAndPrefixSelectRequests) {
  FaultPlan plan(1);
  plan.add(FaultRule{"/ei_algorithms", FaultKind::kErrorBurst,
                     /*probability=*/1.0, /*from_request=*/1,
                     /*until_request=*/3});
  // Non-matching route never faulted and does not advance the rule counter.
  EXPECT_EQ(plan.next("/ei_status").kind, FaultKind::kNone);
  // Matched requests 0,1,2,3 -> window [1,3) faults exactly #1 and #2.
  EXPECT_EQ(plan.next("/ei_algorithms/a/b").kind, FaultKind::kNone);
  EXPECT_EQ(plan.next("/ei_algorithms/a/b").kind, FaultKind::kErrorBurst);
  EXPECT_EQ(plan.next("/ei_algorithms/a/b").kind, FaultKind::kErrorBurst);
  EXPECT_EQ(plan.next("/ei_algorithms/a/b").kind, FaultKind::kNone);
  EXPECT_EQ(plan.request_count(), 5U);
  EXPECT_EQ(plan.injected_count(), 2U);
}

// --- Fault matrix: plain HttpClient observes each fault class ------------

TEST(FaultMatrixTest, RefusedConnectionIsIoError) {
  auto plan = std::make_shared<FaultPlan>(2);
  plan->add(FaultRule{"", FaultKind::kRefuseConnection});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/1.0);
  EXPECT_THROW(client.get("/x"), openei::IoError);
  server.stop();
}

TEST(FaultMatrixTest, MidStreamResetIsIoError) {
  auto plan = std::make_shared<FaultPlan>(3);
  plan->add(FaultRule{"", FaultKind::kResetMidStream});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/1.0);
  EXPECT_THROW(client.get("/x"), openei::IoError);
  server.stop();
}

TEST(FaultMatrixTest, TruncatedResponseIsDetectedNotSilentlyAccepted) {
  auto plan = std::make_shared<FaultPlan>(4);
  plan->add(FaultRule{"", FaultKind::kTruncateResponse});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/1.0);
  EXPECT_THROW(client.get("/x"), openei::IoError);
  server.stop();
}

TEST(FaultMatrixTest, SlowReadTripsClientDeadline) {
  auto plan = std::make_shared<FaultPlan>(5);
  plan->add(FaultRule{"", FaultKind::kSlowRead, /*probability=*/1.0,
                      /*from_request=*/0, /*until_request=*/SIZE_MAX,
                      /*delay_s=*/2.0});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/0.2);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::TimeoutError);
  EXPECT_LT(elapsed.elapsed_seconds(), 1.5);  // bounded, not 2+ s
  server.stop();
}

TEST(FaultMatrixTest, InjectedDelayTripsClientDeadline) {
  auto plan = std::make_shared<FaultPlan>(6);
  plan->add(FaultRule{"", FaultKind::kInjectDelay, /*probability=*/1.0,
                      /*from_request=*/0, /*until_request=*/SIZE_MAX,
                      /*delay_s=*/2.0});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/0.2);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::TimeoutError);
  EXPECT_LT(elapsed.elapsed_seconds(), 1.5);
  server.stop();
}

TEST(FaultMatrixTest, ErrorBurstServes503) {
  auto plan = std::make_shared<FaultPlan>(7);
  plan->add(FaultRule{"", FaultKind::kErrorBurst});
  HttpServer server(0, ok_handler, with_plan(plan));
  HttpClient client(server.port(), /*deadline_s=*/1.0);
  EXPECT_EQ(client.get("/x").status, 503);
  server.stop();
}

// --- Fault matrix: ResilientClient rides through bounded faults ----------

TEST(ResilientClientTest, RetriesThroughTransientFaultWindow) {
  for (FaultKind kind : {FaultKind::kRefuseConnection, FaultKind::kResetMidStream,
                         FaultKind::kTruncateResponse, FaultKind::kErrorBurst}) {
    auto plan = std::make_shared<FaultPlan>(8);
    // Exactly the first two requests fault, then the route heals.
    plan->add(FaultRule{"", kind, /*probability=*/1.0, /*from_request=*/0,
                        /*until_request=*/2});
    HttpServer server(0, ok_handler, with_plan(plan));

    ResilientClient::Options options;
    options.deadline_s = 2.0;
    options.retry.max_attempts = 3;
    options.retry.initial_backoff_s = 0.001;
    auto metrics = std::make_shared<ResilienceMetrics>();
    options.metrics = metrics;
    ResilientClient client(server.port(), options);

    HttpResponse response = client.get("/x");
    EXPECT_EQ(response.status, 200) << "fault kind " << to_string(kind);
    EXPECT_EQ(client.stats().retries, 2U) << "fault kind " << to_string(kind);
    EXPECT_EQ(metrics->retries.load(), 2U);
    server.stop();
  }
}

TEST(ResilientClientTest, DeterministicJitterReproducesBackoffSchedule) {
  ResilientClient::Options options;
  options.seed = 99;
  // Two clients with the same seed draw the same jitter stream; this shows
  // through identical stats after identical failure sequences against a
  // dead endpoint.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  options.deadline_s = 0.5;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_s = 0.001;
  ResilientClient a(dead_port, options);
  ResilientClient b(dead_port, options);
  EXPECT_THROW(a.get("/x"), openei::IoError);
  EXPECT_THROW(b.get("/x"), openei::IoError);
  EXPECT_EQ(a.stats().attempts, b.stats().attempts);
  EXPECT_EQ(a.stats().failures, b.stats().failures);
}

TEST(ResilientClientTest, SurfacesResidual5xxAfterBudget) {
  auto plan = std::make_shared<FaultPlan>(9);
  plan->add(FaultRule{"", FaultKind::kErrorBurst});  // every request
  HttpServer server(0, ok_handler, with_plan(plan));
  ResilientClient::Options options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_s = 0.001;
  options.breaker.failure_threshold = 100;  // keep the breaker out of this test
  ResilientClient client(server.port(), options);
  EXPECT_EQ(client.get("/x").status, 503);
  EXPECT_EQ(client.stats().retries, 1U);
  server.stop();
}

TEST(ResilientClientTest, FourOhFourPassesThroughWithoutRetry) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw openei::NotFound("nope");
  });
  ResilientClient client(server.port());
  EXPECT_EQ(client.get("/missing").status, 404);
  EXPECT_EQ(client.stats().retries, 0U);
  EXPECT_EQ(client.circuit_state(), CircuitState::kClosed);
  server.stop();
}

// --- Circuit breaker ------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterThresholdAndFailsFast) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  ResilientClient::Options options;
  options.deadline_s = 0.5;
  options.retry.max_attempts = 1;
  options.retry.initial_backoff_s = 0.001;
  options.breaker.failure_threshold = 3;
  options.breaker.open_duration_s = 30.0;  // stays open for the test
  auto metrics = std::make_shared<ResilienceMetrics>();
  options.metrics = metrics;
  {
    ResilientClient client(dead_port, options);

    for (int i = 0; i < 3; ++i) {
      EXPECT_THROW(client.get("/x"), openei::IoError);
    }
    EXPECT_EQ(client.circuit_state(), CircuitState::kOpen);
    EXPECT_EQ(metrics->breaker_opens.load(), 1U);
    EXPECT_EQ(metrics->open_breakers.load(), 1);

    // Open breaker: rejected locally, fast, with CircuitOpenError.
    common::Stopwatch elapsed;
    EXPECT_THROW(client.get("/x"), openei::CircuitOpenError);
    EXPECT_LT(elapsed.elapsed_seconds(), 0.1);
    EXPECT_EQ(metrics->breaker_rejections.load(), 1U);
  }
  // A destroyed client releases its open-breaker gauge.
  EXPECT_EQ(metrics->open_breakers.load(), 0);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesAfterRecovery) {
  auto plan = std::make_shared<FaultPlan>(10);
  // First 3 requests 503, then healthy: the breaker opens, then a half-open
  // trial after the open window closes it again.
  plan->add(FaultRule{"", FaultKind::kErrorBurst, /*probability=*/1.0,
                      /*from_request=*/0, /*until_request=*/3});
  HttpServer server(0, ok_handler, with_plan(plan));
  ResilientClient::Options options;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.open_duration_s = 0.05;
  ResilientClient client(server.port(), options);

  for (int i = 0; i < 3; ++i) EXPECT_EQ(client.get("/x").status, 503);
  EXPECT_EQ(client.circuit_state(), CircuitState::kOpen);
  EXPECT_THROW(client.get("/x"), openei::CircuitOpenError);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(client.get("/x").status, 200);  // half-open trial succeeds
  EXPECT_EQ(client.circuit_state(), CircuitState::kClosed);
  server.stop();
}

TEST(CircuitBreakerTest, ProbeBypassesOpenBreaker) {
  auto plan = std::make_shared<FaultPlan>(11);
  plan->add(FaultRule{"", FaultKind::kErrorBurst, /*probability=*/1.0,
                      /*from_request=*/0, /*until_request=*/3});
  HttpServer server(0, ok_handler, with_plan(plan));
  ResilientClient::Options options;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.open_duration_s = 60.0;  // would stay open without a probe
  ResilientClient client(server.port(), options);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(client.get("/x").status, 503);
  EXPECT_EQ(client.circuit_state(), CircuitState::kOpen);
  EXPECT_TRUE(client.probe("/x"));  // endpoint healed; probe closes the breaker
  EXPECT_EQ(client.circuit_state(), CircuitState::kClosed);
  EXPECT_EQ(client.get("/x").status, 200);
  server.stop();
}

// --- Deadlines: no request path can block indefinitely -------------------

TEST(DeadlineTest, NeverRespondingSocketCannotHangTheClient) {
  // A listener that accepts into its backlog but never serves: the write
  // lands, the response never comes.
  TcpListener black_hole(0);
  HttpClient client(black_hole.port(), /*deadline_s=*/0.2);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::TimeoutError);
  double waited = elapsed.elapsed_seconds();
  EXPECT_GE(waited, 0.15);
  EXPECT_LT(waited, 1.5);
  black_hole.shutdown();
}

TEST(DeadlineTest, ResilientClientDeadlineSpansAllRetries) {
  TcpListener black_hole(0);
  ResilientClient::Options options;
  options.deadline_s = 0.3;
  options.retry.max_attempts = 10;  // budget far larger than the deadline
  options.retry.initial_backoff_s = 0.01;
  ResilientClient client(black_hole.port(), options);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::TimeoutError);
  EXPECT_LT(elapsed.elapsed_seconds(), 1.5);
  black_hole.shutdown();
}

TEST(DeadlineTest, ThreeRetrySequenceNeverExceedsCallerDeadline) {
  // Regression: the caller's deadline is end-to-end.  Every phase of every
  // attempt — connect, write, read, and the backoff sleeps between attempts
  // — must fit in the one budget, so a 3-retry sequence can never stretch
  // the call past it.  Backoffs here would sum to ~0.75s on their own.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  ResilientClient::Options options;
  options.deadline_s = 0.4;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_s = 0.25;
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff_s = 5.0;
  options.retry.jitter_fraction = 0.0;
  options.breaker.failure_threshold = 100;
  ResilientClient client(dead_port, options);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::Error);
  // Small scheduling slack only — anything near 0.65s would mean a backoff
  // sleep escaped the deadline clamp.
  EXPECT_LT(elapsed.elapsed_seconds(), 0.55);
}

TEST(DeadlineTest, NoBackoffSleepAfterTheFinalAttempt) {
  // The failure summary must surface as soon as the last attempt fails:
  // sleeping the post-final backoff (here 2s) would be pure added latency.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  ResilientClient::Options options;
  options.deadline_s = 10.0;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_s = 0.05;
  options.retry.backoff_multiplier = 40.0;  // second backoff would be 2s
  options.retry.jitter_fraction = 0.0;
  options.breaker.failure_threshold = 100;
  ResilientClient client(dead_port, options);
  common::Stopwatch elapsed;
  EXPECT_THROW(client.get("/x"), openei::IoError);
  EXPECT_LT(elapsed.elapsed_seconds(), 0.5);
}

// --- Per-endpoint breaker visibility --------------------------------------

TEST(BreakerVisibilityTest, SharedSinkReportsPerEndpointState) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  HttpServer healthy(0, ok_handler);
  auto metrics = std::make_shared<ResilienceMetrics>();
  ResilientClient::Options options;
  options.deadline_s = 0.5;
  options.retry.max_attempts = 1;
  options.retry.initial_backoff_s = 0.001;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration_s = 30.0;
  options.metrics = metrics;
  {
    ResilientClient good(healthy.port(), options);
    ResilientClient bad(dead_port, options);
    EXPECT_EQ(good.get("/x").status, 200);
    for (int i = 0; i < 2; ++i) EXPECT_THROW(bad.get("/x"), openei::IoError);

    std::vector<BreakerSnapshot> snapshots = metrics->breaker_snapshots();
    ASSERT_EQ(snapshots.size(), 2U);
    const BreakerSnapshot* good_row = nullptr;
    const BreakerSnapshot* bad_row = nullptr;
    for (const BreakerSnapshot& row : snapshots) {
      if (row.endpoint == "127.0.0.1:" + std::to_string(dead_port)) {
        bad_row = &row;
      } else {
        good_row = &row;
      }
    }
    ASSERT_NE(good_row, nullptr);
    ASSERT_NE(bad_row, nullptr);
    EXPECT_EQ(good_row->state, CircuitState::kClosed);
    EXPECT_EQ(good_row->consecutive_failures, 0U);
    EXPECT_EQ(bad_row->state, CircuitState::kOpen);
    EXPECT_GE(bad_row->consecutive_failures, 2U);
    EXPECT_GT(bad_row->last_transition_unix_s, 0.0);

    // The same rows ride along in the sink's JSON (what /ei_status embeds).
    common::Json doc = metrics->to_json();
    ASSERT_EQ(doc.at("breakers").as_array().size(), 2U);
    bool saw_open = false;
    for (const common::Json& row : doc.at("breakers").as_array()) {
      if (row.at("state").as_string() == "open") saw_open = true;
    }
    EXPECT_TRUE(saw_open);
  }
  // Destroyed clients unregister: the sink never reports dead endpoints.
  EXPECT_TRUE(metrics->breaker_snapshots().empty());
  healthy.stop();
}

TEST(BreakerVisibilityTest, EiStatusExposesBreakerRows) {
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(), hwsim::openei_package(),
                              64};
  core::EdgeNode node(config);
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  ResilientClient::Options options;
  options.deadline_s = 0.3;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.open_duration_s = 30.0;
  options.metrics = node.resilience_metrics();
  ResilientClient outbound(dead_port, options);
  EXPECT_THROW(outbound.get("/x"), openei::IoError);

  common::Json status = common::Json::parse(node.call("GET", "/ei_status").body);
  const common::Json& breakers = status.at("resilience").at("breakers");
  ASSERT_EQ(breakers.as_array().size(), 1U);
  EXPECT_EQ(breakers.as_array()[0].at("state").as_string(), "open");
  EXPECT_EQ(breakers.as_array()[0].at("endpoint").as_string(),
            "127.0.0.1:" + std::to_string(dead_port));
}

TEST(DeadlineTest, StalledClientCannotPinAServerWorker) {
  HttpServer::Options options;
  options.read_timeout_s = 0.1;
  HttpServer server(0, ok_handler, options);
  // Connect and send nothing; the worker must give up on its own.
  TcpConnection silent = connect_local(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Healthy clients are still served, and stop() drains without hanging.
  HttpClient client(server.port(), 1.0);
  EXPECT_EQ(client.get("/x").status, 200);
  server.stop();  // would deadlock if the silent worker were pinned
  silent.close();
}

// --- Malformed requests: 400, never a crash or a hang --------------------

TEST(MalformedRequestTest, OversizedContentLengthGets400) {
  HttpServer server(0, ok_handler);
  TcpConnection connection = connect_local(server.port());
  connection.write_all(
      "POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n");
  char buffer[512];
  std::string reply;
  try {
    while (true) {
      std::size_t n = connection.read_some(buffer, sizeof(buffer));
      if (n == 0) break;
      reply.append(buffer, n);
    }
  } catch (const openei::IoError&) {
  }
  EXPECT_NE(reply.find("400"), std::string::npos);
  server.stop();
}

TEST(MalformedRequestTest, NonNumericContentLengthGets400) {
  HttpServer server(0, ok_handler);
  TcpConnection connection = connect_local(server.port());
  connection.write_all(
      "POST /x HTTP/1.1\r\nContent-Length: 18446744073709551617\r\n\r\n");
  char buffer[512];
  std::string reply;
  try {
    while (true) {
      std::size_t n = connection.read_some(buffer, sizeof(buffer));
      if (n == 0) break;
      reply.append(buffer, n);
    }
  } catch (const openei::IoError&) {
  }
  EXPECT_NE(reply.find("400"), std::string::npos);
  server.stop();
}

TEST(MalformedRequestTest, TruncatedHeadLeavesServerHealthy) {
  HttpServer::Options options;
  options.read_timeout_s = 0.1;
  HttpServer server(0, ok_handler, options);
  {
    TcpConnection connection = connect_local(server.port());
    connection.write_all("GET /x HTT");  // head cut mid-line, then close
  }
  HttpClient client(server.port(), 1.0);
  EXPECT_EQ(client.get("/x").status, 200);
  server.stop();
}

TEST(MalformedRequestTest, BadPercentEncodingGets400) {
  HttpServer server(0, ok_handler);
  HttpClient client(server.port(), 1.0);
  EXPECT_EQ(client.get("/bad%zzpath").status, 400);
  EXPECT_EQ(client.get("/x?a=%2").status, 400);
  // Parser-level: the same inputs throw ParseError, never crash.
  std::string path;
  std::map<std::string, std::string> query;
  EXPECT_THROW(parse_target("/bad%zz", path, query), openei::ParseError);
  EXPECT_THROW(parse_request("GET /a%2 HTTP/1.1", ""), openei::ParseError);
  server.stop();
}

// --- NetworkLink loss knob ------------------------------------------------

TEST(NetworkLinkLossTest, LossInflatesTimeAndEnergy) {
  hwsim::NetworkLink clean = hwsim::wifi();
  hwsim::NetworkLink lossy = clean.with_loss(0.5);
  // 50% loss -> every packet sent twice in expectation.
  EXPECT_DOUBLE_EQ(lossy.expected_transmissions(), 2.0);
  double clean_serialize = clean.transfer_time_s(1 << 20) - clean.rtt_s / 2.0;
  double lossy_serialize = lossy.transfer_time_s(1 << 20) - lossy.rtt_s / 2.0;
  EXPECT_NEAR(lossy_serialize, 2.0 * clean_serialize, 1e-9);
  EXPECT_NEAR(lossy.transfer_energy_j(1000), 2.0 * clean.transfer_energy_j(1000),
              1e-12);
  // Default links are clean and unchanged.
  EXPECT_DOUBLE_EQ(clean.loss_rate, 0.0);
  EXPECT_THROW(clean.with_loss(1.0), openei::InvalidArgument);
  EXPECT_THROW(clean.with_loss(-0.1), openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::net

namespace openei::core {
namespace {

using common::Rng;

std::unique_ptr<EdgeNode> make_replica() {
  auto node = std::make_unique<EdgeNode>(EdgeNodeConfig{
      hwsim::raspberry_pi_4(), hwsim::openei_package(), 32});
  Rng model_rng(4321);  // identical weights on every replica
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("det", 4, 2, {8}, model_rng), 0.9);
  return node;
}

FailoverOptions fast_failover_options() {
  FailoverOptions options;
  options.client.deadline_s = 1.0;
  options.client.retry.max_attempts = 1;
  options.client.retry.initial_backoff_s = 0.001;
  options.probe_every = 2;
  return options;
}

// Acceptance scenario: primary down for a window -> backup serves; primary
// recovers -> the client fails back within N probe intervals; every request
// succeeds; the whole story is visible via /ei_status counters.
TEST(FailbackTest, ReturnsToPreferredReplicaAfterRecovery) {
  auto primary = make_replica();
  auto backup = make_replica();
  auto p_port = primary->start_server(0);
  auto b_port = backup->start_server(0);

  // The consumer edge node owns the failover client; its resilience sink is
  // what /ei_status reports.
  auto consumer = make_replica();
  FailoverOptions options = fast_failover_options();
  options.client.metrics = consumer->resilience_metrics();
  FailoverClient client({p_port, b_port}, options);
  std::string target = "/ei_algorithms/safety/detection?input=[1,2,3,4]";

  auto first = client.get(target);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(client.active_replica(), 0U);

  // Primary goes down for a window: the same call keeps working via backup.
  primary->stop_server();
  std::size_t failed_window_requests = 6;
  for (std::size_t i = 0; i < failed_window_requests; ++i) {
    EXPECT_EQ(client.get(target).status, 200);
  }
  EXPECT_EQ(client.active_replica(), 1U);
  EXPECT_EQ(client.failover_count(), 1U);
  EXPECT_EQ(client.failback_count(), 0U);

  // Primary recovers on the same port; within probe_every requests the
  // client health-probes it and fails back.
  primary->start_server(p_port);
  std::size_t requests_until_failback = 0;
  while (client.active_replica() != 0) {
    ASSERT_LT(requests_until_failback, 2 * options.probe_every)
        << "failback did not happen within N probe intervals";
    EXPECT_EQ(client.get(target).status, 200);
    ++requests_until_failback;
  }
  EXPECT_EQ(client.failback_count(), 1U);
  // Identical weights -> identical predictions on both sides of the story.
  EXPECT_EQ(common::Json::parse(first.body).at("predictions"),
            common::Json::parse(client.get(target).body).at("predictions"));

  // The consumer's /ei_status exposes the transport counters.
  auto status = consumer->call("GET", "/ei_status");
  ASSERT_EQ(status.status, 200);
  common::Json resilience =
      common::Json::parse(status.body).at("resilience");
  EXPECT_GE(resilience.at("failovers").as_number(), 1.0);
  EXPECT_GE(resilience.at("failbacks").as_number(), 1.0);
  EXPECT_GE(resilience.at("transport_errors").as_number(), 1.0);
  EXPECT_GE(resilience.at("attempts").as_number(), 8.0);

  primary->stop_server();
  backup->stop_server();
}

TEST(FailbackTest, KeepsLegacyFailoverSemantics) {
  // The rewrite preserves the original contract: application errors do not
  // failover, all-dead throws IoError, empty replica set is rejected.
  auto primary = make_replica();
  auto backup = make_replica();
  auto p_port = primary->start_server(0);
  auto b_port = backup->start_server(0);
  FailoverClient client({p_port, b_port}, fast_failover_options());

  EXPECT_EQ(client.get("/ei_algorithms/ghost/none?input=[1]").status, 404);
  EXPECT_EQ(client.failover_count(), 0U);

  primary->stop_server();
  backup->stop_server();
  EXPECT_THROW(client.get("/ei_status"), openei::IoError);
  EXPECT_THROW(FailoverClient({}), openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::core

namespace openei::collab {
namespace {

// Degradation: with the cloud circuit open, every request is served by the
// local fallback with zero caller-visible errors, and the degraded-serve
// counters are visible via /ei_status.
TEST(CloudEdgeDegradationTest, ServesLocallyWhileCloudIsDown) {
  common::Rng model_rng(77);
  nn::Model cloud_model = nn::zoo::make_mlp("cloud-det", 4, 2, {16}, model_rng);
  nn::Model edge_model = cloud_model.clone();  // "compressed" local twin

  auto cloud = std::make_unique<core::EdgeNode>(core::EdgeNodeConfig{
      hwsim::edge_server(), hwsim::openei_package(), 32});
  cloud->deploy_model("safety", "detection", cloud_model.clone(), 0.95);
  auto cloud_port = cloud->start_server(0);

  // The edge node whose /ei_status will report the degraded serving.
  core::EdgeNode edge(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 32});

  net::ResilientClient::Options options;
  options.deadline_s = 1.0;
  options.retry.max_attempts = 1;
  options.retry.initial_backoff_s = 0.001;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration_s = 30.0;  // stays open once tripped
  options.metrics = edge.resilience_metrics();
  ResilientCloudEdge serving(cloud_port, "/ei_algorithms/safety/detection",
                             edge_model.clone(), edge.package(), edge.device(),
                             options);

  auto healthy = serving.classify("[1,2,3,4]");
  EXPECT_EQ(healthy.served_by, "cloud");
  ASSERT_EQ(healthy.predictions.size(), 1U);

  cloud->stop_server();
  std::vector<std::size_t> degraded_predictions;
  for (int i = 0; i < 8; ++i) {
    auto outcome = serving.classify("[1,2,3,4]");  // must never throw
    EXPECT_EQ(outcome.served_by, "local_fallback");
    EXPECT_EQ(outcome.status, 200);
    degraded_predictions = outcome.predictions;
  }
  // Identical weights -> the degraded path answers exactly like the cloud.
  EXPECT_EQ(degraded_predictions, healthy.predictions);
  EXPECT_EQ(serving.cloud_served(), 1U);
  EXPECT_EQ(serving.degraded_served(), 8U);
  // After failure_threshold transport errors the circuit is open and serving
  // is breaker-fast (no connect attempts), still with zero errors.
  EXPECT_EQ(serving.cloud_circuit_state(), net::CircuitState::kOpen);

  auto status = edge.call("GET", "/ei_status");
  ASSERT_EQ(status.status, 200);
  common::Json resilience = common::Json::parse(status.body).at("resilience");
  EXPECT_EQ(resilience.at("degraded_serves").as_number(), 8.0);
  EXPECT_GE(resilience.at("breaker_opens").as_number(), 1.0);
  EXPECT_EQ(resilience.at("open_breakers").as_number(), 1.0);
  EXPECT_GE(resilience.at("breaker_rejections").as_number(), 1.0);
}

}  // namespace
}  // namespace openei::collab
