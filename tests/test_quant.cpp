// The int8 execution engine's regression suite (`ctest -L quant`): QuantParams
// edge cases, the int8 GEMM (exactness vs an integer reference, thread-count
// bit-identity, fused epilogues, legacy zero-point correction), quantized
// conv, activation calibration, the new/legacy serialized formats, the
// zero-alloc forward arena's bitwise equivalence with Model::forward, and the
// zero-allocation guarantee on steady-state InferenceSession calls.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "compress/quantize_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "runtime/arena.h"
#include "runtime/inference.h"
#include "tensor/quantize.h"

namespace openei {
namespace {

using common::Rng;
using tensor::PackedQuantMatrix;
using tensor::QuantizedTensor;
using tensor::QuantParams;
using tensor::Shape;
using tensor::Tensor;

/// Restores the previous thread count when a test scope ends.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : previous_(common::thread_count()) {
    common::set_thread_count(n);
  }
  ~ScopedThreads() { common::set_thread_count(previous_); }

 private:
  std::size_t previous_;
};

float dequant_one(std::int8_t q, const QuantParams& p) {
  return p.scale * static_cast<float>(static_cast<std::int32_t>(q) - p.zero_point);
}

// ---------------------------------------------------------------------------
// QuantParams::choose edge cases (satellite: constant tensors, straddling
// ranges, saturation round-trip).
// ---------------------------------------------------------------------------

TEST(QuantParamsEdge, ConstantPositiveTensorKeepsFiniteNonzeroScale) {
  QuantParams p = QuantParams::choose(5.0F, 5.0F);  // widened to [0, 5]
  EXPECT_TRUE(std::isfinite(p.scale));
  EXPECT_GT(p.scale, 0.0F);
  // 5.0 must survive the round trip to within half a step.
  float back = dequant_one(tensor::quantize_one(5.0F, p), p);
  EXPECT_NEAR(back, 5.0F, tensor::quantization_step_error(p));
}

TEST(QuantParamsEdge, AllZeroTensorQuantizesZeroExactly) {
  QuantParams p = QuantParams::choose(0.0F, 0.0F);
  EXPECT_EQ(p.scale, 1.0F);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_EQ(tensor::quantize_one(0.0F, p), 0);
  EXPECT_EQ(dequant_one(tensor::quantize_one(0.0F, p), p), 0.0F);
}

TEST(QuantParamsEdge, ConstantNegativeTensorStaysRepresentable) {
  QuantParams p = QuantParams::choose(-3.0F, -3.0F);  // widened to [-3, 0]
  EXPECT_GT(p.scale, 0.0F);
  float back = dequant_one(tensor::quantize_one(-3.0F, p), p);
  EXPECT_NEAR(back, -3.0F, tensor::quantization_step_error(p));
}

TEST(QuantParamsEdge, DenormalSpanFlooredAtSmallestNormal) {
  QuantParams p = QuantParams::choose(0.0F, 1e-44F);
  EXPECT_TRUE(std::isfinite(p.scale));
  EXPECT_GE(p.scale, std::numeric_limits<float>::min());
}

TEST(QuantParamsEdge, AsymmetricStraddlingRangeHasExactZeroPoint) {
  for (auto [lo, hi] : {std::pair<float, float>{-0.1F, 10.0F},
                        {-7.3F, 0.2F},
                        {-1e-3F, 1e3F},
                        {-100.0F, 1.0F}}) {
    QuantParams p = QuantParams::choose(lo, hi);
    // zero_point is an int8 value, and 0.0 must encode/decode exactly.
    EXPECT_GE(p.zero_point, -128);
    EXPECT_LE(p.zero_point, 127);
    std::int8_t q0 = tensor::quantize_one(0.0F, p);
    EXPECT_EQ(static_cast<std::int32_t>(q0), p.zero_point);
    EXPECT_EQ(dequant_one(q0, p), 0.0F);
  }
}

TEST(QuantParamsEdge, SaturationRoundTripClampsToInt8Range) {
  QuantParams p = QuantParams::choose(-1.0F, 1.0F);
  EXPECT_EQ(static_cast<std::int32_t>(tensor::quantize_one(1e6F, p)), 127);
  EXPECT_EQ(static_cast<std::int32_t>(tensor::quantize_one(-1e6F, p)), -128);
  // Saturated values decode to the range edges, not garbage.
  EXPECT_NEAR(dequant_one(tensor::quantize_one(1e6F, p), p), 1.0F,
              2.0F * tensor::quantization_step_error(p));
}

TEST(QuantParamsEdge, RejectsNonFiniteAndReversedRanges) {
  EXPECT_THROW(QuantParams::choose(std::numeric_limits<float>::quiet_NaN(), 1.0F),
               InvalidArgument);
  EXPECT_THROW(QuantParams::choose(0.0F, std::numeric_limits<float>::infinity()),
               InvalidArgument);
  EXPECT_THROW(QuantParams::choose(2.0F, 1.0F), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Packed weights.
// ---------------------------------------------------------------------------

TEST(PackedQuantMatrixTest, PerChannelScalesTrackRowMagnitudes) {
  Rng rng(7);
  Tensor w(Shape{3, 8});
  auto d = w.data();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      d[r * 8 + c] = rng.uniform_float(-1.0F, 1.0F) *
                     static_cast<float>(1 << (2 * r));  // rows span 1x,4x,16x
    }
  }
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, /*per_channel=*/true);
  ASSERT_EQ(packed.scales().size(), 3U);
  EXPECT_LT(packed.scales()[0], packed.scales()[1]);
  EXPECT_LT(packed.scales()[1], packed.scales()[2]);
  EXPECT_EQ(packed.weight_zero_point(), 0);
  // Symmetric quantization keeps every row within [-127, 127].
  for (std::int8_t v : packed.data()) EXPECT_GE(static_cast<int>(v), -127);
}

TEST(PackedQuantMatrixTest, AllZeroRowGetsUsableScale) {
  Tensor w(Shape{2, 4});
  auto d = w.data();
  for (std::size_t c = 0; c < 4; ++c) d[4 + c] = 0.5F;  // row 0 all zero
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, true);
  EXPECT_EQ(packed.scales()[0], 1.0F);
  Tensor back = packed.dequantize();
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(back.data()[c], 0.0F);
}

TEST(PackedQuantMatrixTest, RowSumsMatchData) {
  Rng rng(11);
  Tensor w = Tensor::random_uniform(Shape{5, 9}, rng, -2.0F, 2.0F);
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, true);
  for (std::size_t r = 0; r < 5; ++r) {
    std::int32_t sum = 0;
    for (std::size_t c = 0; c < 9; ++c) {
      sum += packed.data()[r * 9 + c];
    }
    EXPECT_EQ(packed.row_sums()[r], sum);
  }
}

TEST(PackedQuantMatrixTest, StorageIsInt8PlusScales) {
  Rng rng(3);
  Tensor w = Tensor::random_uniform(Shape{16, 32}, rng, -1.0F, 1.0F);
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, true);
  EXPECT_EQ(packed.storage_bytes(), 16U * 32U + 16U * sizeof(float));
}

// ---------------------------------------------------------------------------
// int8 GEMM.
// ---------------------------------------------------------------------------

/// Naive integer reference applying the exact epilogue arithmetic; qgemm must
/// match it bit-for-bit (same int math, same float expression order).
std::vector<float> qgemm_reference(const std::vector<std::int8_t>& a,
                                   std::size_t m, std::size_t k,
                                   const QuantParams& a_params,
                                   const PackedQuantMatrix& w,
                                   const float* bias, bool fuse_relu) {
  std::vector<float> out(m * w.rows());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t r = 0; r < w.rows(); ++r) {
      std::int64_t acc = 0;
      std::int64_t a_sum = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[i * k + p]) *
               static_cast<std::int32_t>(w.data()[r * k + p]);
        a_sum += a[i * k + p];
      }
      auto a_zp = static_cast<std::int64_t>(a_params.zero_point);
      auto w_zp = static_cast<std::int64_t>(w.weight_zero_point());
      std::int64_t corrected = acc - a_zp * w.row_sums()[r] - w_zp * a_sum +
                               a_zp * w_zp * static_cast<std::int64_t>(k);
      float v = a_params.scale * w.scales()[r] * static_cast<float>(corrected);
      if (bias != nullptr) v += bias[r];
      if (fuse_relu && v < 0.0F) v = 0.0F;
      out[i * w.rows() + r] = v;
    }
  }
  return out;
}

struct QgemmCase {
  std::size_t m, k, rows;
  bool per_channel;
};

class QgemmTest : public ::testing::TestWithParam<QgemmCase> {};

TEST_P(QgemmTest, MatchesIntegerReferenceExactly) {
  auto [m, k, rows, per_channel] = GetParam();
  Rng rng(13 + m + k + rows);
  Tensor aw = Tensor::random_uniform(Shape{m, k}, rng, -3.0F, 2.0F);
  Tensor w = Tensor::random_uniform(Shape{rows, k}, rng, -1.5F, 1.5F);
  Tensor bias = Tensor::random_uniform(Shape{rows}, rng, -0.5F, 0.5F);

  QuantParams a_params = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(m * k);
  tensor::quantize_to_int8(aw.data().data(), a.size(), a_params, a.data());
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, per_channel);

  std::vector<float> out(m * rows);
  tensor::qgemm(a.data(), m, k, a_params, packed, bias.data().data(),
                /*fuse_relu=*/false, out.data());
  std::vector<float> ref = qgemm_reference(a, m, k, a_params, packed,
                                           bias.data().data(), false);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref[i]) << i;
}

TEST_P(QgemmTest, BitIdenticalAcrossThreadCounts) {
  auto [m, k, rows, per_channel] = GetParam();
  Rng rng(29 + m);
  Tensor aw = Tensor::random_uniform(Shape{m, k}, rng, -2.0F, 2.0F);
  Tensor w = Tensor::random_uniform(Shape{rows, k}, rng, -1.0F, 1.0F);
  QuantParams a_params = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(m * k);
  tensor::quantize_to_int8(aw.data().data(), a.size(), a_params, a.data());
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, per_channel);

  std::vector<float> baseline(m * rows);
  {
    ScopedThreads threads(1);
    tensor::qgemm(a.data(), m, k, a_params, packed, nullptr, false,
                  baseline.data());
  }
  for (std::size_t n : {2U, 4U, 8U}) {
    ScopedThreads threads(n);
    std::vector<float> out(m * rows);
    tensor::qgemm(a.data(), m, k, a_params, packed, nullptr, false, out.data());
    EXPECT_EQ(std::memcmp(out.data(), baseline.data(),
                          out.size() * sizeof(float)),
              0)
        << "threads=" << n;
  }
}

TEST_P(QgemmTest, TransposedVariantBitIdentical) {
  auto [m, k, rows, per_channel] = GetParam();
  Rng rng(57 + m + rows);
  Tensor aw = Tensor::random_uniform(Shape{m, k}, rng, -2.5F, 2.0F);
  Tensor w = Tensor::random_uniform(Shape{rows, k}, rng, -1.2F, 1.2F);
  Tensor bias = Tensor::random_uniform(Shape{rows}, rng, -0.5F, 0.5F);
  QuantParams a_params = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(m * k);
  tensor::quantize_to_int8(aw.data().data(), a.size(), a_params, a.data());
  std::vector<std::int8_t> at(m * k);  // [k, m] transpose of a
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, per_channel);

  std::vector<float> ref(m * rows);
  tensor::qgemm(a.data(), m, k, a_params, packed, bias.data().data(),
                /*fuse_relu=*/true, ref.data());
  for (std::size_t n : {1U, 4U}) {
    ScopedThreads threads(n);
    std::vector<float> out(m * rows);
    tensor::qgemm_t(at.data(), m, k, a_params, packed, bias.data().data(),
                    /*fuse_relu=*/true, out.data());
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)),
              0)
        << "threads=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QgemmTest,
    ::testing::Values(QgemmCase{1, 16, 8, true},     // serial path
                      QgemmCase{1, 256, 512, true},  // m==1 parallel rows
                      QgemmCase{64, 128, 96, true},  // general parallel
                      QgemmCase{64, 128, 96, false},
                      QgemmCase{7, 33, 5, true}));  // odd sizes

TEST(Im2colQ8T, IsTransposeOfIm2colQ8) {
  // Covers stride 1 + padding (the conv-layer case) and a strided,
  // pad-free shape; both must agree with the [m, patch] gather elementwise.
  struct Case {
    std::size_t n, in_c, in_hw, kernel, stride, padding;
  };
  for (const Case& c : {Case{2, 3, 8, 3, 1, 1}, Case{1, 2, 9, 3, 2, 0},
                        Case{1, 1, 5, 5, 1, 2}}) {
    tensor::Conv2dSpec spec;
    spec.in_channels = c.in_c;
    spec.out_channels = 1;
    spec.kernel = c.kernel;
    spec.stride = c.stride;
    spec.padding = c.padding;
    Rng rng(61 + c.in_hw + c.stride);
    std::vector<std::int8_t> input(c.n * c.in_c * c.in_hw * c.in_hw);
    for (auto& v : input) {
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    const std::size_t out_hw = spec.out_size(c.in_hw);
    const std::size_t patch = c.in_c * c.kernel * c.kernel;
    const std::size_t m = c.n * out_hw * out_hw;
    const std::int8_t pad_value = -3;

    std::vector<std::int8_t> rows(m * patch);
    std::vector<std::int8_t> rows_t(m * patch);
    tensor::im2col_q8(input.data(), c.n, c.in_hw, c.in_hw, spec, pad_value,
                      rows.data());
    tensor::im2col_q8t(input.data(), c.n, c.in_hw, c.in_hw, spec, pad_value,
                       rows_t.data());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < patch; ++p) {
        ASSERT_EQ(rows_t[p * m + i], rows[i * patch + p])
            << "i=" << i << " p=" << p << " stride=" << c.stride;
      }
    }
  }
}

TEST(QgemmEpilogue, FusedReluMatchesSeparateRelu) {
  Rng rng(17);
  Tensor aw = Tensor::random_uniform(Shape{6, 24}, rng, -2.0F, 2.0F);
  Tensor w = Tensor::random_uniform(Shape{10, 24}, rng, -1.0F, 1.0F);
  Tensor bias = Tensor::random_uniform(Shape{10}, rng, -1.0F, 1.0F);
  QuantParams p = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(6 * 24);
  tensor::quantize_to_int8(aw.data().data(), a.size(), p, a.data());
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, true);

  std::vector<float> plain(6 * 10);
  std::vector<float> fused(6 * 10);
  tensor::qgemm(a.data(), 6, 24, p, packed, bias.data().data(), false,
                plain.data());
  tensor::qgemm(a.data(), 6, 24, p, packed, bias.data().data(), true,
                fused.data());
  bool saw_negative = false;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    saw_negative = saw_negative || plain[i] < 0.0F;
    EXPECT_EQ(fused[i], plain[i] < 0.0F ? 0.0F : plain[i]);
  }
  EXPECT_TRUE(saw_negative);  // the case exercised clamping
}

TEST(QgemmEpilogue, Int8OutputIsRequantizedFloatOutput) {
  Rng rng(19);
  Tensor aw = Tensor::random_uniform(Shape{4, 32}, rng, -1.0F, 1.0F);
  Tensor w = Tensor::random_uniform(Shape{12, 32}, rng, -1.0F, 1.0F);
  QuantParams p = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(4 * 32);
  tensor::quantize_to_int8(aw.data().data(), a.size(), p, a.data());
  PackedQuantMatrix packed = PackedQuantMatrix::pack_rows(w, true);

  std::vector<float> fout(4 * 12);
  tensor::qgemm(a.data(), 4, 32, p, packed, nullptr, false, fout.data());
  QuantParams out_params = QuantParams::choose(-8.0F, 8.0F);
  std::vector<std::int8_t> qout(4 * 12);
  tensor::qgemm(a.data(), 4, 32, p, packed, nullptr, false, out_params,
                qout.data());
  for (std::size_t i = 0; i < fout.size(); ++i) {
    EXPECT_EQ(qout[i], tensor::quantize_one(fout[i], out_params));
  }
}

TEST(QgemmEpilogue, LegacyWeightZeroPointIsCorrected) {
  // Route affine per-tensor weights (nonzero zero point) through the GEMM and
  // check the zero-point correction against the dequantized float product.
  Rng rng(23);
  Tensor w = Tensor::random_uniform(Shape{20, 15}, rng, 0.1F, 1.1F);  // skewed
  QuantizedTensor qw = QuantizedTensor::quantize(w);
  ASSERT_NE(qw.params().zero_point, 0);  // the point of this test
  PackedQuantMatrix packed = PackedQuantMatrix::from_per_tensor(qw);

  Tensor aw = Tensor::random_uniform(Shape{3, 20}, rng, -1.0F, 1.0F);
  QuantParams p = QuantParams::choose(aw.min(), aw.max());
  std::vector<std::int8_t> a(3 * 20);
  tensor::quantize_to_int8(aw.data().data(), a.size(), p, a.data());

  std::vector<float> out(3 * 15);
  tensor::qgemm(a.data(), 3, 20, p, packed, nullptr, false, out.data());

  // Reference: dequantize both operands and multiply in float.  The integer
  // path differs only by quantization error, not by any zero-point bias.
  Tensor wq = packed.dequantize();  // [rows=15? no: rows=out=15, cols=20]
  float tol = 20.0F * 3.0F *
              (tensor::quantization_step_error(p) +
               tensor::quantization_step_error(qw.params()));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t r = 0; r < 15; ++r) {
      float acc = 0.0F;
      for (std::size_t c = 0; c < 20; ++c) {
        acc += dequant_one(a[i * 20 + c], p) * wq.data()[r * 20 + c];
      }
      EXPECT_NEAR(out[i * 15 + r], acc, tol);
    }
  }
}

TEST(QgemmEpilogue, RejectsKBeyondInt32ExactBound) {
  std::vector<std::int8_t> a(1, 1);
  PackedQuantMatrix packed(1, 1, {1}, {1.0F}, 0, true);
  std::vector<float> out(1);
  // k mismatch with w.cols() trips the dimension check; the k-bound check
  // needs a matching oversized matrix.
  std::size_t big = (1ULL << 16) + 1;
  std::vector<std::int8_t> big_a(big, 0);
  PackedQuantMatrix big_w(1, big, std::vector<std::int8_t>(big, 0), {1.0F}, 0,
                          true);
  EXPECT_THROW(tensor::qgemm(big_a.data(), 1, big, QuantParams{}, big_w,
                             nullptr, false, out.data()),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Quantized layers.
// ---------------------------------------------------------------------------

TEST(QuantizedConv2dTest, TracksFloatConvWithinQuantizationError) {
  Rng rng(31);
  tensor::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.padding = 1;
  nn::Conv2d conv(spec, rng);
  auto qconv = nn::QuantizedConv2d::from_conv(conv);

  Tensor input = Tensor::random_uniform(Shape{2, 3, 8, 8}, rng, -1.0F, 1.0F);
  Tensor exact = conv.forward(input, false);
  Tensor approx = qconv->forward(input, false);
  ASSERT_EQ(approx.shape(), exact.shape());
  float worst = 0.0F;
  float scale = 0.0F;
  for (std::size_t i = 0; i < exact.elements(); ++i) {
    worst = std::max(worst, std::abs(approx.data()[i] - exact.data()[i]));
    scale = std::max(scale, std::abs(exact.data()[i]));
  }
  // int8 conv error stays a small fraction of the activation magnitude.
  EXPECT_LT(worst, 0.05F * std::max(scale, 1.0F));
}

TEST(QuantizedConv2dTest, PaddingGathersTheExactZeroEncoding) {
  // A padded quantized conv must equal the same conv run without padding on
  // an input embedded in an explicit zero border — bit for bit, because the
  // pad value is the activation zero point (the exact int8 encoding of 0.0).
  Rng rng(37);
  tensor::Conv2dSpec padded;
  padded.in_channels = 2;
  padded.out_channels = 4;
  padded.kernel = 3;
  padded.padding = 1;
  nn::Conv2d conv(padded, rng);
  auto qconv = nn::QuantizedConv2d::from_conv(conv);

  tensor::Conv2dSpec unpadded = padded;
  unpadded.padding = 0;
  nn::Conv2d conv0(unpadded, conv.weights(), conv.bias());
  auto qconv0 = nn::QuantizedConv2d::from_conv(conv0);

  Tensor input = Tensor::random_uniform(Shape{1, 2, 6, 6}, rng, -1.0F, 1.0F);
  Tensor embedded(Shape{1, 2, 8, 8});
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t y = 0; y < 6; ++y) {
      for (std::size_t x = 0; x < 6; ++x) {
        embedded.at4(0, c, y + 1, x + 1) = input.at4(0, c, y, x);
      }
    }
  }
  // Pin identical activation params so the dynamic ranges cannot differ.
  QuantParams p = QuantParams::choose(input.min(), input.max());
  qconv->set_input_params(p);
  qconv0->set_input_params(p);

  Tensor via_padding = qconv->forward(input, false);
  Tensor via_border = qconv0->forward(embedded, false);
  ASSERT_EQ(via_padding.elements(), via_border.elements());
  for (std::size_t i = 0; i < via_padding.elements(); ++i) {
    EXPECT_EQ(via_padding.data()[i], via_border.data()[i]) << i;
  }
}

TEST(QuantizedConv2dTest, BackwardThrowsAndClonePreservesCalibration) {
  Rng rng(41);
  tensor::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  nn::Conv2d conv(spec, rng);
  auto qconv = nn::QuantizedConv2d::from_conv(conv);
  qconv->set_input_params(QuantParams::choose(-1.0F, 1.0F));
  EXPECT_THROW(qconv->backward(Tensor(Shape{1, 2, 3, 3})), InvalidArgument);

  auto copy = qconv->clone();
  auto* qcopy = dynamic_cast<nn::QuantizedConv2d*>(copy.get());
  ASSERT_NE(qcopy, nullptr);
  ASSERT_TRUE(qcopy->input_params().has_value());
  EXPECT_EQ(qcopy->input_params()->scale, qconv->input_params()->scale);
  EXPECT_EQ(qcopy->input_params()->zero_point,
            qconv->input_params()->zero_point);
}

TEST(QuantizedDenseTest, ForwardUsesCachedPackOnceBuilt) {
  Rng rng(43);
  nn::Dense dense(24, 10, rng);
  auto qd = nn::QuantizedDense::from_dense(dense);
  Tensor input = Tensor::random_uniform(Shape{5, 24}, rng, -1.0F, 1.0F);
  Tensor exact = dense.forward(input, false);
  Tensor approx = qd->forward(input, false);
  float tol = 24.0F * 2.5F *
              (tensor::quantization_step_error(
                   qd->effective_input_params(input.data().data(),
                                              input.elements())) +
               qd->packed_weights().scales()[0]);
  for (std::size_t i = 0; i < exact.elements(); ++i) {
    EXPECT_NEAR(approx.data()[i], exact.data()[i], tol);
  }
  // The pack is per-channel symmetric: one scale per output row, zp 0.
  EXPECT_TRUE(qd->packed_weights().per_channel());
  EXPECT_EQ(qd->packed_weights().scales().size(), 10U);
  EXPECT_EQ(qd->packed_weights().weight_zero_point(), 0);
}

// ---------------------------------------------------------------------------
// Calibration.
// ---------------------------------------------------------------------------

TEST(CalibrationTest, ObserverTracksRunningRangeAndRejectsEmpty) {
  compress::MinMaxObserver observer;
  EXPECT_FALSE(observer.seen());
  EXPECT_THROW(observer.params(), InvalidArgument);
  Tensor a(Shape{2}, {0.5F, 2.0F});
  Tensor b(Shape{2}, {-1.0F, 1.0F});
  observer.observe(a);
  observer.observe(b);
  ASSERT_TRUE(observer.seen());
  QuantParams p = observer.params();
  // Covers [-1, 2]: both endpoints survive the round trip.
  EXPECT_NEAR(dequant_one(tensor::quantize_one(-1.0F, p), p), -1.0F,
              tensor::quantization_step_error(p));
  EXPECT_NEAR(dequant_one(tensor::quantize_one(2.0F, p), p), 2.0F,
              tensor::quantization_step_error(p));
}

TEST(CalibrationTest, CalibratedQuantizationPinsEveryLayerBoundary) {
  Rng rng(47);
  nn::Model model = nn::zoo::make_mini_vgg({3, 16, 4}, rng);
  Tensor calibration = Tensor::random_uniform(Shape{8, 3, 16, 16}, rng, -1.0F, 1.0F);
  compress::CompressedModel quantized =
      compress::quantize_int8(model, calibration);

  std::size_t calibrated = 0;
  for (std::size_t i = 0; i < quantized.model.layer_count(); ++i) {
    nn::Layer& layer = quantized.model.layer(i);
    if (auto* qd = dynamic_cast<nn::QuantizedDense*>(&layer)) {
      EXPECT_TRUE(qd->input_params().has_value()) << "layer " << i;
      ++calibrated;
    } else if (auto* qc = dynamic_cast<nn::QuantizedConv2d*>(&layer)) {
      EXPECT_TRUE(qc->input_params().has_value()) << "layer " << i;
      ++calibrated;
    }
  }
  EXPECT_GE(calibrated, 3U);  // vgg: conv stacks + dense head
}

TEST(CalibrationTest, CalibratedMlpAgreesWithFloatModel) {
  Rng rng(53);
  nn::Model model = nn::zoo::make_mlp("m", 24, 5, {48, 32}, rng);
  Tensor calibration = Tensor::random_uniform(Shape{32, 24}, rng, -1.0F, 1.0F);
  compress::CompressedModel quantized =
      compress::quantize_int8(model, calibration);

  Tensor probe = Tensor::random_uniform(Shape{256, 24}, rng, -1.0F, 1.0F);
  auto expected = model.predict(probe);
  auto actual = quantized.model.predict(probe);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    agree += expected[i] == actual[i] ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(expected.size()),
            0.95);
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

TEST(QuantSerializeTest, NewFormatRoundTripsBitExactly) {
  Rng rng(59);
  nn::Model model = nn::zoo::make_mini_vgg({3, 16, 4}, rng);
  Tensor calibration = Tensor::random_uniform(Shape{4, 3, 16, 16}, rng, -1.0F, 1.0F);
  nn::Model quantized =
      std::move(compress::quantize_int8(model, calibration).model);

  nn::Model restored = nn::load_model(nn::save_model(quantized));
  Tensor probe = Tensor::random_uniform(Shape{2, 3, 16, 16}, rng, -1.0F, 1.0F);
  Tensor a = quantized.forward(probe, false);
  Tensor b = restored.forward(probe, false);
  ASSERT_EQ(a.elements(), b.elements());
  for (std::size_t i = 0; i < a.elements(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << i;
  }
  EXPECT_EQ(quantized.storage_bytes(), restored.storage_bytes());
}

TEST(QuantSerializeTest, LegacyPerTensorFormatStillLoads) {
  // Pre-per-channel documents carry [in, out] int8 weights with one
  // scale/zero_point pair in the config; the reader must adopt the exact
  // int8 values via the per-tensor compatibility path.
  using common::Json;
  using common::JsonArray;
  using common::JsonObject;

  Rng rng(61);
  Tensor w = Tensor::random_uniform(Shape{4, 3}, rng, -1.0F, 1.0F);
  QuantizedTensor qw = QuantizedTensor::quantize(w);

  Json weights{JsonObject{}};
  JsonArray shape;
  shape.emplace_back(4);
  shape.emplace_back(3);
  weights.set("shape", Json(std::move(shape)));
  JsonArray values;
  for (std::int8_t v : qw.data()) values.emplace_back(static_cast<int>(v));
  weights.set("values", Json(std::move(values)));

  Json bias{JsonObject{}};
  JsonArray bias_shape;
  bias_shape.emplace_back(3);
  bias.set("shape", Json(std::move(bias_shape)));
  JsonArray bias_values;
  for (int i = 0; i < 3; ++i) bias_values.emplace_back(0.25 * i);
  bias.set("values", Json(std::move(bias_values)));

  Json cfg{JsonObject{}};
  cfg.set("in", 4);
  cfg.set("out", 3);
  cfg.set("scale", static_cast<double>(qw.params().scale));
  cfg.set("zero_point", qw.params().zero_point);

  Json layer{JsonObject{}};
  layer.set("type", "quantized_dense");
  layer.set("config", std::move(cfg));
  layer.set("weights", std::move(weights));
  layer.set("bias", std::move(bias));

  Json doc{JsonObject{}};
  doc.set("format", "openei-model-v1");
  doc.set("name", "legacy");
  JsonArray input_shape;
  input_shape.emplace_back(4);
  doc.set("input_shape", Json(std::move(input_shape)));
  JsonArray layers;
  layers.push_back(std::move(layer));
  doc.set("layers", Json(std::move(layers)));

  nn::Model model = nn::model_from_json(doc);
  ASSERT_EQ(model.layer_count(), 1U);
  auto* qd = dynamic_cast<nn::QuantizedDense*>(&model.layer(0));
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->in_features(), 4U);
  EXPECT_EQ(qd->out_features(), 3U);
  EXPECT_FALSE(qd->packed_weights().per_channel());
  EXPECT_EQ(qd->packed_weights().weight_zero_point(),
            qw.params().zero_point);

  // The adopted weights decode to the same float matrix the legacy affine
  // parameters describe.
  Tensor back = qd->packed_weights().dequantize();  // [out, in]
  Tensor reference = qw.dequantize();               // [in, out]
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(back.data()[r * 4 + c], reference.data()[c * 3 + r]);
    }
  }

  // Re-saving upgrades to the per-row-scales format and still round-trips.
  nn::Model again = nn::load_model(nn::save_model(model));
  Tensor probe = Tensor::random_uniform(Shape{2, 4}, rng, -1.0F, 1.0F);
  Tensor a = model.forward(probe, false);
  Tensor b = again.forward(probe, false);
  for (std::size_t i = 0; i < a.elements(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Forward arena: bitwise equivalence and the zero-allocation guarantee.
// ---------------------------------------------------------------------------

void expect_arena_matches_model(nn::Model& model, const Tensor& batch) {
  auto arena = runtime::ForwardArena::plan(model);
  ASSERT_NE(arena, nullptr) << model.name();
  Tensor expected = model.forward(batch, false);
  std::size_t rows = batch.shape().dim(0);
  const float* actual = arena->run(batch.data().data(), rows);
  ASSERT_EQ(expected.elements(), rows * arena->classes());
  for (std::size_t i = 0; i < expected.elements(); ++i) {
    ASSERT_EQ(actual[i], expected.data()[i]) << model.name() << " @" << i;
  }

  // predict matches Model::predict exactly (first maximum wins).
  auto expected_pred = model.predict(batch);
  std::vector<std::size_t> actual_pred(rows);
  arena->predict(batch.data().data(), rows, actual_pred.data());
  EXPECT_EQ(actual_pred, expected_pred);
}

TEST(ArenaTest, BitwiseEqualToModelForwardAcrossTheZoo) {
  for (std::size_t threads : {1U, 4U}) {
    ScopedThreads scope(threads);
    Rng rng(67);
    Tensor batch = Tensor::random_uniform(Shape{3, 3, 16, 16}, rng, -1.0F, 1.0F);
    for (const auto& entry : nn::zoo::image_catalog()) {
      Rng model_rng(71);
      nn::Model model = entry.build({3, 16, 4}, model_rng);
      expect_arena_matches_model(model, batch);
    }
  }
}

TEST(ArenaTest, BitwiseEqualForMlpAndQuantizedModels) {
  for (std::size_t threads : {1U, 4U}) {
    ScopedThreads scope(threads);
    Rng rng(73);
    nn::Model mlp = nn::zoo::make_mlp("m", 12, 4, {32, 16}, rng);
    Tensor batch = Tensor::random_uniform(Shape{5, 12}, rng, -1.0F, 1.0F);
    expect_arena_matches_model(mlp, batch);

    Tensor calibration = Tensor::random_uniform(Shape{16, 12}, rng, -1.0F, 1.0F);
    nn::Model qmlp =
        std::move(compress::quantize_int8(mlp, calibration).model);
    expect_arena_matches_model(qmlp, batch);

    Rng vgg_rng(79);
    nn::Model vgg = nn::zoo::make_mini_vgg({3, 16, 4}, vgg_rng);
    Tensor images = Tensor::random_uniform(Shape{2, 3, 16, 16}, rng, -1.0F, 1.0F);
    nn::Model qvgg = std::move(compress::quantize_int8(vgg).model);
    expect_arena_matches_model(qvgg, images);
  }
}

TEST(ArenaTest, StructuredOutputModelFallsBackToTensorPath) {
  Rng rng(83);
  tensor::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  nn::Model conv_only("conv_only", Shape{1, 8, 8});
  conv_only.add(std::make_unique<nn::Conv2d>(spec, rng));
  // Output is [2, 6, 6] — not a logit vector, so planning must decline.
  EXPECT_EQ(runtime::ForwardArena::plan(conv_only), nullptr);

  runtime::InferenceSession session(std::move(conv_only),
                                    hwsim::openei_package(),
                                    hwsim::raspberry_pi_4());
  EXPECT_FALSE(session.arena_active());
  // The Tensor path still serves structured-output forwards.
  Tensor batch = Tensor::random_uniform(Shape{1, 1, 8, 8}, rng, -1.0F, 1.0F);
  EXPECT_EQ(session.forward(batch).shape(), (Shape{1, 2, 6, 6}));
}

/// The zero-allocation regression (satellite): after the first call warms the
/// arena, run() and predict_batch() must not allocate any tensor memory.
void expect_zero_alloc_steady_state(nn::Model model, const Tensor& batch) {
  std::string name = model.name();
  runtime::InferenceSession session(std::move(model), hwsim::openei_package(),
                                    hwsim::raspberry_pi_4());
  ASSERT_TRUE(session.arena_active()) << name;

  auto first = session.run(batch);  // warms the arena to batch rows
  std::vector<std::size_t> expected = first.predictions;
  {
    tensor::AllocationTrackingScope scope;
    for (int repeat = 0; repeat < 3; ++repeat) {
      auto result = session.run(batch);
      EXPECT_EQ(result.predictions, expected) << name;
    }
    EXPECT_EQ(scope.stats().allocations, 0U) << name;
    EXPECT_EQ(scope.stats().allocated_bytes, 0U) << name;
  }

  std::vector<Tensor> requests;
  requests.push_back(batch);
  requests.push_back(batch);
  auto warm = session.predict_batch(requests);  // warms the fused staging
  {
    tensor::AllocationTrackingScope scope;
    auto results = session.predict_batch(requests);
    ASSERT_EQ(results.size(), 2U) << name;
    EXPECT_EQ(results[0].predictions, expected) << name;
    EXPECT_EQ(results[1].predictions, expected) << name;
    EXPECT_EQ(scope.stats().allocations, 0U) << name;
    EXPECT_EQ(scope.stats().allocated_bytes, 0U) << name;
  }
}

TEST(ZeroAllocTest, SteadyStateFloatSessionsAllocateNothing) {
  Rng rng(89);
  expect_zero_alloc_steady_state(nn::zoo::make_mlp("mlp", 12, 4, {32, 16}, rng),
                                 Tensor::random_uniform(Shape{4, 12}, rng,
                                                        -1.0F, 1.0F));
  Rng vgg_rng(97);
  expect_zero_alloc_steady_state(
      nn::zoo::make_mini_vgg({3, 16, 4}, vgg_rng),
      Tensor::random_uniform(Shape{2, 3, 16, 16}, rng, -1.0F, 1.0F));
}

TEST(ZeroAllocTest, SteadyStateInt8SessionsAllocateNothing) {
  Rng rng(101);
  nn::Model mlp = nn::zoo::make_mlp("mlp8", 12, 4, {32, 16}, rng);
  Tensor calibration = Tensor::random_uniform(Shape{16, 12}, rng, -1.0F, 1.0F);
  expect_zero_alloc_steady_state(
      std::move(compress::quantize_int8(mlp, calibration).model),
      Tensor::random_uniform(Shape{4, 12}, rng, -1.0F, 1.0F));

  Rng vgg_rng(103);
  nn::Model vgg = nn::zoo::make_mini_vgg({3, 16, 4}, vgg_rng);
  Tensor images = Tensor::random_uniform(Shape{8, 3, 16, 16}, rng, -1.0F, 1.0F);
  expect_zero_alloc_steady_state(
      std::move(compress::quantize_int8(vgg, images).model),
      Tensor::random_uniform(Shape{2, 3, 16, 16}, rng, -1.0F, 1.0F));
}

}  // namespace
}  // namespace openei
