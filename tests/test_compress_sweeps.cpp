// Parameterized sweeps over the compression suite — monotonicity and bound
// properties that must hold across whole parameter ranges, not just the
// point-checks in test_compress.cpp.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lowrank.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "compress/weight_sharing.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "tensor/quantize.h"

namespace openei::compress {
namespace {

using common::Rng;

/// Shared trained model (built once for the whole file).
nn::Model& trained_model() {
  static nn::Model model = [] {
    Rng rng(401);
    auto dataset = data::make_blobs(400, 16, 4, rng, 2.0F);
    nn::Model m = nn::zoo::make_mlp("sweep_model", 16, 4, {48, 24}, rng);
    nn::TrainOptions topt;
    topt.epochs = 20;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(m, dataset, topt);
    return m;
  }();
  return model;
}

class SparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SparsitySweep, StorageShrinksMonotonicallyWithSparsity) {
  float sparsity = static_cast<float>(GetParam()) / 100.0F;
  PruneOptions options;
  options.sparsity = sparsity;
  options.finetune_epochs = 0;
  auto pruned = magnitude_prune(trained_model(), options, nullptr);

  // Measured sparsity tracks the request.
  EXPECT_NEAR(weight_sparsity(pruned.model), sparsity, 0.02);

  // Storage strictly below the next-lower sparsity level's storage.
  if (GetParam() > 0) {
    PruneOptions lighter;
    lighter.sparsity = sparsity - 0.2F;
    lighter.finetune_epochs = 0;
    auto lighter_pruned = magnitude_prune(trained_model(), lighter, nullptr);
    EXPECT_LT(pruned.storage_bytes, lighter_pruned.storage_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, SparsitySweep,
                         ::testing::Values(0, 20, 40, 60, 80));

class ClusterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterSweep, ReconstructionErrorShrinksWithMoreClusters) {
  std::size_t clusters = GetParam();
  Rng rng(402);
  WeightShareOptions options;
  options.clusters = clusters;
  auto shared = kmeans_share_weights(trained_model(), options, rng);

  // Weight-space L2 distance to the original falls as k doubles.
  auto distance = [&](const CompressedModel& compressed) {
    double total = 0.0;
    auto original_params = trained_model().parameters();
    nn::Model copy = compressed.model.clone();
    auto compressed_params = copy.parameters();
    for (std::size_t i = 0; i < original_params.size(); ++i) {
      nn::Tensor diff = *original_params[i] - *compressed_params[i];
      total += static_cast<double>(diff.norm());
    }
    return total;
  };

  if (clusters > 2) {
    WeightShareOptions coarser;
    coarser.clusters = clusters / 2;
    Rng rng2(402);
    auto coarse = kmeans_share_weights(trained_model(), coarser, rng2);
    EXPECT_LE(distance(shared), distance(coarse) + 1e-6);
  }
  // Storage grows with the codebook but stays far below the original.
  EXPECT_LT(shared.storage_bytes, trained_model().storage_bytes());
}

INSTANTIATE_TEST_SUITE_P(Codebooks, ClusterSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, FlopsShrinkWithRankAndOutputsConvergeAtFullRank) {
  float fraction = static_cast<float>(GetParam()) / 100.0F;
  LowRankOptions options;
  options.rank_fraction = fraction;
  auto factored = lowrank_factorize(trained_model(), options);

  // Factoring a [in, out] layer at rank r costs 2r(in+out) FLOPs, which
  // only undercuts the original 2*in*out when r < in*out/(in+out) — about
  // half of min(in, out).  Assert savings where the math guarantees them.
  if (GetParam() <= 50) {
    EXPECT_LT(factored.model.flops_per_sample(),
              trained_model().flops_per_sample());
  }
  if (GetParam() == 100) {
    Rng rng(403);
    nn::Tensor probe = nn::Tensor::random_uniform(tensor::Shape{4, 16}, rng);
    nn::Model original = trained_model().clone();
    EXPECT_TRUE(factored.model.forward(probe, false)
                    .all_close(original.forward(probe, false), 5e-2F));
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, RankSweep,
                         ::testing::Values(10, 25, 50, 75, 100));

// Quantization keeps every zoo model's predictions close to its float self.
class ZooQuantizationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZooQuantizationSweep, QuantizedPredictionsMostlyAgree) {
  Rng rng(404);
  nn::zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  auto catalog = nn::zoo::image_catalog();
  ASSERT_LT(GetParam(), catalog.size());
  nn::Model model = catalog[GetParam()].build(spec, rng);
  auto quantized = quantize_int8(model);

  nn::Tensor probe = nn::Tensor::random_uniform(tensor::Shape{24, 2, 8, 8}, rng);
  auto float_preds = model.predict(probe);
  auto int8_preds = quantized.model.predict(probe);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < float_preds.size(); ++i) {
    if (float_preds[i] == int8_preds[i]) ++agree;
  }
  EXPECT_GE(agree * 10, float_preds.size() * 8)  // >= 80% agreement
      << catalog[GetParam()].name;
  EXPECT_LT(quantized.storage_bytes, model.storage_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, ZooQuantizationSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace openei::compress
