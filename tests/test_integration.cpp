// System-level integration tests: multi-node deployments over real loopback
// HTTP — the cloud pushing models to edges (Fig. 3 dataflow 2), edges
// sharing models peer-to-peer (Sec. II-C), the full Sec. III-E call chain
// across nodes, and failure injection (dead peers, oversized models,
// malformed deployments).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "core/edge_node.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "net/http.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"

namespace openei {
namespace {

using common::Json;
using common::Rng;

TEST(MultiNode, CloudPushesModelEdgeServesIt) {
  // "Cloud": trains the model.  "Edge": receives it over POST /ei_models.
  Rng rng(301);
  auto dataset = data::make_blobs(300, 8, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::Model model = nn::zoo::make_mlp("pushed_detector", 8, 3, {16}, rng);
  nn::TrainOptions topt;
  topt.epochs = 15;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(model, train, topt);
  double accuracy = nn::evaluate_accuracy(model, test);

  core::EdgeNode edge(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 64});
  std::uint16_t port = edge.start_server(0);

  // Cloud-side push over the wire.
  net::HttpClient cloud_client(port);
  auto push = cloud_client.post(
      "/ei_models?scenario=safety&algorithm=detection&accuracy=" +
          std::to_string(accuracy),
      nn::save_model(model));
  ASSERT_EQ(push.status, 201) << push.body;

  // Third-party developer calls the algorithm route.
  common::JsonArray row;
  for (std::size_t f = 0; f < 8; ++f) {
    row.emplace_back(static_cast<double>(test.features.at2(0, f)));
  }
  auto result = cloud_client.get(
      "/ei_algorithms/safety/detection?input=" +
      common::uri_encode(Json(common::JsonArray{Json(std::move(row))}).dump()));
  ASSERT_EQ(result.status, 200) << result.body;
  Json doc = Json::parse(result.body);
  EXPECT_EQ(doc.at("model").as_string(), "pushed_detector");
  edge.stop_server();
}

TEST(MultiNode, EdgeToEdgeModelPropagationChain) {
  // A -> B -> C: models propagate through peers without touching the cloud.
  Rng rng(302);
  core::EdgeNode a(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                        hwsim::openei_package(), 16});
  core::EdgeNode b(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                        hwsim::openei_package(), 16});
  core::EdgeNode c(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                        hwsim::openei_package(), 16});
  a.deploy_model("vehicles", "tracking",
                 nn::zoo::make_mlp("tracker_v1", 6, 2, {8}, rng), 0.83);
  auto port_a = a.start_server(0);
  b.fetch_model_from_peer(port_a, "tracker_v1");
  auto port_b = b.start_server(0);
  c.fetch_model_from_peer(port_b, "tracker_v1");

  ASSERT_TRUE(c.registry().contains("tracker_v1"));
  auto entry = c.registry().get("tracker_v1");
  EXPECT_EQ(entry->scenario, "vehicles");
  EXPECT_DOUBLE_EQ(entry->accuracy, 0.83);

  // All three nodes answer the same inference identically.
  std::string target = "/ei_algorithms/vehicles/tracking?input=[1,2,3,4,5,6]";
  Json pa = Json::parse(a.call("GET", target).body);
  Json pb = Json::parse(b.call("GET", target).body);
  Json pc = Json::parse(c.call("GET", target).body);
  EXPECT_EQ(pa.at("predictions"), pb.at("predictions"));
  EXPECT_EQ(pb.at("predictions"), pc.at("predictions"));

  a.stop_server();
  b.stop_server();
}

TEST(MultiNode, FetchFromDeadPeerThrowsIoError) {
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                           hwsim::openei_package(), 16});
  std::uint16_t dead_port;
  {
    core::EdgeNode ghost(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                              hwsim::openei_package(), 16});
    dead_port = ghost.start_server(0);
    ghost.stop_server();
  }
  EXPECT_THROW(node.fetch_model_from_peer(dead_port, "anything"),
               openei::IoError);
}

TEST(FailureInjection, DeployingOversizedModelIsRejectedAtCallTime) {
  // Deployment stores the model; the RAM check fires when an inference
  // session is created for it — the call returns a clean 500, the node
  // survives.
  Rng rng(303);
  core::EdgeNode tiny_node(core::EdgeNodeConfig{hwsim::arduino_class(),
                                                hwsim::openei_package(), 16});
  tiny_node.deploy_model("home", "monitor",
                         nn::zoo::make_mlp("huge", 64, 2, {512, 512}, rng), 0.9);
  auto response = tiny_node.call(
      "GET", "/ei_algorithms/home/monitor?input=" +
                 Json(common::JsonArray{Json(common::JsonArray(64, Json(0.0)))})
                     .dump());
  // The selector filters non-deployable entries -> clean constraint error.
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("error"), std::string::npos);
}

TEST(FailureInjection, MalformedModelPushRejected) {
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 16});
  auto bad_json = node.call("POST", "/ei_models?scenario=s&algorithm=a",
                            "{this is not json");
  EXPECT_EQ(bad_json.status, 400);
  auto bad_format = node.call("POST", "/ei_models?scenario=s&algorithm=a",
                              R"({"format":"bogus"})");
  EXPECT_NE(bad_format.status, 201);
  EXPECT_EQ(node.registry().size(), 0U);
}

TEST(FailureInjection, ServerSurvivesBurstOfBadRequests) {
  Rng rng(304);
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 16});
  node.deploy_model("safety", "detection",
                    nn::zoo::make_mlp("d", 4, 2, {4}, rng), 0.9);
  auto port = node.start_server(0);
  net::HttpClient client(port);

  for (int i = 0; i < 20; ++i) {
    client.get("/nonsense");
    client.get("/ei_algorithms/safety/detection");          // no input
    client.get("/ei_algorithms/safety/detection?input=[1]");  // wrong width
    client.get("/ei_data/realtime/ghost?timestamp=1");
  }
  // Still healthy.
  auto ok = client.get("/ei_algorithms/safety/detection?input=[1,2,3,4]");
  EXPECT_EQ(ok.status, 200);
  node.stop_server();
}

TEST(EndToEnd, FullScenarioAcrossCloudAndTwoEdges) {
  // The complete OpenEI story in one test:
  // 1. cloud trains two variants and pushes them to edge A over HTTP;
  // 2. edge A ingests camera data and serves detections (selector picks);
  // 3. edge B joins, pulls the small model from A, serves the same API;
  // 4. edge A retrains locally on drifted data (dataflow 3) and redeploys.
  Rng rng(305);
  auto dataset = data::make_blobs(600, 10, 3, rng, 2.0F, 1.2F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::TrainOptions topt;
  topt.epochs = 20;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;

  core::EdgeNode edge_a(core::EdgeNodeConfig{hwsim::jetson_tx2(),
                                             hwsim::openei_package(), 256});
  auto port_a = edge_a.start_server(0);
  net::HttpClient to_a(port_a);

  // 1. Cloud pushes.
  for (auto [name, hidden] : {std::pair<const char*, std::size_t>{"det_big", 48},
                              std::pair<const char*, std::size_t>{"det_small", 6}}) {
    nn::Model model = nn::zoo::make_mlp(name, 10, 3, {hidden}, rng);
    nn::fit(model, train, topt);
    double accuracy = nn::evaluate_accuracy(model, test);
    auto push = to_a.post("/ei_models?scenario=safety&algorithm=detection"
                          "&accuracy=" + std::to_string(accuracy),
                          nn::save_model(model));
    ASSERT_EQ(push.status, 201);
  }

  // 2. Edge A ingests and serves.
  common::JsonArray features;
  for (std::size_t f = 0; f < 10; ++f) {
    features.emplace_back(static_cast<double>(test.features.at2(0, f)));
  }
  edge_a.ingest("cam", 1.0, Json(std::move(features)));
  auto detect = to_a.get("/ei_algorithms/safety/detection?sensor=cam");
  ASSERT_EQ(detect.status, 200);
  // Accuracy-oriented default: the winner is whichever variant measured
  // best (both are near-ceiling on this workload, so don't pin the name).
  Json detect_doc = Json::parse(detect.body);
  std::string winner = detect_doc.at("model").as_string();
  EXPECT_TRUE(winner == "det_big" || winner == "det_small") << winner;
  EXPECT_EQ(detect_doc.at("predictions").as_array().size(), 1U);

  // 3. Edge B pulls the small variant and serves it too.
  core::EdgeNode edge_b(core::EdgeNodeConfig{hwsim::raspberry_pi_3(),
                                             hwsim::openei_package(), 256});
  edge_b.fetch_model_from_peer(port_a, "det_small");
  auto b_result = edge_b.call(
      "GET", "/ei_algorithms/safety/detection?input=" +
                 Json(common::JsonArray{Json(common::JsonArray(10, Json(0.5)))})
                     .dump());
  EXPECT_EQ(b_result.status, 200);

  // 4. Dataflow 3 on edge A: drifted local data, head retraining, redeploy.
  Rng drift_rng(306);
  auto local = data::apply_drift(dataset, drift_rng, 0.8F);
  Rng split_rng(307);
  auto [local_train, local_test] = data::train_test_split(local, 0.7, split_rng);
  auto big_entry = edge_a.registry().get("det_big");
  nn::Model big_model = big_entry->model.clone();
  double degraded = nn::evaluate_accuracy(big_model, local_test);
  auto personalized = runtime::retrain_head_locally(
      big_model, local_train, edge_a.package(), edge_a.device(), topt);
  double recovered = nn::evaluate_accuracy(personalized.model, local_test);
  EXPECT_GT(recovered, degraded + 0.2);
  personalized.model.set_name("det_big_personalized");
  edge_a.deploy_model("safety", "detection", std::move(personalized.model),
                      recovered);
  EXPECT_EQ(edge_a.registry().size(), 3U);

  edge_a.stop_server();
}

}  // namespace
}  // namespace openei
