// Tests for the conv low-rank extension (FactoredConv2d) and the Adam
// optimizer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lowrank.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "data/synthetic.h"
#include "nn/factored_conv.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace openei::nn {
namespace {

using common::Rng;
using tensor::Shape;

Conv2d make_test_conv(Rng& rng) {
  tensor::Conv2dSpec spec;
  spec.in_channels = 4;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.padding = 1;
  return Conv2d(spec, rng);
}

TEST(FactoredConvTest, FullRankReproducesOriginalExactly) {
  Rng rng(1);
  Conv2d conv = make_test_conv(rng);
  std::size_t full_rank = std::min<std::size_t>(8, 4 * 3 * 3);
  auto factored = factorize_conv(conv, full_rank);
  Tensor input = Tensor::random_uniform(Shape{2, 4, 6, 6}, rng);
  Tensor original = conv.forward(input, false);
  Tensor approx = factored->forward(input, false);
  EXPECT_TRUE(approx.all_close(original, 1e-2F));
}

TEST(FactoredConvTest, TruncationErrorDecreasesWithRank) {
  Rng rng(2);
  Conv2d conv = make_test_conv(rng);
  Tensor input = Tensor::random_uniform(Shape{2, 4, 6, 6}, rng);
  Tensor original = conv.forward(input, false);
  float previous = 1e30F;
  for (std::size_t rank : {1UL, 2UL, 4UL, 8UL}) {
    auto factored = factorize_conv(conv, rank);
    float err = (factored->forward(input, false) - original).norm();
    EXPECT_LE(err, previous + 1e-4F) << "rank " << rank;
    previous = err;
  }
}

TEST(FactoredConvTest, LowRankShrinksFlopsAndParams) {
  Rng rng(3);
  tensor::Conv2dSpec spec;
  spec.in_channels = 16;
  spec.out_channels = 32;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d conv(spec, rng);
  auto factored = factorize_conv(conv, 4);
  Shape sample{16, 8, 8};
  EXPECT_LT(factored->flops(sample), conv.flops(sample));
  EXPECT_LT(factored->param_count(), conv.param_count());
  EXPECT_EQ(factored->output_shape(sample), conv.output_shape(sample));
}

TEST(FactoredConvTest, RankBoundsValidated) {
  Rng rng(4);
  Conv2d conv = make_test_conv(rng);
  EXPECT_THROW(factorize_conv(conv, 0), openei::InvalidArgument);
  EXPECT_THROW(factorize_conv(conv, 9), openei::InvalidArgument);  // > min(8,36)
}

TEST(FactoredConvTest, IsTrainable) {
  // A model containing a factored conv trains end-to-end.
  Rng rng(5);
  auto dataset = data::make_images(160, 2, 8, 3, rng, 0.3F);
  Model model("factored_cnn", Shape{2, 8, 8});
  tensor::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d seed_conv(spec, rng);
  model.add(factorize_conv(seed_conv, 4));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(8 * 4 * 4, 3, rng));

  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.05F;
  options.sgd.momentum = 0.9F;
  auto history = fit(model, dataset, options);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss * 0.5F);
}

TEST(FactoredConvTest, SerializationRoundTrip) {
  Rng rng(6);
  Conv2d conv = make_test_conv(rng);
  Model model("m", Shape{4, 6, 6});
  model.add(factorize_conv(conv, 4));
  Tensor input = Tensor::random_uniform(Shape{1, 4, 6, 6}, rng);
  Tensor before = model.forward(input, false);
  Model loaded = load_model(save_model(model));
  EXPECT_TRUE(loaded.forward(input, false).all_close(before, 1e-4F));
  EXPECT_EQ(loaded.layer(0).type(), "factored_conv2d");
}

TEST(LowRankConvCompressor, FactorsConvLayersWhenEnabled) {
  Rng rng(7);
  nn::zoo::ImageSpec spec;
  spec.channels = 3;
  spec.size = 12;
  spec.classes = 4;
  Model cnn = nn::zoo::make_mini_vgg(spec, rng);

  compress::LowRankOptions options;
  options.rank_fraction = 0.5F;
  options.factor_convs = true;
  auto factored = compress::lowrank_factorize(cnn, options);

  std::size_t factored_convs = 0;
  for (std::size_t i = 0; i < factored.model.layer_count(); ++i) {
    if (factored.model.layer(i).type() == "factored_conv2d") ++factored_convs;
  }
  EXPECT_GT(factored_convs, 0U);
  EXPECT_LT(factored.model.flops_per_sample(), cnn.flops_per_sample());

  // At full rank the factored network reproduces the original (random
  // untrained weights have flat spectra, so partial-rank deviation is large
  // by construction; exactness at full rank is the correctness property).
  compress::LowRankOptions exact;
  exact.rank_fraction = 1.0F;
  exact.factor_convs = true;
  auto full_rank = compress::lowrank_factorize(cnn, exact);
  Tensor input = Tensor::random_uniform(Shape{1, 3, 12, 12}, rng);
  Tensor original = cnn.forward(input, false);
  Tensor reproduced = full_rank.model.forward(input, false);
  EXPECT_LT((reproduced - original).norm() / (original.norm() + 1e-6F), 0.05F);
}

TEST(AdamTest, ConvergesFasterThanPlainSgdOnBlobs) {
  Rng rng(8);
  auto dataset = data::make_blobs(300, 10, 3, rng);

  auto train_with = [&](bool use_adam) {
    Rng model_rng(9);
    Model model = zoo::make_mlp("m", 10, 3, {16}, model_rng);
    SoftmaxCrossEntropy loss_fn;
    SgdOptimizer sgd({.learning_rate = 0.01F});
    AdamOptimizer adam({.learning_rate = 0.01F});
    float last_loss = 0.0F;
    for (int epoch = 0; epoch < 8; ++epoch) {
      model.zero_gradients();
      Tensor logits = model.forward(dataset.features, true);
      auto loss = loss_fn.evaluate(logits, dataset.labels);
      model.backward(loss.grad);
      if (use_adam) {
        adam.step(model.parameters(), model.gradients());
      } else {
        sgd.step(model.parameters(), model.gradients());
      }
      last_loss = loss.loss;
    }
    return last_loss;
  };
  EXPECT_LT(train_with(true), train_with(false));
}

TEST(AdamTest, StepValidatesAndIsDeterministic) {
  EXPECT_THROW(AdamOptimizer({.learning_rate = 0.0F}), openei::InvalidArgument);
  EXPECT_THROW(AdamOptimizer({.learning_rate = 0.1F, .beta1 = 1.0F}),
               openei::InvalidArgument);

  Tensor p1(Shape{2}, {1.0F, -1.0F});
  Tensor p2 = p1;
  Tensor g(Shape{2}, {0.5F, 0.5F});
  AdamOptimizer a({.learning_rate = 0.1F});
  AdamOptimizer b({.learning_rate = 0.1F});
  a.step({&p1}, {&g});
  b.step({&p2}, {&g});
  EXPECT_EQ(p1, p2);
  // First Adam step with bias correction moves by ~lr in -sign(g).
  EXPECT_NEAR(p1[0], 1.0F - 0.1F, 1e-3F);
}

TEST(ZooTest, XceptionTrainsAndSerializes) {
  Rng rng(10);
  zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  Model model = zoo::make_mini_xception(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{2, 2, 8, 8}, rng);
  Tensor out = model.forward(input, true);
  EXPECT_EQ(out.shape(), Shape({2, 3}));
  model.backward(Tensor::ones(out.shape()));

  Model loaded = load_model(save_model(model));
  EXPECT_TRUE(loaded.forward(input, false)
                  .all_close(model.forward(input, false), 1e-4F));
}

}  // namespace
}  // namespace openei::nn
