// Tests for the EI algorithms (paper Sec. IV-A2): Bonsai-style tree,
// ProtoNN, FastGRNN — accuracy on synthetic workloads, kilobyte-scale model
// sizes, and API contracts.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "eialg/bonsai.h"
#include "eialg/classifier.h"
#include "eialg/fastgrnn.h"
#include "eialg/protonn.h"

namespace openei::eialg {
namespace {

using common::Rng;

TEST(BonsaiTest, LearnsBlobsAboveNinety) {
  Rng rng(1);
  auto dataset = data::make_blobs(600, 16, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  BonsaiOptions options;
  options.projection_dim = 8;
  options.max_depth = 5;
  BonsaiTree tree(options);
  tree.fit(train);
  EXPECT_GT(evaluate(tree, test), 0.9);
  EXPECT_GT(tree.node_count(), 1U);
  EXPECT_LE(tree.depth(), 6U);
}

TEST(BonsaiTest, ModelFitsKilobyteBudget) {
  Rng rng(2);
  auto dataset = data::make_blobs(300, 32, 4, rng);
  BonsaiOptions options;
  options.projection_dim = 6;
  options.max_depth = 4;
  BonsaiTree tree(options);
  tree.fit(dataset);
  // Bonsai's pitch: models in the low-kilobyte range for IoT devices.
  EXPECT_LT(tree.model_size_bytes(), 2048U);
  EXPECT_GT(tree.model_size_bytes(), 0U);
}

TEST(BonsaiTest, PredictBeforeFitThrows) {
  BonsaiTree tree(BonsaiOptions{});
  Rng rng(3);
  auto features = tensor::Tensor::random_uniform(tensor::Shape{2, 4}, rng);
  EXPECT_THROW(tree.predict(features), openei::InvalidArgument);
}

TEST(BonsaiTest, FeatureWidthMismatchThrows) {
  Rng rng(4);
  auto dataset = data::make_blobs(100, 8, 2, rng);
  BonsaiTree tree(BonsaiOptions{});
  tree.fit(dataset);
  auto wrong = tensor::Tensor::random_uniform(tensor::Shape{2, 9}, rng);
  EXPECT_THROW(tree.predict(wrong), openei::InvalidArgument);
}

TEST(BonsaiTest, DeeperTreesNeverReduceTrainAccuracy) {
  Rng rng(5);
  auto dataset = data::make_blobs(400, 10, 4, rng, 2.5F);
  double prev = 0.0;
  for (std::size_t depth : {1UL, 3UL, 6UL}) {
    BonsaiOptions options;
    options.max_depth = depth;
    options.seed = 11;  // same projection across depths
    BonsaiTree tree(options);
    tree.fit(dataset);
    double train_acc = evaluate(tree, dataset);
    EXPECT_GE(train_acc + 0.02, prev) << "depth " << depth;
    prev = train_acc;
  }
}

TEST(ProtoNnTest, LearnsBlobsAboveNinety) {
  Rng rng(6);
  auto dataset = data::make_blobs(600, 16, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  ProtoNnOptions options;
  options.projection_dim = 8;
  options.prototypes_per_class = 3;
  ProtoNn model(options);
  model.fit(train);
  EXPECT_GT(evaluate(model, test), 0.9);
  EXPECT_EQ(model.prototype_count(), 9U);
}

TEST(ProtoNnTest, RefinementImprovesOrMatchesInit) {
  Rng rng(7);
  auto dataset = data::make_blobs(500, 12, 4, rng, 2.0F, 1.5F);  // overlapping
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);

  ProtoNnOptions no_refine;
  no_refine.refine_epochs = 0;
  ProtoNn init_only(no_refine);
  init_only.fit(train);

  ProtoNnOptions refined_opts = no_refine;
  refined_opts.refine_epochs = 10;
  ProtoNn refined(refined_opts);
  refined.fit(train);

  EXPECT_GE(evaluate(refined, test) + 0.05, evaluate(init_only, test));
}

TEST(ProtoNnTest, ModelFitsKilobyteBudget) {
  Rng rng(8);
  auto dataset = data::make_blobs(200, 24, 3, rng);
  ProtoNnOptions options;
  options.projection_dim = 6;
  options.prototypes_per_class = 2;
  ProtoNn model(options);
  model.fit(dataset);
  EXPECT_LT(model.model_size_bytes(), 2048U);
}

TEST(ProtoNnTest, PredictBeforeFitThrows) {
  ProtoNn model(ProtoNnOptions{});
  Rng rng(9);
  auto features = tensor::Tensor::random_uniform(tensor::Shape{2, 4}, rng);
  EXPECT_THROW(model.predict(features), openei::InvalidArgument);
}

TEST(FastGrnnTest, LearnsSequencesAboveEighty) {
  Rng rng(10);
  FastGrnnOptions options;
  options.steps = 12;
  options.input_dims = 2;
  options.hidden = 12;
  options.epochs = 15;
  options.learning_rate = 0.1F;
  auto dataset =
      data::make_sequences(500, options.steps, options.input_dims, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  FastGrnn model(options);
  model.fit(train);
  EXPECT_GT(evaluate(model, test), 0.8);
}

TEST(FastGrnnTest, SharedWeightsHalveGruParameterCount) {
  FastGrnnOptions options;
  options.steps = 8;
  options.input_dims = 4;
  options.hidden = 16;
  Rng rng(11);
  auto dataset = data::make_sequences(120, 8, 4, 2, rng);
  FastGrnn model(options);
  model.fit(dataset);
  // FastGRNN: W [D,H] + U [H,H] + 2 biases + readout.  A GRU would carry
  // 3x (W + U).  Check the shared-weight count exactly.
  std::size_t expected = 4 * 16 + 16 * 16 + 16 + 16 + 16 * 2 + 2;
  EXPECT_EQ(model.param_count(), expected);
}

TEST(FastGrnnTest, RejectsWrongSequenceWidth) {
  FastGrnnOptions options;
  options.steps = 8;
  options.input_dims = 3;
  FastGrnn model(options);
  Rng rng(12);
  auto bad = data::make_sequences(50, 8, 2, 2, rng);  // 16 cols != 24
  EXPECT_THROW(model.fit(bad), openei::InvalidArgument);
}

TEST(FastGrnnTest, PredictBeforeFitThrows) {
  FastGrnn model(FastGrnnOptions{});
  Rng rng(13);
  auto features = tensor::Tensor::random_uniform(tensor::Shape{2, 48}, rng);
  EXPECT_THROW(model.predict(features), openei::InvalidArgument);
}

// Property: all three EI algorithms stay within MCU-class model budgets on
// the same workload while beating chance by a wide margin.
TEST(EiAlgorithmsProperty, AllFitTinyBudgetsOnTabularWorkload) {
  Rng rng(14);
  auto dataset = data::make_blobs(400, 20, 4, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);

  BonsaiTree bonsai{BonsaiOptions{}};
  bonsai.fit(train);
  ProtoNn protonn{ProtoNnOptions{}};
  protonn.fit(train);

  for (const EiClassifier* model :
       std::vector<const EiClassifier*>{&bonsai, &protonn}) {
    EXPECT_GT(evaluate(*model, test), 0.7) << model->name();
    EXPECT_LT(model->model_size_bytes(), 8192U) << model->name();
    EXPECT_GT(model->flops_per_sample(), 0U) << model->name();
  }
}

}  // namespace
}  // namespace openei::eialg
