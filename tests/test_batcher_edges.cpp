// MicroBatcher edge cases: strict zero-timeout batching, destruction racing
// live submitters, the single-request eager path, and agreement between the
// queue-wait trace attributes and the /ei_status batching counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "obs/trace.h"
#include "runtime/batcher.h"
#include "runtime/inference.h"

namespace openei::runtime {
namespace {

std::shared_ptr<InferenceSession> make_session(std::size_t features = 4,
                                               std::size_t classes = 3) {
  common::Rng rng(5);
  nn::Model model =
      nn::zoo::make_mlp("edge_model", features, classes, {8}, rng);
  return std::make_shared<InferenceSession>(
      std::move(model), hwsim::openei_package(), hwsim::raspberry_pi_4());
}

nn::Tensor make_rows(std::size_t rows, std::size_t features = 4,
                     float scale = 1.0F) {
  nn::Tensor batch{tensor::Shape{rows, features}};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t f = 0; f < features; ++f) {
      batch.at2(r, f) = scale * static_cast<float>(r * features + f) * 0.1F;
    }
  }
  return batch;
}

TEST(BatcherEdges, SingleRequestEagerPathCompletesImmediately) {
  auto session = make_session();
  MicroBatcher::Options options;  // eager_when_idle = true (service default)
  auto metrics = std::make_shared<BatcherMetrics>();
  MicroBatcher batcher(session, options, metrics);

  InferenceResult fused = batcher.submit(make_rows(1)).get();
  InferenceResult solo = session->run(make_rows(1));
  ASSERT_EQ(fused.predictions.size(), 1u);
  EXPECT_EQ(fused.predictions, solo.predictions);
  EXPECT_EQ(metrics->flushes.load(), 1u);
  EXPECT_EQ(metrics->requests.load(), 1u);
  // A lone eager request is not "fused" with anyone.
  EXPECT_EQ(metrics->fused_requests.load(), 0u);
}

TEST(BatcherEdges, ZeroTimeoutStrictModeStillFlushesEveryRequest) {
  // max_wait_s = 0 in strict (non-eager) mode must degrade to "flush as soon
  // as the flush thread wakes", not spin or deadlock on an already-expired
  // deadline.
  auto session = make_session();
  MicroBatcher::Options options;
  options.eager_when_idle = false;
  options.max_wait_s = 0.0;
  options.max_batch_rows = 64;
  MicroBatcher batcher(session, options);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(batcher.submit(make_rows(2)));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().predictions.size(), 2u);
  }
}

TEST(BatcherEdges, StrictModeWaitsForFillOrTimeout) {
  auto session = make_session();
  MicroBatcher::Options options;
  options.eager_when_idle = false;
  options.max_wait_s = 10.0;      // effectively "never" within this test
  options.max_batch_rows = 4;     // ...so only fill triggers the flush
  auto metrics = std::make_shared<BatcherMetrics>();
  MicroBatcher batcher(session, options, metrics);

  auto first = batcher.submit(make_rows(2));
  // The queue holds 2 of 4 rows; nothing may flush yet.
  EXPECT_EQ(first.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  auto second = batcher.submit(make_rows(2));  // fills the batch
  EXPECT_EQ(first.get().predictions.size(), 2u);
  EXPECT_EQ(second.get().predictions.size(), 2u);
  EXPECT_EQ(metrics->flushes.load(), 1u);       // one fused forward
  EXPECT_EQ(metrics->fused_requests.load(), 2u);
  EXPECT_EQ(metrics->max_fused_rows.load(), 4u);
}

TEST(BatcherEdges, FusedResultsAreBitIdenticalToSoloRuns) {
  auto session = make_session();
  MicroBatcher::Options options;
  options.eager_when_idle = false;
  options.max_wait_s = 10.0;
  options.max_batch_rows = 6;
  MicroBatcher batcher(session, options);

  auto a = batcher.submit(make_rows(3, 4, 1.0F));
  auto b = batcher.submit(make_rows(3, 4, -2.0F));
  InferenceResult fused_a = a.get();
  InferenceResult fused_b = b.get();
  EXPECT_EQ(fused_a.predictions, session->run(make_rows(3, 4, 1.0F)).predictions);
  EXPECT_EQ(fused_b.predictions, session->run(make_rows(3, 4, -2.0F)).predictions);
}

TEST(BatcherEdges, DestructionDrainsEverySubmittedRequest) {
  // Hammer: destroy the batcher the instant the submitters stop, with the
  // queue still full of never-awaited work.  The destructor contract is
  // "drain, then stop" — every future obtained before destruction must
  // complete with a value; none may hang or be abandoned.
  auto session = make_session();
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<InferenceResult>> futures;
    std::mutex futures_mutex;
    {
      MicroBatcher::Options options;
      options.max_batch_rows = 4;
      MicroBatcher batcher(session, options);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 25; ++i) {
            auto f = batcher.submit(make_rows(1));
            std::lock_guard<std::mutex> lock(futures_mutex);
            futures.push_back(std::move(f));
          }
        });
      }
      for (auto& t : submitters) t.join();
    }  // ~MicroBatcher runs with up to 100 queued, unawaited requests
    ASSERT_EQ(futures.size(), 100u);
    for (auto& f : futures) {
      EXPECT_EQ(f.get().predictions.size(), 1u);
    }
  }
}

TEST(BatcherEdges, ShapeErrorPoisonsOnlyItsFlush) {
  auto session = make_session();
  MicroBatcher::Options options;
  options.eager_when_idle = false;
  options.max_wait_s = 10.0;
  options.max_batch_rows = 2;
  MicroBatcher batcher(session, options);

  auto bad = batcher.submit(make_rows(1, /*features=*/7));  // wrong width
  auto good_same_flush = batcher.submit(make_rows(1));      // rides along
  EXPECT_THROW(bad.get(), Error);
  EXPECT_THROW(good_same_flush.get(), Error);  // shared flush, shared fate

  auto next_a = batcher.submit(make_rows(1));
  auto next_b = batcher.submit(make_rows(1));
  EXPECT_EQ(next_a.get().predictions.size(), 1u);  // batcher still serves
  EXPECT_EQ(next_b.get().predictions.size(), 1u);
}

TEST(BatcherEdges, SpanAttributesMatchStatusCounters) {
  // Drive traced requests through a coalescing EdgeNode, then cross-check
  // the ei.batch span attributes against the /ei_status batching counters:
  // the span's flush accounting and the metrics sink must tell one story.
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(),
                              hwsim::openei_package(), 64, {}};
  config.service.coalesce_inference = true;
  config.service.tracing.enabled = true;
  config.service.tracing.ring_capacity = 16;
  core::EdgeNode node(std::move(config));
  common::Rng rng(5);
  node.deploy_model("safety", "detection",
                    nn::zoo::make_mlp("detector", 4, 3, {8}, rng), 0.9);
  common::JsonArray features;
  for (std::size_t f = 0; f < 4; ++f) {
    features.emplace_back(0.5 * static_cast<double>(f));
  }
  node.ingest("cam", 1.0, common::Json(std::move(features)));

  constexpr int kRequests = 5;
  double spanned_flush_requests = 0.0;
  for (int i = 0; i < kRequests; ++i) {
    auto response = node.call(
        "GET", "/ei_algorithms/safety/detection?sensor=cam&timestamp=1");
    ASSERT_EQ(response.status, 200);
    std::string trace_id =
        common::Json::parse(response.body).at("trace_id").as_string();
    common::Json trace = common::Json::parse(
        node.call("GET", "/ei_trace/" + trace_id).body);
    // root -> ei.infer (3rd child) -> ei.batch (only child).
    const common::Json& infer = trace.at("root").at("children").as_array()[2];
    ASSERT_EQ(infer.at("name").as_string(), "ei.infer");
    const common::Json& batch = infer.at("children").as_array()[0];
    ASSERT_EQ(batch.at("name").as_string(), "ei.batch");
    const common::Json& attrs = batch.at("attributes");
    EXPECT_EQ(attrs.at("batch_rows").as_number(), 1.0);
    EXPECT_GE(attrs.at("queue_wait_us").as_number(), 0.0);
    // Serial requests never share a flush, so each span must report a
    // single-request flush of exactly its own rows.
    EXPECT_EQ(attrs.at("flush_requests").as_number(), 1.0);
    EXPECT_EQ(attrs.at("flush_rows").as_number(), 1.0);
    spanned_flush_requests += attrs.at("flush_requests").as_number();
  }

  common::Json status =
      common::Json::parse(node.call("GET", "/ei_status").body);
  const common::Json& batching = status.at("batching");
  EXPECT_TRUE(batching.at("coalescing").as_bool());
  // One flush per serial request; none fused; the largest fused batch is a
  // single row — in exact agreement with every span above.
  EXPECT_EQ(batching.at("flushes").as_number(),
            static_cast<double>(kRequests));
  EXPECT_EQ(batching.at("coalesced_requests").as_number(), 0.0);
  EXPECT_EQ(batching.at("max_fused_rows").as_number(), 1.0);
  EXPECT_EQ(spanned_flush_requests, static_cast<double>(kRequests));
}

}  // namespace
}  // namespace openei::runtime
