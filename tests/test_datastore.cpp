// Tests for the edge data store: ring buffers, realtime/history semantics,
// ordering invariants.
#include <gtest/gtest.h>

#include "datastore/timeseries.h"

namespace openei::datastore {
namespace {

using common::Json;

Record make_record(double t, double value) {
  return Record{t, Json(value)};
}

TEST(SensorStoreTest, AppendAndLatest) {
  SensorStore store;
  store.append("cam1", make_record(1.0, 10.0));
  store.append("cam1", make_record(2.0, 20.0));
  auto latest = store.latest("cam1");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->timestamp, 2.0);
  EXPECT_DOUBLE_EQ(latest->payload.as_number(), 20.0);
}

TEST(SensorStoreTest, RealtimeReturnsEarliestAtOrAfterTimestamp) {
  SensorStore store;
  for (double t : {1.0, 2.0, 3.0, 4.0}) store.append("s", make_record(t, t * 10));
  auto at = store.realtime("s", 2.5);
  ASSERT_TRUE(at.has_value());
  EXPECT_DOUBLE_EQ(at->timestamp, 3.0);
  auto exact = store.realtime("s", 2.0);
  EXPECT_DOUBLE_EQ(exact->timestamp, 2.0);
  EXPECT_FALSE(store.realtime("s", 9.0).has_value());
}

TEST(SensorStoreTest, HistoryRangeInclusive) {
  SensorStore store;
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0}) store.append("s", make_record(t, t));
  auto records = store.history("s", 2.0, 4.0);
  ASSERT_EQ(records.size(), 3U);
  EXPECT_DOUBLE_EQ(records.front().timestamp, 2.0);
  EXPECT_DOUBLE_EQ(records.back().timestamp, 4.0);
  EXPECT_TRUE(store.history("s", 10.0, 20.0).empty());
  EXPECT_THROW(store.history("s", 5.0, 1.0), openei::InvalidArgument);
}

TEST(SensorStoreTest, RejectsOutOfOrderAppends) {
  SensorStore store;
  store.append("s", make_record(5.0, 1.0));
  EXPECT_THROW(store.append("s", make_record(4.0, 1.0)), openei::InvalidArgument);
  // Equal timestamps are fine (burst of readings).
  EXPECT_NO_THROW(store.append("s", make_record(5.0, 2.0)));
}

TEST(SensorStoreTest, RingBufferEvictsOldest) {
  SensorStore store(/*capacity_per_sensor=*/3);
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0}) store.append("s", make_record(t, t));
  EXPECT_EQ(store.size("s"), 3U);
  // Oldest two evicted; realtime(1.0) now lands on t=3.
  EXPECT_DOUBLE_EQ(store.realtime("s", 1.0)->timestamp, 3.0);
}

TEST(SensorStoreTest, UnknownSensorThrowsKnownEmptyDoesNot) {
  SensorStore store;
  EXPECT_THROW(store.latest("ghost"), openei::NotFound);
  EXPECT_THROW(store.size("ghost"), openei::NotFound);
  store.register_sensor("declared");
  EXPECT_EQ(store.size("declared"), 0U);
  EXPECT_FALSE(store.latest("declared").has_value());
}

TEST(SensorStoreTest, SensorsListsRegisteredIds) {
  SensorStore store;
  store.register_sensor("b");
  store.append("a", make_record(1.0, 0.0));
  auto ids = store.sensors();
  ASSERT_EQ(ids.size(), 2U);
  EXPECT_EQ(ids[0], "a");
  EXPECT_EQ(ids[1], "b");
}

TEST(SensorStoreTest, StructuredPayloadsSurvive) {
  SensorStore store;
  Json frame = Json::parse(R"({"pixels":[1,2,3],"label":"person"})");
  store.append("cam", Record{1.0, frame});
  auto back = store.latest("cam");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload.at("label").as_string(), "person");
  EXPECT_EQ(back->payload.at("pixels").as_array().size(), 3U);
}

}  // namespace
}  // namespace openei::datastore
