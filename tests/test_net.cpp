// Tests for the networking substrate: HTTP parsing, URI targets, a live
// loopback server round-trip, and malformed-input handling.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "common/error.h"
#include "net/http.h"

namespace openei::net {
namespace {

TEST(ParseTargetTest, SplitsPathAndQuery) {
  std::string path;
  std::map<std::string, std::string> query;
  parse_target("/ei_algorithms/safety/detection?video=cam1&min_accuracy=0.9",
               path, query);
  EXPECT_EQ(path, "/ei_algorithms/safety/detection");
  EXPECT_EQ(query.at("video"), "cam1");
  EXPECT_EQ(query.at("min_accuracy"), "0.9");
}

TEST(ParseTargetTest, DecodesEscapes) {
  std::string path;
  std::map<std::string, std::string> query;
  parse_target("/data%20set?name=a%2Bb&flag", path, query);
  EXPECT_EQ(path, "/data set");
  EXPECT_EQ(query.at("name"), "a+b");
  EXPECT_EQ(query.at("flag"), "");
}

TEST(ParseRequestTest, FullRequest) {
  HttpRequest request = parse_request(
      "GET /ei_data/realtime/camera1?timestamp=5 HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "X-Custom: Value",
      "");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/ei_data/realtime/camera1");
  EXPECT_EQ(request.query.at("timestamp"), "5");
  EXPECT_EQ(request.headers.at("host"), "127.0.0.1");
  EXPECT_EQ(request.headers.at("x-custom"), "Value");
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("GARBAGE", ""), openei::ParseError);
  EXPECT_THROW(parse_request("GET /x", ""), openei::ParseError);
  EXPECT_THROW(parse_request("GET /x SPDY/3", ""), openei::ParseError);
  EXPECT_THROW(parse_request("GET /x HTTP/1.1\r\nBadHeaderNoColon", ""),
               openei::ParseError);
}

TEST(HttpServerTest, EchoRoundTrip) {
  HttpServer server(0, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = R"({"path":")" + request.path + R"(","method":")" +
                    request.method + R"(","body_len":)" +
                    std::to_string(request.body.size()) + "}";
    return response;
  });

  HttpClient client(server.port());
  HttpResponse get = client.get("/hello?x=1");
  EXPECT_EQ(get.status, 200);
  EXPECT_NE(get.body.find(R"("path":"/hello")"), std::string::npos);

  HttpResponse post = client.post("/submit", "0123456789");
  EXPECT_NE(post.body.find(R"("body_len":10)"), std::string::npos);
  EXPECT_NE(post.body.find(R"("method":"POST")"), std::string::npos);

  server.stop();
}

TEST(HttpServerTest, HandlerExceptionsBecomeStatusCodes) {
  HttpServer server(0, [](const HttpRequest& request) -> HttpResponse {
    if (request.path == "/missing") throw openei::NotFound("nope");
    if (request.path == "/bad") throw openei::ParseError("bad input");
    throw std::runtime_error("boom");
  });
  HttpClient client(server.port());
  EXPECT_EQ(client.get("/missing").status, 404);
  EXPECT_EQ(client.get("/bad").status, 400);
  EXPECT_EQ(client.get("/anything").status, 500);
  server.stop();
}

TEST(HttpServerTest, ConcurrentClients) {
  std::atomic<int> hits{0};
  HttpServer server(0, [&hits](const HttpRequest&) {
    ++hits;
    return HttpResponse::json(200, "{}");
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([port = server.port(), &ok] {
      HttpClient client(port);
      for (int j = 0; j < 5; ++j) {
        if (client.get("/ping").status == 200) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), 40);
  EXPECT_EQ(hits.load(), 40);
  server.stop();
}

TEST(HttpServerTest, MalformedRequestGets400NotCrash) {
  HttpServer server(0,
                    [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  TcpConnection connection = connect_local(server.port());
  connection.write_all("THIS IS NOT HTTP\r\n\r\n");
  char buffer[512];
  std::string reply;
  while (true) {
    std::size_t n = connection.read_some(buffer, sizeof(buffer));
    if (n == 0) break;
    reply.append(buffer, n);
  }
  EXPECT_NE(reply.find("400"), std::string::npos);
  // Server is still healthy afterwards.
  HttpClient client(server.port());
  EXPECT_EQ(client.get("/ok").status, 200);
  server.stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  auto server = std::make_unique<HttpServer>(
      0, [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  server->stop();
  server->stop();  // second stop must be a no-op
}

TEST(HttpFuzzTest, RandomGarbageNeverCrashesTheParser) {
  // Seeded pseudo-random byte soup: the parser must throw ParseError or
  // parse, never crash or loop.
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    std::size_t length = rng() % 200;
    std::string head;
    for (std::size_t i = 0; i < length; ++i) {
      head.push_back(static_cast<char>(rng() % 256));
    }
    try {
      parse_request(head, "");
    } catch (const openei::ParseError&) {
      // expected for almost all inputs
    }
  }
}

TEST(HttpFuzzTest, MutatedValidRequestsDegradeGracefully) {
  std::string valid =
      "GET /ei_algorithms/safety/detection?input=[1,2] HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\nContent-Length: 0";
  std::mt19937 rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    std::size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<char>(rng() % 256);
    try {
      HttpRequest request = parse_request(mutated, "");
      EXPECT_FALSE(request.method.empty());
    } catch (const openei::ParseError&) {
    }
  }
}

TEST(TcpTest, ConnectToClosedPortThrows) {
  // Grab an ephemeral port, close the listener, then connect.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  EXPECT_THROW(connect_local(dead_port), openei::IoError);
}

}  // namespace
}  // namespace openei::net
