// Tests for the linear-algebra substrate: Jacobi SVD and 1-D k-means.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace openei::tensor {
namespace {

using common::Rng;

TEST(SvdTest, ReconstructsFullRankExactly) {
  Rng rng(1);
  Tensor a = Tensor::random_uniform(Shape{6, 4}, rng, -2.0F, 2.0F);
  SvdResult result = svd(a);
  Tensor back = svd_reconstruct(result, 4);
  EXPECT_TRUE(back.all_close(a, 1e-3F));
}

TEST(SvdTest, WideMatrixHandledByTranspose) {
  Rng rng(2);
  Tensor a = Tensor::random_uniform(Shape{3, 8}, rng);
  SvdResult result = svd(a);
  EXPECT_EQ(result.u.shape(), Shape({3, 3}));
  EXPECT_EQ(result.v.shape(), Shape({8, 3}));
  EXPECT_TRUE(svd_reconstruct(result, 3).all_close(a, 1e-3F));
}

TEST(SvdTest, SingularValuesDescendingAndNonNegative) {
  Rng rng(3);
  Tensor a = Tensor::random_uniform(Shape{10, 5}, rng);
  SvdResult result = svd(a);
  for (std::size_t i = 0; i < result.singular_values.size(); ++i) {
    EXPECT_GE(result.singular_values[i], 0.0F);
    if (i > 0) {
      EXPECT_LE(result.singular_values[i], result.singular_values[i - 1] + 1e-5F);
    }
  }
}

TEST(SvdTest, ColumnsOfUAndVAreOrthonormal) {
  Rng rng(4);
  Tensor a = Tensor::random_uniform(Shape{7, 5}, rng);
  SvdResult result = svd(a);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) {
      double dot_u = 0.0;
      for (std::size_t r = 0; r < 7; ++r) {
        dot_u += static_cast<double>(result.u.at2(r, i)) * result.u.at2(r, j);
      }
      double dot_v = 0.0;
      for (std::size_t r = 0; r < 5; ++r) {
        dot_v += static_cast<double>(result.v.at2(r, i)) * result.v.at2(r, j);
      }
      double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(dot_u, expected, 1e-3) << "U columns " << i << "," << j;
      EXPECT_NEAR(dot_v, expected, 1e-3) << "V columns " << i << "," << j;
    }
  }
}

TEST(SvdTest, LowRankMatrixRecoveredAtItsRank) {
  // Build an exactly rank-2 matrix; truncating to rank 2 must be exact.
  Rng rng(5);
  Tensor u = Tensor::random_uniform(Shape{8, 2}, rng);
  Tensor v = Tensor::random_uniform(Shape{2, 6}, rng);
  Tensor a = matmul(u, v);
  SvdResult result = svd(a);
  EXPECT_TRUE(svd_reconstruct(result, 2).all_close(a, 1e-3F));
  // Remaining singular values are ~0.
  for (std::size_t i = 2; i < result.singular_values.size(); ++i) {
    EXPECT_LT(result.singular_values[i], 1e-3F);
  }
}

TEST(SvdTest, TruncationErrorDecreasesWithRank) {
  Rng rng(6);
  Tensor a = Tensor::random_uniform(Shape{10, 10}, rng);
  SvdResult result = svd(a);
  float prev_err = 1e30F;
  for (std::size_t rank : {2UL, 5UL, 8UL, 10UL}) {
    Tensor approx = svd_reconstruct(result, rank);
    float err = (approx - a).norm();
    EXPECT_LE(err, prev_err + 1e-4F) << "rank " << rank;
    prev_err = err;
  }
}

TEST(SvdTest, RejectsBadInputs) {
  EXPECT_THROW(svd(Tensor(Shape{4})), openei::InvalidArgument);
  Rng rng(7);
  Tensor a = Tensor::random_uniform(Shape{3, 3}, rng);
  SvdResult result = svd(a);
  EXPECT_THROW(svd_reconstruct(result, 0), openei::InvalidArgument);
  EXPECT_THROW(svd_reconstruct(result, 4), openei::InvalidArgument);
}

TEST(KmeansTest, SeparatesObviousClusters) {
  Rng rng(8);
  std::vector<float> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.normal_float(0.0F, 0.1F));
  for (int i = 0; i < 50; ++i) values.push_back(rng.normal_float(10.0F, 0.1F));
  auto result = kmeans_1d(values, 2, rng);
  ASSERT_EQ(result.centroids.size(), 2U);
  EXPECT_NEAR(result.centroids[0], 0.0F, 0.2F);
  EXPECT_NEAR(result.centroids[1], 10.0F, 0.2F);
  // Assignments split 50/50.
  std::size_t zeros = 0;
  for (std::size_t a : result.assignment) zeros += (a == 0) ? 1 : 0;
  EXPECT_EQ(zeros, 50U);
}

TEST(KmeansTest, CentroidsSortedAndAssignmentsConsistent) {
  Rng rng(9);
  std::vector<float> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.uniform_float(-5.0F, 5.0F));
  auto result = kmeans_1d(values, 8, rng);
  for (std::size_t j = 1; j < result.centroids.size(); ++j) {
    EXPECT_LE(result.centroids[j - 1], result.centroids[j]);
  }
  // Each value is assigned to its nearest centroid.
  for (std::size_t i = 0; i < values.size(); ++i) {
    float assigned = std::fabs(values[i] - result.centroids[result.assignment[i]]);
    for (float c : result.centroids) {
      EXPECT_LE(assigned, std::fabs(values[i] - c) + 1e-5F);
    }
  }
}

TEST(KmeansTest, KEqualsNPutsEachValueAlone) {
  Rng rng(10);
  std::vector<float> values = {1.0F, 5.0F, 9.0F};
  auto result = kmeans_1d(values, 3, rng);
  EXPECT_NEAR(result.centroids[0], 1.0F, 1e-4F);
  EXPECT_NEAR(result.centroids[2], 9.0F, 1e-4F);
}

TEST(KmeansTest, RejectsBadArguments) {
  Rng rng(11);
  EXPECT_THROW(kmeans_1d({}, 2, rng), openei::InvalidArgument);
  EXPECT_THROW(kmeans_1d({1.0F}, 2, rng), openei::InvalidArgument);
  EXPECT_THROW(kmeans_1d({1.0F, 2.0F}, 0, rng), openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::tensor
