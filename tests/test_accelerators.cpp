// Tests for the Sec. IV-D accelerator-aware cost model: sparse-skip and
// int8 traits change costs only for the models they apply to, preserving
// the orderings the paper cites.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "data/synthetic.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

namespace openei::hwsim {
namespace {

using common::Rng;

nn::Model dense_model() {
  // Large enough that compute/weight traffic dominate per-op dispatch —
  // the regime where accelerator traits matter (see bench_sec4d_hardware).
  Rng rng(1);
  return nn::zoo::make_mlp("dnn", 32, 4, {2048, 1024}, rng);
}

TEST(AcceleratorTest, SparseSkipHelpsOnlyPrunedModels) {
  nn::Model dense = dense_model();
  compress::PruneOptions options;
  options.sparsity = 0.9F;
  options.finetune_epochs = 0;
  auto pruned = compress::magnitude_prune(dense, options, nullptr);

  auto eie = eie_sparse_accelerator();
  double dense_latency =
      estimate_inference(dense, openei_package(), eie).latency_s;
  double pruned_latency =
      estimate_inference(pruned.model, openei_package(), eie).latency_s;
  // The sparse engine runs the pruned model much faster...
  EXPECT_LT(pruned_latency * 2, dense_latency);

  // ...while a dense device sees no compute benefit from unstructured zeros
  // (the simulated Pi has no sparse-skip datapath).
  auto pi = raspberry_pi_4();
  double pi_dense = estimate_inference(dense, openei_package(), pi).latency_s;
  double pi_pruned =
      estimate_inference(pruned.model, openei_package(), pi).latency_s;
  EXPECT_NEAR(pi_pruned, pi_dense, pi_dense * 0.05);
}

TEST(AcceleratorTest, Int8DatapathHelpsOnlyQuantizedModels) {
  nn::Model dense = dense_model();
  auto quantized = compress::quantize_int8(dense);

  auto fpga = edge_fpga();
  double float_latency =
      estimate_inference(dense, openei_package(), fpga).latency_s;
  double int8_latency =
      estimate_inference(quantized.model, openei_package(), fpga).latency_s;
  EXPECT_LT(int8_latency, float_latency);
}

TEST(AcceleratorTest, EieWinsEnergyEfficiencyOnPrunedGpuWinsLatencyOnDense) {
  // The Sec. IV-D orderings the bench reports, asserted.
  nn::Model dense = dense_model();
  compress::PruneOptions options;
  options.sparsity = 0.9F;
  options.finetune_epochs = 0;
  auto pruned = compress::magnitude_prune(dense, options, nullptr);

  auto gpu = edge_gpu();
  auto eie = eie_sparse_accelerator();

  // GPU: best raw latency on the dense float model.
  EXPECT_LT(estimate_inference(dense, openei_package(), gpu).latency_s,
            estimate_inference(dense, openei_package(), eie).latency_s);

  // EIE: far more inferences per joule on the pruned model.
  double eie_energy =
      estimate_inference(pruned.model, openei_package(), eie).energy_j;
  double gpu_energy =
      estimate_inference(pruned.model, openei_package(), gpu).energy_j;
  EXPECT_LT(eie_energy * 10, gpu_energy);
}

TEST(AcceleratorTest, TraitsDefaultOffForGeneralPurposeFleet) {
  for (const DeviceProfile& device : default_fleet()) {
    EXPECT_DOUBLE_EQ(device.sparse_mac_skip, 0.0) << device.name;
    EXPECT_DOUBLE_EQ(device.int8_throughput_multiplier, 1.0) << device.name;
  }
}

}  // namespace
}  // namespace openei::hwsim
