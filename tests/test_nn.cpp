// Unit + property tests for the NN engine: layer gradients (numerical
// checking), model mechanics, losses, optimizer, training convergence,
// serialization round-trips, and the model zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/factored_conv.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/residual.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace openei::nn {
namespace {

using common::Rng;
using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Numerical gradient checking harness.
//
// For scalar loss L = sum(forward(x) * seed), compares analytic gradients
// (backward) against central finite differences for both inputs and
// parameters.
// ---------------------------------------------------------------------------

float seeded_loss(Layer& layer, const Tensor& input, const Tensor& seed) {
  Tensor out = layer.forward(input, /*training=*/true);
  return (out * seed).sum();
}

void check_layer_gradients(Layer& layer, const Tensor& input, float tolerance,
                           float epsilon = 1e-2F) {
  Rng rng(99);
  Tensor probe_out = layer.forward(input, true);
  Tensor seed = Tensor::random_uniform(probe_out.shape(), rng, -1.0F, 1.0F);

  // Analytic gradients.
  layer.zero_gradients();
  layer.forward(input, true);
  Tensor grad_input = layer.backward(seed);

  // Numerical input gradient.
  Tensor x = input;
  for (std::size_t i = 0; i < x.elements(); ++i) {
    float original = x[i];
    x[i] = original + epsilon;
    float up = seeded_loss(layer, x, seed);
    x[i] = original - epsilon;
    float down = seeded_loss(layer, x, seed);
    x[i] = original;
    float numeric = (up - down) / (2.0F * epsilon);
    EXPECT_NEAR(grad_input[i], numeric, tolerance) << "input grad " << i;
  }

  // Numerical parameter gradients.  Re-run analytic pass because the
  // numerical probing above clobbered layer caches.
  layer.zero_gradients();
  layer.forward(input, true);
  layer.backward(seed);
  auto params = layer.parameters();
  std::vector<Tensor> analytic;
  for (Tensor* g : layer.gradients()) analytic.push_back(*g);

  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    for (std::size_t i = 0; i < param.elements(); ++i) {
      float original = param[i];
      param[i] = original + epsilon;
      float up = seeded_loss(layer, input, seed);
      param[i] = original - epsilon;
      float down = seeded_loss(layer, input, seed);
      param[i] = original;
      float numeric = (up - down) / (2.0F * epsilon);
      EXPECT_NEAR(analytic[p][i], numeric, tolerance)
          << "param " << p << " grad " << i;
    }
  }
}

TEST(GradientCheck, Dense) {
  Rng rng(1);
  Dense layer(5, 4, rng);
  Tensor input = Tensor::random_uniform(Shape{3, 5}, rng);
  check_layer_gradients(layer, input, 2e-2F);
}

TEST(GradientCheck, Conv2d) {
  Rng rng(2);
  tensor::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d layer(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{2, 2, 5, 5}, rng);
  check_layer_gradients(layer, input, 3e-2F);
}

TEST(GradientCheck, Conv2dStrided) {
  Rng rng(3);
  tensor::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  Conv2d layer(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{1, 1, 6, 6}, rng);
  check_layer_gradients(layer, input, 3e-2F);
}

TEST(GradientCheck, DepthwiseConv2d) {
  Rng rng(4);
  tensor::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.padding = 1;
  DepthwiseConv2d layer(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{2, 3, 4, 4}, rng);
  check_layer_gradients(layer, input, 3e-2F);
}

TEST(GradientCheck, ReluAwayFromKink) {
  Rng rng(5);
  Relu layer;
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor input = Tensor::random_uniform(Shape{2, 6}, rng, 0.5F, 2.0F);
  Tensor negatives = Tensor::random_uniform(Shape{2, 6}, rng, -2.0F, -0.5F);
  check_layer_gradients(layer, input, 1e-2F);
  check_layer_gradients(layer, negatives, 1e-2F);
}

TEST(GradientCheck, SigmoidAndTanh) {
  Rng rng(6);
  Tensor input = Tensor::random_uniform(Shape{2, 5}, rng, -1.5F, 1.5F);
  Sigmoid sigmoid;
  check_layer_gradients(sigmoid, input, 1e-2F);
  Tanh tanh_layer;
  check_layer_gradients(tanh_layer, input, 1e-2F);
}

TEST(GradientCheck, MaxPoolAndAvgPool) {
  Rng rng(7);
  // Max-pool is non-differentiable where window elements tie; build an input
  // whose values are all separated by >= 0.5 so the finite-difference probe
  // (eps = 1e-2) never crosses an argmax switch.
  Tensor input(Shape{1, 2, 4, 4});
  auto perm = rng.permutation(input.elements());
  for (std::size_t i = 0; i < input.elements(); ++i) {
    input[i] = 0.5F * static_cast<float>(perm[i]);
  }
  MaxPool2d mx(2);
  check_layer_gradients(mx, input, 1e-2F);
  AvgPool2d av(2);
  check_layer_gradients(av, input, 1e-2F);
}

TEST(GradientCheck, GlobalAvgPool) {
  Rng rng(8);
  Tensor input = Tensor::random_uniform(Shape{2, 3, 3, 3}, rng);
  GlobalAvgPool layer;
  check_layer_gradients(layer, input, 1e-2F);
}

TEST(GradientCheck, BatchNormRank2) {
  Rng rng(9);
  BatchNorm layer(4);
  Tensor input = Tensor::random_uniform(Shape{6, 4}, rng, -2.0F, 2.0F);
  check_layer_gradients(layer, input, 5e-2F);
}

TEST(GradientCheck, BatchNormRank4PerChannel) {
  Rng rng(91);
  BatchNorm layer(3);
  Tensor input = Tensor::random_uniform(Shape{4, 3, 3, 3}, rng, -2.0F, 2.0F);
  check_layer_gradients(layer, input, 6e-2F);
}

TEST(GradientCheck, FactoredDense) {
  Rng rng(92);
  Tensor u = Tensor::random_uniform(Shape{5, 3}, rng);
  Tensor v = Tensor::random_uniform(Shape{3, 4}, rng);
  Tensor bias = Tensor::random_uniform(Shape{4}, rng);
  FactoredDense layer(std::move(u), std::move(v), std::move(bias));
  Tensor input = Tensor::random_uniform(Shape{3, 5}, rng);
  check_layer_gradients(layer, input, 2e-2F);
}

TEST(GradientCheck, FactoredConv2d) {
  Rng rng(93);
  tensor::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d seed(spec, rng);
  auto layer = factorize_conv(seed, 3);
  Tensor input = Tensor::random_uniform(Shape{2, 2, 4, 4}, rng);
  check_layer_gradients(*layer, input, 3e-2F);
}

TEST(GradientCheck, ResidualBlockWithProjection) {
  Rng rng(10);
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<Dense>(4, 6, rng));
  body.push_back(std::make_unique<Tanh>());
  auto projection = std::make_unique<Dense>(4, 6, rng);
  ResidualBlock layer(std::move(body), std::move(projection));
  Tensor input = Tensor::random_uniform(Shape{3, 4}, rng);
  check_layer_gradients(layer, input, 2e-2F);
}

// ---------------------------------------------------------------------------
// Layer behaviour tests.
// ---------------------------------------------------------------------------

TEST(DenseTest, ShapeAndFlops) {
  Rng rng(11);
  Dense layer(8, 3, rng);
  EXPECT_EQ(layer.output_shape(Shape{8}), Shape({3}));
  EXPECT_EQ(layer.flops(Shape{8}), 2U * 8U * 3U);
  EXPECT_EQ(layer.param_count(), 8U * 3U + 3U);
  EXPECT_THROW(layer.output_shape(Shape{7}), openei::InvalidArgument);
}

TEST(DenseTest, ForwardMatchesManualMatmul) {
  Dense layer(Tensor(Shape{2, 2}, {1, 2, 3, 4}), Tensor(Shape{2}, {10, 20}));
  Tensor input(Shape{1, 2}, {1, 1});
  Tensor out = layer.forward(input, false);
  EXPECT_TRUE(out.all_close(Tensor(Shape{1, 2}, {14, 26})));
}

TEST(QuantizedDenseTest, ApproximatesDenseAndShrinksStorage) {
  Rng rng(12);
  Dense dense(16, 8, rng);
  auto quantized = QuantizedDense::from_dense(dense);
  Tensor input = Tensor::random_uniform(Shape{4, 16}, rng, -1.0F, 1.0F);
  Tensor exact = dense.forward(input, false);
  Tensor approx = quantized->forward(input, false);
  for (std::size_t i = 0; i < exact.elements(); ++i) {
    EXPECT_NEAR(approx[i], exact[i], 0.35F);
  }
  EXPECT_LT(quantized->storage_bytes(), dense.param_count() * sizeof(float) / 2);
  EXPECT_THROW(quantized->forward(input, true), openei::InvalidArgument);
  EXPECT_THROW(quantized->backward(input), openei::InvalidArgument);
}

TEST(DropoutTest, InferenceIsIdentityTrainingScales) {
  Rng rng(13);
  Dropout layer(0.5F, 77);
  Tensor input = Tensor::ones(Shape{1, 1000});
  EXPECT_EQ(layer.forward(input, false), input);
  Tensor out = layer.forward(input, true);
  // Kept units are scaled by 1/keep = 2; mean stays near 1.
  EXPECT_NEAR(out.mean(), 1.0F, 0.15F);
  std::size_t zeros = out.count_near_zero();
  EXPECT_GT(zeros, 350U);
  EXPECT_LT(zeros, 650U);
}

TEST(DropoutTest, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0F, 1), openei::InvalidArgument);
  EXPECT_THROW(Dropout(-0.1F, 1), openei::InvalidArgument);
}

TEST(BatchNormTest, NormalizesBatchInTraining) {
  Rng rng(14);
  BatchNorm layer(3);
  Tensor input = Tensor::random_uniform(Shape{64, 3}, rng, 5.0F, 9.0F);
  Tensor out = layer.forward(input, true);
  // Per-feature mean ~0, variance ~1 (gamma=1, beta=0 at init).
  for (std::size_t f = 0; f < 3; ++f) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < 64; ++i) mean += out.at2(i, f);
    mean /= 64.0;
    for (std::size_t i = 0; i < 64; ++i) {
      var += (out.at2(i, f) - mean) * (out.at2(i, f) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  Rng rng(15);
  BatchNorm layer(2, /*momentum=*/0.0F);  // running stats = last batch stats
  Tensor batch = Tensor::random_uniform(Shape{32, 2}, rng, -1.0F, 3.0F);
  layer.forward(batch, true);
  Tensor train_out = layer.forward(batch, true);
  Tensor infer_out = layer.forward(batch, false);
  EXPECT_TRUE(infer_out.all_close(train_out, 5e-2F));
}

TEST(ResidualTest, IdentityShortcutAddsInput) {
  // Body that outputs zeros -> residual output == input.
  auto zero_dense =
      std::make_unique<Dense>(Tensor(Shape{3, 3}), Tensor(Shape{3}));
  std::vector<LayerPtr> body;
  body.push_back(std::move(zero_dense));
  ResidualBlock block(std::move(body), nullptr);
  Rng rng(16);
  Tensor input = Tensor::random_uniform(Shape{2, 3}, rng);
  EXPECT_TRUE(block.forward(input, false).all_close(input));
}

TEST(ResidualTest, ShapeMismatchWithoutProjectionThrows) {
  std::vector<LayerPtr> body;
  Rng rng(17);
  body.push_back(std::make_unique<Dense>(3, 5, rng));
  ResidualBlock block(std::move(body), nullptr);
  Tensor input = Tensor::random_uniform(Shape{2, 3}, rng);
  EXPECT_THROW(block.forward(input, false), openei::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Model mechanics.
// ---------------------------------------------------------------------------

Model tiny_classifier(Rng& rng) {
  Model model("tiny", Shape{4});
  model.add(std::make_unique<Dense>(4, 8, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dense>(8, 3, rng));
  return model;
}

TEST(ModelTest, AddValidatesShapes) {
  Rng rng(18);
  Model model("m", Shape{4});
  model.add(std::make_unique<Dense>(4, 8, rng));
  EXPECT_THROW(model.add(std::make_unique<Dense>(9, 2, rng)),
               openei::InvalidArgument);
}

TEST(ModelTest, IntrospectionCounts) {
  Rng rng(19);
  Model model = tiny_classifier(rng);
  EXPECT_EQ(model.param_count(), 4U * 8U + 8U + 8U * 3U + 3U);
  EXPECT_EQ(model.flops_per_sample(), 2U * 4U * 8U + 8U + 2U * 8U * 3U);
  EXPECT_EQ(model.output_shape(), Shape({3}));
  EXPECT_EQ(model.storage_bytes(), model.param_count() * 4U);
}

TEST(ModelTest, PrefixSuffixSplitMatchesFullForward) {
  Rng rng(20);
  Model model = tiny_classifier(rng);
  Tensor input = Tensor::random_uniform(Shape{5, 4}, rng);
  Tensor full = model.forward(input, false);
  for (std::size_t k = 0; k <= model.layer_count(); ++k) {
    Tensor split = model.forward_suffix(model.forward_prefix(input, k), k);
    EXPECT_TRUE(split.all_close(full)) << "split at " << k;
  }
}

TEST(ModelTest, CloneIsDeepAndIndependent) {
  Rng rng(21);
  Model model = tiny_classifier(rng);
  Model copy = model.clone();
  Tensor input = Tensor::random_uniform(Shape{2, 4}, rng);
  Tensor before = copy.forward(input, false);
  // Mutate original weights; copy must be unaffected.
  *model.parameters()[0] *= 0.0F;
  Tensor after = copy.forward(input, false);
  EXPECT_TRUE(before.all_close(after));
}

TEST(ModelTest, ReplaceLayerChecksShapes) {
  Rng rng(22);
  Model model = tiny_classifier(rng);
  model.replace_layer(0, std::make_unique<Dense>(4, 8, rng));  // ok
  EXPECT_THROW(model.replace_layer(0, std::make_unique<Dense>(4, 9, rng)),
               openei::InvalidArgument);
  EXPECT_THROW(model.replace_layer(10, std::make_unique<Relu>()),
               openei::InvalidArgument);
}

TEST(ModelTest, SummaryListsEveryLayerAndTotals) {
  Rng rng(94);
  Model model = tiny_classifier(rng);
  std::string summary = model.summary();
  EXPECT_NE(summary.find("dense"), std::string::npos);
  EXPECT_NE(summary.find("relu"), std::string::npos);
  EXPECT_NE(summary.find(std::to_string(model.param_count())),
            std::string::npos);
  EXPECT_NE(summary.find("tiny"), std::string::npos);
}

TEST(ModelTest, PredictReturnsArgmaxRows) {
  Model model("fixed", Shape{2});
  model.add(std::make_unique<Dense>(Tensor(Shape{2, 2}, {1, 0, 0, 1}),
                                    Tensor(Shape{2})));
  Tensor input(Shape{2, 2}, {3, 1, 0, 5});
  auto preds = model.predict(input);
  ASSERT_EQ(preds.size(), 2U);
  EXPECT_EQ(preds[0], 0U);
  EXPECT_EQ(preds[1], 1U);
}

// ---------------------------------------------------------------------------
// Losses and optimizer.
// ---------------------------------------------------------------------------

TEST(LossTest, CrossEntropyPerfectPredictionNearZero) {
  Tensor logits(Shape{1, 3}, {20.0F, 0.0F, 0.0F});
  SoftmaxCrossEntropy loss_fn;
  auto result = loss_fn.evaluate(logits, {0});
  EXPECT_LT(result.loss, 1e-4F);
}

TEST(LossTest, CrossEntropyGradMatchesNumerical) {
  Rng rng(23);
  Tensor logits = Tensor::random_uniform(Shape{4, 3}, rng, -2.0F, 2.0F);
  std::vector<std::size_t> labels = {0, 2, 1, 2};
  SoftmaxCrossEntropy loss_fn;
  auto result = loss_fn.evaluate(logits, labels);
  float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.elements(); ++i) {
    Tensor up = logits;
    up[i] += eps;
    Tensor down = logits;
    down[i] -= eps;
    float numeric =
        (loss_fn.evaluate(up, labels).loss - loss_fn.evaluate(down, labels).loss) /
        (2.0F * eps);
    EXPECT_NEAR(result.grad[i], numeric, 1e-3F);
  }
}

TEST(LossTest, SoftTargetGradMatchesNumerical) {
  Rng rng(24);
  Tensor logits = Tensor::random_uniform(Shape{3, 4}, rng, -1.0F, 1.0F);
  Tensor targets = tensor::softmax_rows(Tensor::random_uniform(Shape{3, 4}, rng));
  SoftTargetLoss loss_fn(2.0F);
  auto result = loss_fn.evaluate(logits, targets);
  float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.elements(); ++i) {
    Tensor up = logits;
    up[i] += eps;
    Tensor down = logits;
    down[i] -= eps;
    float numeric = (loss_fn.evaluate(up, targets).loss -
                     loss_fn.evaluate(down, targets).loss) /
                    (2.0F * eps);
    EXPECT_NEAR(result.grad[i], numeric, 1e-3F);
  }
}

TEST(LossTest, MseZeroAtTarget) {
  Tensor x(Shape{2, 2}, {1, 2, 3, 4});
  MeanSquaredError mse;
  EXPECT_FLOAT_EQ(mse.evaluate(x, x).loss, 0.0F);
}

TEST(OptimizerTest, PlainSgdStep) {
  Tensor p(Shape{2}, {1.0F, 2.0F});
  Tensor g(Shape{2}, {0.5F, -0.5F});
  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step({&p}, {&g});
  EXPECT_TRUE(p.all_close(Tensor(Shape{2}, {0.95F, 2.05F})));
}

TEST(OptimizerTest, MomentumAccumulates) {
  Tensor p(Shape{1}, {0.0F});
  Tensor g(Shape{1}, {1.0F});
  SgdOptimizer opt({.learning_rate = 1.0F, .momentum = 0.5F});
  opt.step({&p}, {&g});  // v=1, p=-1
  opt.step({&p}, {&g});  // v=1.5, p=-2.5
  EXPECT_NEAR(p[0], -2.5F, 1e-6F);
}

TEST(OptimizerTest, WeightDecayPullsTowardZero) {
  Tensor p(Shape{1}, {10.0F});
  Tensor g(Shape{1}, {0.0F});
  SgdOptimizer opt({.learning_rate = 0.1F, .weight_decay = 0.1F});
  opt.step({&p}, {&g});
  EXPECT_LT(p[0], 10.0F);
}

TEST(OptimizerTest, RejectsBadOptions) {
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.0F}), openei::InvalidArgument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1F, .momentum = 1.0F}),
               openei::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Training end-to-end.
// ---------------------------------------------------------------------------

TEST(TrainTest, MlpLearnsBlobs) {
  Rng rng(25);
  auto dataset = data::make_blobs(400, 8, 3, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  Model model = zoo::make_mlp("mlp", 8, 3, {16}, rng);
  TrainOptions options;
  options.epochs = 30;
  options.batch_size = 32;
  options.sgd.learning_rate = 0.05F;
  options.sgd.momentum = 0.9F;
  auto history = fit(model, train, options);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(evaluate_accuracy(model, test), 0.9);
}

TEST(TrainTest, FrozenParametersDoNotMove) {
  Rng rng(26);
  auto dataset = data::make_blobs(100, 4, 2, rng);
  Model model = zoo::make_mlp("mlp", 4, 2, {8}, rng);
  Tensor frozen_before = *model.parameters()[0];
  TrainOptions options;
  options.epochs = 3;
  options.frozen_parameters = {0, 1};  // first dense layer
  auto history = fit(model, dataset, options);
  EXPECT_TRUE(frozen_before.all_close(*model.parameters()[0]));
}

TEST(TrainTest, SmallCnnLearnsImages) {
  Rng rng(27);
  auto dataset = data::make_images(240, 1, 8, 3, rng, 0.3F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  Model model("cnn", Shape{1, 8, 8});
  tensor::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 6;
  spec.kernel = 3;
  spec.padding = 1;
  model.add(std::make_unique<Conv2d>(spec, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(6 * 4 * 4, 3, rng));
  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.05F;
  options.sgd.momentum = 0.9F;
  fit(model, train, options);
  EXPECT_GT(evaluate_accuracy(model, test), 0.85);
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

TEST(SerializeTest, MlpRoundTripPreservesOutputs) {
  Rng rng(28);
  Model model = zoo::make_mlp("mlp", 6, 3, {10, 5}, rng);
  Tensor input = Tensor::random_uniform(Shape{4, 6}, rng);
  Tensor before = model.forward(input, false);
  Model loaded = load_model(save_model(model));
  EXPECT_EQ(loaded.name(), "mlp");
  EXPECT_TRUE(loaded.forward(input, false).all_close(before, 1e-5F));
}

class ZooSerializeRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZooSerializeRoundTrip, OutputsPreserved) {
  Rng rng(29);
  auto catalog = zoo::image_catalog();
  ASSERT_LT(GetParam(), catalog.size());
  zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  Model model = catalog[GetParam()].build(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{2, 2, 8, 8}, rng);
  Tensor before = model.forward(input, false);
  Model loaded = load_model(save_model(model));
  EXPECT_TRUE(loaded.forward(input, false).all_close(before, 1e-4F))
      << catalog[GetParam()].name;
  EXPECT_EQ(loaded.param_count(), model.param_count());
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, ZooSerializeRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(SerializeTest, RejectsUnknownFormatAndType) {
  EXPECT_THROW(load_model("{\"format\":\"bogus\"}"), openei::Error);
  EXPECT_THROW(
      load_model(R"({"format":"openei-model-v1","name":"x","input_shape":[2],)"
                 R"("layers":[{"type":"warp_drive","config":{}}]})"),
      openei::ParseError);
}

// ---------------------------------------------------------------------------
// Zoo sanity.
// ---------------------------------------------------------------------------

TEST(ZooTest, CatalogModelsHaveDistinctCostProfiles) {
  Rng rng(30);
  zoo::ImageSpec spec;
  spec.channels = 3;
  spec.size = 16;
  spec.classes = 4;
  auto catalog = zoo::image_catalog();
  ASSERT_EQ(catalog.size(), 7U);

  std::size_t alexnet_params = 0;
  std::size_t squeezenet_params = 0;
  std::size_t mobilenet_flops = 0;
  std::size_t vgg_flops = 0;
  for (const auto& entry : catalog) {
    Model model = entry.build(spec, rng);
    EXPECT_EQ(model.output_shape(), Shape({4})) << entry.name;
    EXPECT_GT(model.param_count(), 0U) << entry.name;
    if (entry.name == "mini_alexnet") alexnet_params = model.param_count();
    if (entry.name == "mini_squeezenet") squeezenet_params = model.param_count();
    if (entry.name == "mini_mobilenet") mobilenet_flops = model.flops_per_sample();
    if (entry.name == "mini_vgg") vgg_flops = model.flops_per_sample();
  }
  // Architectural signatures: SqueezeNet is far smaller than AlexNet;
  // MobileNet does far fewer FLOPs than VGG.
  EXPECT_LT(squeezenet_params * 3, alexnet_params);
  EXPECT_LT(mobilenet_flops * 3, vgg_flops);
}

TEST(ZooTest, MobileNetWidthMultiplierShrinksModel) {
  Rng rng(31);
  zoo::ImageSpec spec;
  Model full = zoo::make_mini_mobilenet(spec, rng, 1.0F);
  Model half = zoo::make_mini_mobilenet(spec, rng, 0.5F);
  EXPECT_LT(half.param_count(), full.param_count());
  EXPECT_LT(half.flops_per_sample(), full.flops_per_sample());
}

TEST(ZooTest, ResnetForwardBackwardRuns) {
  Rng rng(32);
  zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  Model model = zoo::make_mini_resnet(spec, rng);
  Tensor input = Tensor::random_uniform(Shape{2, 2, 8, 8}, rng);
  Tensor out = model.forward(input, true);
  EXPECT_EQ(out.shape(), Shape({2, 3}));
  model.backward(Tensor::ones(out.shape()));  // must not throw
}

}  // namespace
}  // namespace openei::nn
