// Unit + concurrency tests for the observability layer: obs::Tracer span
// trees with deterministic seeded ids, the bounded trace ring, the atomic
// log-spaced obs::Histogram, the MetricsRegistry's Prometheus exposition,
// and the tensor allocation-tracking hook.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace openei {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::Span;
using obs::TraceRecord;
using obs::Tracer;

Tracer::Options enabled_tracer(std::uint64_t seed = 7,
                               std::size_t capacity = 128) {
  Tracer::Options options;
  options.enabled = true;
  options.seed = seed;
  options.ring_capacity = capacity;
  return options;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundsAreStrictlyIncreasing) {
  Histogram h(1e-6, 2.0, 25);
  const auto& bounds = h.upper_bounds();
  ASSERT_EQ(bounds.size(), 25u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsHistogram, RecordsIntoCorrectBuckets) {
  Histogram h(1.0, 10.0, 3);  // bounds 1, 10, 100, then +Inf
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (inclusive upper bound)
  h.record(5.0);    // <= 10
  h.record(99.0);   // <= 100
  h.record(5000.0); // overflow
  auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 99.0 + 5000.0);
}

TEST(ObsHistogram, QuantilesAreMonotoneAndBracketed) {
  Histogram h(1e-3, 2.0, 20);
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  auto snap = h.snapshot();
  double p50 = snap.quantile(0.50);
  double p95 = snap.quantile(0.95);
  double p99 = snap.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // True p50 is ~0.5; log buckets are coarse, so only sanity-bracket it.
  EXPECT_GT(p50, 0.25);
  EXPECT_LT(p50, 1.1);
  EXPECT_EQ(snap.quantile(0.0), snap.quantile(0.0));  // no NaN
}

TEST(ObsHistogram, EmptyHistogramQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsHistogram, MergeMatchesSequentialRecording) {
  Histogram a(1e-6, 2.0, 25);
  Histogram b(1e-6, 2.0, 25);
  Histogram combined(1e-6, 2.0, 25);
  for (int i = 1; i <= 100; ++i) {
    double v = i * 1e-5;
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge_from(b);
  auto merged = a.snapshot();
  auto expected = combined.snapshot();
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_NEAR(merged.sum, expected.sum, 1e-9);
}

TEST(ObsHistogram, MergeRejectsMismatchedLayouts) {
  Histogram a(1e-6, 2.0, 25);
  Histogram b(1e-6, 2.0, 10);
  EXPECT_THROW(a.merge_from(b), InvalidArgument);
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  // Hammer one shared histogram from parallel_for lanes AND merge per-thread
  // shards into it concurrently; every observation must be accounted for.
  Histogram shared(1e-6, 2.0, 25);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      Histogram local(1e-6, 2.0, 25);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        double v = static_cast<double>((t * kPerThread + i) % 977 + 1) * 1e-5;
        if (i % 2 == 0) {
          shared.record(v);
        } else {
          local.record(v);
        }
      }
      shared.merge_from(local);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared.count(), kThreads * kPerThread);
  auto snap = shared.snapshot();
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(ObsHistogram, ParallelForHammering) {
  // The project's own parallel_for is the fan-out the /ei_metrics histograms
  // see in production (parallel kernels recording from pool threads).
  Histogram h(1e-6, 2.0, 25);
  constexpr std::size_t kItems = 20000;
  common::parallel_for(0, kItems, [&h](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      h.record(static_cast<double>(i % 1009 + 1) * 1e-6);
    }
  });
  EXPECT_EQ(h.count(), kItems);
}

// ---------------------------------------------------------------------------
// Tracer / Span
// ---------------------------------------------------------------------------

TEST(ObsTracer, DisabledTracerProducesNothing) {
  Tracer tracer;  // default options: disabled
  EXPECT_FALSE(tracer.enabled());
  Span root = tracer.begin_trace("request");
  EXPECT_FALSE(root.active());
  EXPECT_EQ(root.id(), 0u);
  EXPECT_EQ(root.trace_id(), 0u);
  Span child = root.child("stage");
  EXPECT_FALSE(child.active());
  child.set_attribute("k", 1.0);  // all no-ops
  child.finish();
  root.finish();
  EXPECT_EQ(tracer.completed_traces(), 0u);
  EXPECT_TRUE(tracer.recent_trace_ids().empty());
}

TEST(ObsTracer, DeterministicIdsUnderFixedSeed) {
  auto run = [](std::uint64_t seed) {
    Tracer tracer(enabled_tracer(seed));
    std::vector<std::uint64_t> ids;
    for (int t = 0; t < 3; ++t) {
      Span root = tracer.begin_trace("request");
      ids.push_back(root.trace_id());
      ids.push_back(root.id());
      Span child = root.child("stage");
      ids.push_back(child.id());
    }
    return ids;
  };
  EXPECT_EQ(run(7), run(7));       // same seed, same order -> same ids
  EXPECT_NE(run(7), run(8));       // different seed -> different ids
}

TEST(ObsTracer, SpanTreeShapeAndAttributes) {
  Tracer tracer(enabled_tracer());
  std::uint64_t trace_id = 0;
  {
    Span root = tracer.begin_trace("request");
    trace_id = root.trace_id();
    root.set_attribute("path", std::string("/x"));
    Span first = root.child("first");
    first.set_attribute("rows", 4.0);
    first.finish();
    Span second = root.child("second");
    Span grandchild = second.child("inner");
  }
  ASSERT_EQ(tracer.completed_traces(), 1u);
  auto record = tracer.find(trace_id);
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->spans.size(), 4u);
  const auto& root_span = record->root();
  EXPECT_EQ(root_span.name, "request");
  EXPECT_EQ(root_span.parent_id, 0u);
  ASSERT_NE(root_span.find_attribute("path"), nullptr);
  EXPECT_EQ(root_span.find_attribute("path")->text, "/x");

  auto top_children = record->children_of(root_span.id);
  ASSERT_EQ(top_children.size(), 2u);
  EXPECT_EQ(top_children[0]->name, "first");
  EXPECT_EQ(top_children[1]->name, "second");
  ASSERT_NE(top_children[0]->find_attribute("rows"), nullptr);
  EXPECT_DOUBLE_EQ(top_children[0]->find_attribute("rows")->number, 4.0);

  auto inner = record->children_of(top_children[1]->id);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0]->name, "inner");

  // Every span finished with a non-negative duration; the root brackets all.
  for (const auto& span : record->spans) {
    EXPECT_GE(span.end_ns, span.start_ns);
    EXPECT_GE(span.start_ns, root_span.start_ns);
    EXPECT_LE(span.end_ns, root_span.end_ns);
  }
}

TEST(ObsTracer, RingEvictsOldestTraces) {
  Tracer tracer(enabled_tracer(7, /*capacity=*/4));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    Span root = tracer.begin_trace("t");
    ids.push_back(root.trace_id());
  }
  EXPECT_EQ(tracer.completed_traces(), 10u);
  auto retained = tracer.recent_trace_ids();
  ASSERT_EQ(retained.size(), 4u);
  // Oldest six evicted, newest four retained in commit order.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(tracer.find(ids[i]).has_value());
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_TRUE(tracer.find(ids[i]).has_value());
    EXPECT_EQ(retained[i - 6], ids[i]);
  }
}

TEST(ObsTracer, EarlyFinishIsIdempotentAndMoveSafe) {
  Tracer tracer(enabled_tracer());
  Span root = tracer.begin_trace("r");
  std::uint64_t trace_id = root.trace_id();
  Span child = root.child("c");
  child.finish();
  child.finish();              // idempotent
  Span moved = std::move(root);
  EXPECT_FALSE(root.active());  // NOLINT(bugprone-use-after-move): asserting moved-from state
  EXPECT_TRUE(moved.active());
  moved.finish();
  ASSERT_TRUE(tracer.find(trace_id).has_value());
  EXPECT_EQ(tracer.find(trace_id)->spans.size(), 2u);
}

TEST(ObsTracer, ConcurrentChildSpansAreAllRecorded) {
  // Children of one trace opened/closed from many threads (the batcher flush
  // thread does exactly this) — every span lands, ids stay unique.
  Tracer tracer(enabled_tracer());
  std::uint64_t trace_id = 0;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 200;
  {
    Span root = tracer.begin_trace("r");
    trace_id = root.trace_id();
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&root, t] {
        for (std::size_t i = 0; i < kSpansPerThread; ++i) {
          Span span = root.child("worker");
          span.set_attribute("thread", static_cast<double>(t));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  auto record = tracer.find(trace_id);
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->spans.size(), 1 + kThreads * kSpansPerThread);
  std::set<std::uint64_t> ids;
  for (const auto& span : record->spans) ids.insert(span.id);
  EXPECT_EQ(ids.size(), record->spans.size());
}

TEST(ObsTracer, ConcurrentTracesCommitIndependently) {
  Tracer tracer(enabled_tracer(7, 1024));
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kTracesPerThread = 50;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::size_t i = 0; i < kTracesPerThread; ++i) {
        Span root = tracer.begin_trace("r");
        Span child = root.child("c");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.completed_traces(), kThreads * kTracesPerThread);
  EXPECT_EQ(tracer.recent_trace_ids().size(), kThreads * kTracesPerThread);
}

// ---------------------------------------------------------------------------
// MetricsRegistry / Prometheus exposition
// ---------------------------------------------------------------------------

TEST(ObsMetricsRegistry, CountersGaugesAndSeriesIdentity) {
  MetricsRegistry registry;
  auto& requests = registry.counter("requests_total", {{"route", "a"}});
  requests.increment();
  requests.add(2.0);
  // Same (name, labels) -> same series.
  EXPECT_EQ(&registry.counter("requests_total", {{"route", "a"}}), &requests);
  EXPECT_DOUBLE_EQ(requests.value(), 3.0);
  registry.gauge("ram_bytes").set(123.0);
  EXPECT_DOUBLE_EQ(registry.gauge("ram_bytes").value(), 123.0);
}

TEST(ObsMetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x_total");
  EXPECT_THROW(registry.gauge("x_total"), InvalidArgument);
}

TEST(ObsMetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.describe("latency_seconds", "request latency");
  auto& h = registry.histogram("latency_seconds", {{"model", "m1"}}, 1e-3,
                               10.0, 3);
  h.record(0.0005);
  h.record(0.05);
  h.record(500.0);
  registry.counter("requests_total", {{"route", "algo"}}).add(7.0);
  registry.gauge("up").set(1.0);

  std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP latency_seconds request latency"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{model=\"m1\",le=\"0.001\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{model=\"m1\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count{model=\"m1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{route=\"algo\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE up gauge"), std::string::npos);
  EXPECT_NE(text.find("up 1"), std::string::npos);
  // Cumulative bucket lines must be monotone.
  EXPECT_NE(text.find("latency_seconds_bucket{model=\"m1\",le=\"0.01\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{model=\"m1\",le=\"0.1\"} 2"),
            std::string::npos);
}

TEST(ObsMetricsRegistry, LabelEscaping) {
  obs::LabelSet labels{{"path", "a\"b\\c\nd"}};
  EXPECT_EQ(obs::render_labels(labels), "{path=\"a\\\"b\\\\c\\nd\"}");
}

TEST(ObsMetricsRegistry, HistogramSnapshotsByName) {
  MetricsRegistry registry;
  registry.histogram("lat", {{"model", "a"}}).record(0.001);
  registry.histogram("lat", {{"model", "b"}}).record(0.002);
  auto snaps = registry.histogram_snapshots("lat");
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].first, (obs::LabelSet{{"model", "a"}}));
  EXPECT_EQ(snaps[1].first, (obs::LabelSet{{"model", "b"}}));
  EXPECT_EQ(snaps[0].second.count, 1u);
  EXPECT_TRUE(registry.histogram_snapshots("missing").empty());
}

// ---------------------------------------------------------------------------
// Tensor allocation tracking
// ---------------------------------------------------------------------------

TEST(ObsAllocationTracking, CountsLiveAndPeakBytes) {
  tensor::AllocationTrackingScope scope;
  {
    tensor::Tensor a{tensor::Shape{64}};          // 256 bytes
    EXPECT_EQ(scope.stats().live_bytes, 256);
    {
      tensor::Tensor b{tensor::Shape{128}};       // +512 = 768 live
      EXPECT_EQ(scope.stats().live_bytes, 768);
    }
    EXPECT_EQ(scope.stats().live_bytes, 256);     // b died
  }
  EXPECT_EQ(scope.stats().live_bytes, 0);
  EXPECT_EQ(scope.stats().peak_live_bytes, 768);
  EXPECT_EQ(scope.stats().allocations, 2u);
  EXPECT_EQ(scope.stats().allocated_bytes, 768u);
}

TEST(ObsAllocationTracking, MovesTransferOwnershipWithoutCounting) {
  tensor::AllocationTrackingScope scope;
  tensor::Tensor a{tensor::Shape{64}};
  auto after_alloc = scope.stats().allocated_bytes;
  tensor::Tensor b = std::move(a);
  EXPECT_EQ(scope.stats().allocated_bytes, after_alloc);  // no new bytes
  EXPECT_EQ(scope.stats().live_bytes, 256);
  tensor::Tensor c = b;  // copy allocates
  EXPECT_EQ(scope.stats().allocated_bytes, after_alloc + 256);
  EXPECT_EQ(scope.stats().live_bytes, 512);
}

TEST(ObsAllocationTracking, InnermostScopeWins) {
  tensor::AllocationTrackingScope outer;
  {
    tensor::AllocationTrackingScope inner;
    tensor::Tensor t{tensor::Shape{8}};
    EXPECT_EQ(inner.stats().allocations, 1u);
  }
  EXPECT_EQ(outer.stats().allocations, 0u);
  tensor::Tensor t{tensor::Shape{8}};
  EXPECT_EQ(outer.stats().allocations, 1u);
}

TEST(ObsAllocationTracking, NoScopeIsANoOp) {
  // Nothing to assert beyond "does not crash": the hook is a single branch.
  tensor::Tensor t{tensor::Shape{1024}};
  EXPECT_EQ(t.elements(), 1024u);
}

}  // namespace
}  // namespace openei
