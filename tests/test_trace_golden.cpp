// Golden-trace integration test: the exact span tree every /ei_algorithms
// request must emit when tracing is on.  This is the observability layer's
// regression anchor — if an instrumented stage span is removed or renamed,
// these shape assertions fail.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "obs/trace.h"
#include "stream/frame_queue.h"

namespace openei::libei {
namespace {

using common::Json;

std::unique_ptr<core::EdgeNode> make_traced_node(bool coalesce) {
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(),
                              hwsim::openei_package(), 256, {}};
  config.service.coalesce_inference = coalesce;
  config.service.tracing.enabled = true;
  config.service.tracing.seed = 2026;
  config.service.tracing.ring_capacity = 32;
  auto node = std::make_unique<core::EdgeNode>(std::move(config));
  common::Rng rng(99);
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector", 8, 3, {16}, rng), 0.9);
  common::JsonArray features;
  for (std::size_t f = 0; f < 8; ++f) {
    features.emplace_back(0.1 * static_cast<double>(f));
  }
  node->ingest("cam", 1.0, Json(std::move(features)));
  return node;
}

/// GET /ei_algorithms -> parse trace_id -> GET /ei_trace/{id} -> root JSON.
Json fetch_trace(core::EdgeNode& node) {
  auto response = node.call(
      "GET", "/ei_algorithms/safety/detection?sensor=cam&timestamp=1");
  EXPECT_EQ(response.status, 200);
  Json body = Json::parse(response.body);
  const std::string& trace_id = body.at("trace_id").as_string();
  EXPECT_FALSE(trace_id.empty());
  auto trace_response = node.call("GET", "/ei_trace/" + trace_id);
  EXPECT_EQ(trace_response.status, 200);
  Json trace = Json::parse(trace_response.body);
  EXPECT_EQ(trace.at("trace_id").as_string(), trace_id);
  return trace;
}

std::vector<std::string> child_names(const Json& span) {
  std::vector<std::string> names;
  for (const Json& child : span.at("children").as_array()) {
    names.push_back(child.at("name").as_string());
  }
  return names;
}

const Json& child_named(const Json& span, const std::string& name) {
  for (const Json& child : span.at("children").as_array()) {
    if (child.at("name").as_string() == name) return child;
  }
  ADD_FAILURE() << "span '" << span.at("name").as_string()
                << "' has no child '" << name << "'";
  static Json empty{common::JsonObject{}};
  return empty;
}

TEST(TraceGolden, CoalescedRequestEmitsTheCanonicalSpanTree) {
  auto node = make_traced_node(/*coalesce=*/true);
  Json trace = fetch_trace(*node);

  const Json& root = trace.at("root");
  EXPECT_EQ(root.at("name").as_string(), "ei.request");
  // The golden shape: exactly these four stages, in pipeline order.
  EXPECT_EQ(child_names(root),
            (std::vector<std::string>{"ei.select", "ei.parse", "ei.infer",
                                      "ei.serialize"}));
  // 4 stage spans + root + the ei.batch ride-along under ei.infer.
  EXPECT_EQ(trace.at("span_count").as_number(), 6.0);

  const Json& root_attrs = root.at("attributes");
  EXPECT_EQ(root_attrs.at("method").as_string(), "GET");
  EXPECT_EQ(root_attrs.at("path").as_string(),
            "/ei_algorithms/safety/detection");
  EXPECT_EQ(root_attrs.at("status").as_number(), 200.0);

  const Json& select = child_named(root, "ei.select");
  EXPECT_EQ(select.at("attributes").at("candidates").as_number(), 1.0);
  EXPECT_EQ(select.at("attributes").at("eligible").as_number(), 1.0);
  EXPECT_EQ(select.at("attributes").at("model").as_string(), "detector");

  const Json& parse = child_named(root, "ei.parse");
  EXPECT_EQ(parse.at("attributes").at("rows").as_number(), 1.0);
  EXPECT_EQ(parse.at("attributes").at("input_bytes").as_number(),
            8.0 * sizeof(float));

  // ei.infer carries the simulated ALEM attribution and, when coalesced,
  // exactly one ei.batch child stamped by the flush thread.
  const Json& infer = child_named(root, "ei.infer");
  const Json& infer_attrs = infer.at("attributes");
  EXPECT_EQ(infer_attrs.at("model").as_string(), "detector");
  EXPECT_EQ(infer_attrs.at("coalesced").as_number(), 1.0);
  EXPECT_GT(infer_attrs.at("sim_latency_us").as_number(), 0.0);
  EXPECT_GT(infer_attrs.at("sim_energy_mj").as_number(), 0.0);
  EXPECT_GT(infer_attrs.at("sim_memory_bytes").as_number(), 0.0);
  EXPECT_EQ(child_names(infer), (std::vector<std::string>{"ei.batch"}));

  const Json& batch = child_named(infer, "ei.batch");
  const Json& batch_attrs = batch.at("attributes");
  EXPECT_GE(batch_attrs.at("queue_wait_us").as_number(), 0.0);
  EXPECT_GE(batch_attrs.at("forward_us").as_number(), 0.0);
  EXPECT_GE(batch_attrs.at("batch_rows").as_number(), 1.0);
  EXPECT_GE(batch_attrs.at("flush_rows").as_number(), 1.0);
  EXPECT_EQ(batch_attrs.at("flush_requests").as_number(), 1.0);
  // The MLP plans onto the zero-alloc forward arena, so the fused forward
  // allocates no tensors; the `arena` flag distinguishes this from a broken
  // allocation tracker.
  EXPECT_EQ(batch_attrs.at("arena").as_number(), 1.0);
  EXPECT_EQ(batch_attrs.at("peak_tensor_bytes").as_number(), 0.0);

  EXPECT_TRUE(child_names(child_named(root, "ei.serialize")).empty());

  // Timing sanity: the root brackets the sum of its stage spans.
  double stage_total = 0.0;
  for (const Json& child : root.at("children").as_array()) {
    double d = child.at("duration_us").as_number();
    EXPECT_GE(d, 0.0);
    stage_total += d;
  }
  EXPECT_GE(root.at("duration_us").as_number(), stage_total * 0.99);
}

TEST(TraceGolden, DirectPathHasNoBatchSpanAndArenaForwardIsZeroAlloc) {
  auto node = make_traced_node(/*coalesce=*/false);
  Json trace = fetch_trace(*node);
  const Json& root = trace.at("root");
  EXPECT_EQ(child_names(root),
            (std::vector<std::string>{"ei.select", "ei.parse", "ei.infer",
                                      "ei.serialize"}));
  EXPECT_EQ(trace.at("span_count").as_number(), 5.0);  // no ei.batch
  const Json& infer = child_named(root, "ei.infer");
  EXPECT_TRUE(child_names(infer).empty());
  EXPECT_EQ(infer.at("attributes").at("coalesced").as_number(), 0.0);
  // The direct path wraps the forward in an AllocationTrackingScope; the MLP
  // plans onto the zero-alloc arena, so the peak on ei.infer must be zero.
  EXPECT_EQ(infer.at("attributes").at("arena").as_number(), 1.0);
  EXPECT_EQ(infer.at("attributes").at("peak_tensor_bytes").as_number(), 0.0);
}

TEST(TraceGolden, EnergyDegradedRequestPinsTheCanonicalSpanTree) {
  // A power cap below the idle draw forces every request over budget; the
  // wide reject factor keeps it serviceable, so the request must degrade:
  // the select stage flips to min-energy and rides the cheaper variant.
  // The span tree shape is identical to a healthy direct request — only
  // the select attribution and the response flags change.
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(),
                              hwsim::openei_package(), 256, {}};
  config.service.coalesce_inference = false;
  config.service.tracing.enabled = true;
  config.service.tracing.seed = 2026;
  config.service.tracing.ring_capacity = 32;
  config.service.energy.power_cap_w = 0.5;
  config.service.energy.reject_factor = 100.0;
  auto node = std::make_unique<core::EdgeNode>(std::move(config));
  common::Rng rng(99);
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector", 8, 3, {16}, rng), 0.9);
  node->deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector-lite", 8, 3, {4}, rng), 0.7);
  common::JsonArray features;
  for (std::size_t f = 0; f < 8; ++f) {
    features.emplace_back(0.1 * static_cast<double>(f));
  }
  node->ingest("cam", 1.0, Json(std::move(features)));

  auto response = node->call(
      "GET", "/ei_algorithms/safety/detection?sensor=cam&timestamp=1");
  ASSERT_EQ(response.status, 200);
  Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("model").as_string(), "detector-lite");
  EXPECT_TRUE(body.at("energy_degraded").as_bool());
  EXPECT_GT(body.at("ledger_energy_j").as_number(), 0.0);

  Json trace = Json::parse(
      node->call("GET", "/ei_trace/" + body.at("trace_id").as_string()).body);
  const Json& root = trace.at("root");
  EXPECT_EQ(child_names(root),
            (std::vector<std::string>{"ei.select", "ei.parse", "ei.infer",
                                      "ei.serialize"}));
  EXPECT_EQ(trace.at("span_count").as_number(), 5.0);  // direct: no ei.batch

  const Json& select = child_named(root, "ei.select");
  const Json& select_attrs = select.at("attributes");
  EXPECT_EQ(select_attrs.at("energy_degraded").as_number(), 1.0);
  EXPECT_EQ(select_attrs.at("model").as_string(), "detector-lite");
  EXPECT_EQ(select_attrs.at("candidates").as_number(), 2.0);
  EXPECT_EQ(select_attrs.at("eligible").as_number(), 2.0);

  // sim_energy_mj on ei.infer is sourced from the device ledger (what the
  // account actually accrued for this request), and must reconcile with the
  // response's ledger_energy_j exactly.
  const Json& infer = child_named(root, "ei.infer");
  EXPECT_TRUE(child_names(infer).empty());
  EXPECT_EQ(infer.at("attributes").at("model").as_string(), "detector-lite");
  EXPECT_DOUBLE_EQ(infer.at("attributes").at("sim_energy_mj").as_number(),
                   body.at("ledger_energy_j").as_number() * 1e3);
}

TEST(TraceGolden, TraceIdsAreDeterministicAcrossIdenticalNodes) {
  auto a = make_traced_node(true);
  auto b = make_traced_node(true);
  Json trace_a = fetch_trace(*a);
  Json trace_b = fetch_trace(*b);
  // Same seed, same request sequence -> bit-identical ids (no wall clock in
  // id derivation), even though timestamps differ.
  EXPECT_EQ(trace_a.at("trace_id").as_string(),
            trace_b.at("trace_id").as_string());
  EXPECT_EQ(trace_a.at("root").at("id").as_string(),
            trace_b.at("root").at("id").as_string());
}

TEST(TraceGolden, MetricsAndStatusExposeTheRequest) {
  auto node = make_traced_node(true);
  fetch_trace(*node);

  auto metrics = node->call("GET", "/ei_metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(metrics.body.find(
                "ei_request_latency_seconds_bucket{model=\"detector\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_request_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_model_sim_energy_mj_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_model_sim_memory_bytes"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ei_requests_total{route=\"ei_algorithms\","
                              "status=\"ok\"} 1"),
            std::string::npos);

  Json status = Json::parse(node->call("GET", "/ei_status").body);
  const Json& latency = status.at("latency").at("detector");
  EXPECT_EQ(latency.at("count").as_number(), 1.0);
  EXPECT_GT(latency.at("p50_us").as_number(), 0.0);
  EXPECT_LE(latency.at("p50_us").as_number(),
            latency.at("p99_us").as_number());
  EXPECT_TRUE(status.at("tracing").at("enabled").as_bool());
  // fetch_trace committed 2 traces (/ei_algorithms + /ei_trace/{id}); the
  // /ei_metrics request above committed a third before /ei_status ran.
  EXPECT_EQ(status.at("tracing").at("completed_traces").as_number(), 3.0);
}

TEST(TraceGolden, TraceListingAndErrorPaths) {
  auto node = make_traced_node(true);
  fetch_trace(*node);
  fetch_trace(*node);

  Json listing = Json::parse(node->call("GET", "/ei_trace").body);
  EXPECT_TRUE(listing.at("enabled").as_bool());
  // fetch_trace issues /ei_algorithms + /ei_trace/{id}; both are traced.
  const auto& ids = listing.at("traces").as_array();
  EXPECT_GE(ids.size(), 2u);

  EXPECT_EQ(node->call("GET", "/ei_trace/12345").status, 404);
  EXPECT_EQ(node->call("GET", "/ei_trace/not-a-number").status, 400);

  // Tracing disabled: no trace_id in responses, /ei_trace/{id} explains.
  core::EdgeNodeConfig config{hwsim::raspberry_pi_4(),
                              hwsim::openei_package(), 16, {}};
  core::EdgeNode plain(std::move(config));
  common::Rng rng(99);
  plain.deploy_model("safety", "detection",
                     nn::zoo::make_mlp("detector", 8, 3, {4}, rng), 0.9);
  plain.ingest("cam", 1.0, Json(common::JsonArray{
                               Json(1.0), Json(2.0), Json(3.0), Json(4.0),
                               Json(1.0), Json(2.0), Json(3.0), Json(4.0)}));
  auto response = plain.call(
      "GET", "/ei_algorithms/safety/detection?sensor=cam&timestamp=1");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(Json::parse(response.body).find("trace_id"), nullptr);
  auto missing = plain.call("GET", "/ei_trace/1");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("disabled"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming golden traces: the canonical span tree of one streamed frame,
// on the delivered path and on the drop path.
// ---------------------------------------------------------------------------

TEST(TraceGolden, StreamedFrameEmitsCanonicalSpanTree) {
  auto node = make_traced_node(/*coalesce=*/true);
  auto opened = node->call(
      "POST", "/ei_stream?scenario=safety&algorithm=detection&policy=block");
  ASSERT_EQ(opened.status, 201);
  std::string stream_id = Json::parse(opened.body).at("stream").as_string();

  auto submitted = node->call("POST", "/ei_stream/" + stream_id + "/frames",
                              "[[1,2,3,4,5,6,7,8]]");
  ASSERT_EQ(submitted.status, 200);
  Json verdicts = Json::parse(submitted.body);
  ASSERT_EQ(verdicts.at("accepted").as_number(), 1.0);
  std::string trace_id =
      verdicts.at("frames").as_array()[0].at("trace_id").as_string();
  ASSERT_FALSE(trace_id.empty());

  // The frame's trace finishes when the worker delivers it — poll until the
  // tracer has committed it.
  net::HttpResponse traced;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    traced = node->call("GET", "/ei_trace/" + trace_id);
    if (traced.status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(traced.status, 200);
  Json trace = Json::parse(traced.body);

  const Json& root = trace.at("root");
  EXPECT_EQ(root.at("name").as_string(), "stream.frame");
  // The golden delivered-path shape: admission, queue residency, inference,
  // delivery — exactly these four, in pipeline order.
  EXPECT_EQ(child_names(root),
            (std::vector<std::string>{"stream.enqueue", "stream.queue_wait",
                                      "stream.infer", "stream.deliver"}));
  EXPECT_EQ(trace.at("span_count").as_number(), 5.0);

  const Json& root_attrs = root.at("attributes");
  EXPECT_EQ(root_attrs.at("session").as_string(), stream_id);
  EXPECT_EQ(root_attrs.at("model").as_string(), "detector");
  EXPECT_EQ(root_attrs.at("policy").as_string(), "block");
  EXPECT_EQ(root_attrs.at("seq").as_number(), 1.0);

  const Json& enqueue = child_named(root, "stream.enqueue");
  EXPECT_EQ(enqueue.at("attributes").at("outcome").as_string(), "admitted");
  EXPECT_EQ(enqueue.at("attributes").at("policy").as_string(), "block");
  EXPECT_EQ(enqueue.at("attributes").at("depth").as_number(), 1.0);
  EXPECT_EQ(enqueue.at("attributes").at("evicted").as_number(), 0.0);

  // stream.infer carries the simulated ALEM attribution, like ei.infer.
  const Json& infer = child_named(root, "stream.infer");
  const Json& infer_attrs = infer.at("attributes");
  EXPECT_EQ(infer_attrs.at("model").as_string(), "detector");
  EXPECT_GE(infer_attrs.at("queue_wait_us").as_number(), 0.0);
  EXPECT_GT(infer_attrs.at("sim_latency_us").as_number(), 0.0);
  EXPECT_GT(infer_attrs.at("sim_energy_mj").as_number(), 0.0);
  EXPECT_GT(infer_attrs.at("sim_memory_bytes").as_number(), 0.0);

  EXPECT_GE(child_named(root, "stream.queue_wait").at("duration_us")
                .as_number(),
            0.0);
  node->call("DELETE", "/ei_stream/" + stream_id);
}

TEST(TraceGolden, DroppedStreamFrameEmitsDropSpanTree) {
  // Drop path, pinned deterministically in-process: a fake clock expires the
  // frame between admission and pop, so the tree must close with
  // stream.drop{reason=deadline} instead of infer/deliver.
  obs::Tracer::Options trace_options;
  trace_options.enabled = true;
  trace_options.seed = 2026;
  obs::Tracer tracer(trace_options);

  std::int64_t now_ns = 0;
  stream::FrameQueue::Options options;
  options.capacity = 4;
  options.policy = stream::AdmitPolicy::kBlock;
  options.deadline_s = 0.001;
  options.now = [&now_ns] { return now_ns; };
  stream::FrameQueue queue(options);

  stream::Frame frame;
  frame.rows = nn::Tensor(tensor::Shape{1, 1});
  frame.span = tracer.begin_trace("stream.frame");
  std::uint64_t trace_id = frame.span.trace_id();
  ASSERT_EQ(queue.push(std::move(frame)).outcome,
            stream::PushOutcome::kAdmitted);

  now_ns = 2'000'000;  // past the 1ms deadline
  EXPECT_FALSE(queue.try_pop().has_value());
  EXPECT_EQ(queue.counters().dropped_deadline, 1U);

  auto record = tracer.find(trace_id);
  ASSERT_TRUE(record.has_value());
  Json trace = record->to_json();
  const Json& root = trace.at("root");
  EXPECT_EQ(root.at("name").as_string(), "stream.frame");
  // The golden drop-path shape: the frame was admitted and waited, then the
  // deadline killed it before inference — no infer/deliver spans exist.
  EXPECT_EQ(child_names(root),
            (std::vector<std::string>{"stream.enqueue", "stream.queue_wait",
                                      "stream.drop"}));
  EXPECT_EQ(trace.at("span_count").as_number(), 4.0);

  const Json& drop = child_named(root, "stream.drop");
  EXPECT_EQ(drop.at("attributes").at("reason").as_string(), "deadline");
  EXPECT_EQ(drop.at("attributes").at("seq").as_number(), 1.0);
  EXPECT_GE(drop.at("attributes").at("waited_us").as_number(), 0.0);
}

}  // namespace
}  // namespace openei::libei
