// Sharded-fleet suite (label: fleet): consistent-hash ring properties
// (determinism, balance, minimal remap), placement-aware routing and
// replication, node-kill failover, probe-driven failback with ring
// rebalancing, replica repair, the /ei_fleet + /ei_metrics surfaces, and a
// kill/revive stress meant to run early on the sanitizer legs.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "fleet/hash_ring.h"
#include "fleet/router.h"
#include "net/faults.h"
#include "net/http.h"
#include "nn/serialize.h"
#include "nn/zoo.h"

namespace openei::fleet {
namespace {

using common::Json;
using common::Rng;

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;
constexpr const char* kInput =
    "?input=[[1,2,3,4,5,6,7,8],[8,7,6,5,4,3,2,1]]";

/// Constant-prediction model (zeroed MLP, one-hot output bias): every
/// request answers `winner`, so tests can read *which* replica/version
/// served straight off the predictions.
nn::Model make_constant_model(const std::string& name, std::size_t winner) {
  Rng rng(7);
  nn::Model model = nn::zoo::make_mlp(name, kFeatures, kClasses, {4}, rng);
  for (nn::Tensor* param : model.parameters()) *param *= 0.0F;
  model.parameters().back()->data()[winner] = 1.0F;
  return model;
}

std::vector<std::size_t> predictions_of(const net::HttpResponse& response) {
  Json doc = Json::parse(response.body);
  std::vector<std::size_t> out;
  for (const Json& p : doc.at("predictions").as_array()) {
    out.push_back(static_cast<std::size_t>(p.as_int()));
  }
  return out;
}

std::vector<std::string> ring_nodes(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back("node" + std::to_string(i));
  return ids;
}

std::vector<std::string> sample_keys(std::size_t n) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("scenario" + std::to_string(i) + "/algo" +
                   std::to_string(i % 7));
  }
  return keys;
}

// --- Ring properties ------------------------------------------------------

TEST(HashRingTest, PlacementIsDeterministicAcrossInstances) {
  HashRing a(64, 42);
  HashRing b(64, 42);
  for (const std::string& id : ring_nodes(5)) {
    a.add_node(id);
    b.add_node(id);
  }
  for (const std::string& key : sample_keys(100)) {
    EXPECT_EQ(a.owners(key, 3), b.owners(key, 3)) << "key " << key;
  }
  // A different seed lays the points elsewhere: at least one key must move.
  HashRing other_seed(64, 43);
  for (const std::string& id : ring_nodes(5)) other_seed.add_node(id);
  bool any_moved = false;
  for (const std::string& key : sample_keys(100)) {
    if (other_seed.primary(key) != a.primary(key)) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(HashRingTest, OwnershipIsBalancedAcrossNodes) {
  HashRing ring(64, 42);
  for (const std::string& id : ring_nodes(8)) ring.add_node(id);
  std::map<std::string, double> shares = ring.ownership();
  ASSERT_EQ(shares.size(), 8U);
  double total = 0.0;
  for (const auto& [id, share] : shares) {
    // 64 vnodes concentrate shares around 1/8; pin a generous band so the
    // test documents "balanced", not the exact hash layout.
    EXPECT_GT(share, 0.125 / 2.5) << id;
    EXPECT_LT(share, 0.125 * 2.5) << id;
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRingTest, OwnersAreDistinctAndClampedToMembership) {
  HashRing ring(64, 42);
  for (const std::string& id : ring_nodes(5)) ring.add_node(id);
  for (const std::string& key : sample_keys(50)) {
    std::vector<std::string> owners = ring.owners(key, 3);
    ASSERT_EQ(owners.size(), 3U);
    EXPECT_EQ(std::set<std::string>(owners.begin(), owners.end()).size(), 3U);
    EXPECT_EQ(owners[0], ring.primary(key));
  }
  // Replication beyond the member count clamps instead of repeating nodes.
  std::vector<std::string> all = ring.owners("some/key", 9);
  EXPECT_EQ(all.size(), 5U);
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(), 5U);
}

TEST(HashRingTest, RemovingANodeOnlyRemapsItsOwnKeys) {
  HashRing ring(64, 42);
  for (const std::string& id : ring_nodes(6)) ring.add_node(id);
  std::vector<std::string> keys = sample_keys(200);
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& key : keys) before[key] = ring.owners(key, 2);

  const std::string victim = "node3";
  ASSERT_TRUE(ring.remove_node(victim));
  for (const std::string& key : keys) {
    const std::vector<std::string>& old_owners = before[key];
    bool involved = std::find(old_owners.begin(), old_owners.end(), victim) !=
                    old_owners.end();
    std::vector<std::string> now = ring.owners(key, 2);
    if (!involved) {
      // Consistent hashing's whole point: uninvolved keys keep their exact
      // owner sequence.
      EXPECT_EQ(now, old_owners) << "key " << key;
    } else {
      EXPECT_EQ(std::find(now.begin(), now.end(), victim), now.end());
    }
  }
}

TEST(HashRingTest, RejoiningANodeRestoresPlacementExactly) {
  HashRing ring(64, 42);
  for (const std::string& id : ring_nodes(6)) ring.add_node(id);
  std::vector<std::string> keys = sample_keys(200);
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& key : keys) before[key] = ring.owners(key, 2);

  ASSERT_TRUE(ring.remove_node("node2"));
  ring.add_node("node2");  // points derive from (seed, id, index): same spots
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.owners(key, 2), before[key]) << "key " << key;
  }
  EXPECT_EQ(ring.vnode_count(), 6U * 64U);
}

// --- Routing keys ---------------------------------------------------------

TEST(RouterKeyTest, AlgorithmVariantsColocateOnOnePlacementKey) {
  auto key_for = [](const std::string& target) {
    net::HttpRequest request;
    request.method = "GET";
    net::parse_target(target, request.path, request.query);
    return Router::routing_key(request);
  };
  EXPECT_EQ(key_for("/ei_algorithms/safety/detection?input=[[1]]"),
            "safety/detection");
  EXPECT_EQ(key_for("/ei_algorithms/safety/detection/variants"),
            "safety/detection");
  // The session parameter spreads load but must never change placement.
  EXPECT_EQ(key_for("/ei_algorithms/safety/detection?session=a"),
            key_for("/ei_algorithms/safety/detection?session=b"));
  EXPECT_EQ(key_for("/ei_status"), "/ei_status");
}

// --- Fleet placement + replication ----------------------------------------

FleetOptions small_fleet(std::size_t nodes, std::size_t replication) {
  FleetOptions options;
  options.nodes = nodes;
  options.router.replication = replication;
  return options;
}

TEST(FleetTest, DeployReplicatesToExactlyTheOwnerSet) {
  Fleet fleet(small_fleet(4, 2));
  std::size_t replicas =
      fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  EXPECT_EQ(replicas, 2U);

  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  ASSERT_EQ(owners.size(), 2U);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    bool is_owner = std::find(owners.begin(), owners.end(),
                              fleet.node_id(i)) != owners.end();
    net::HttpClient direct(fleet.port(i));
    EXPECT_EQ(direct.get("/ei_models/det").status, is_owner ? 200 : 404)
        << fleet.node_id(i);
  }
}

TEST(FleetTest, RoutesInferenceToAnOwnerNode) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 2), 0.9);
  net::HttpResponse response = fleet.router().route(
      "GET", std::string("/ei_algorithms/safety/detection") + kInput);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(predictions_of(response), (std::vector<std::size_t>{2, 2}));
  // The serving node is visible in the forward counters: only owners serve.
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  double ok_forwards = 0.0;
  for (const std::string& id : owners) {
    ok_forwards += fleet.router()
                       .meter()
                       .counter("ei_fleet_forwards_total",
                                {{"node", id}, {"outcome", "ok"}})
                       .value();
  }
  EXPECT_GE(ok_forwards, 1.0);
}

TEST(FleetTest, SessionSpreadingStaysInsideTheOwnerSet) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 0), 0.9);
  const std::string base =
      std::string("/ei_algorithms/safety/detection") + kInput;
  for (int s = 0; s < 32; ++s) {
    net::HttpResponse response = fleet.router().route(
        "GET", base + "&session=user" + std::to_string(s));
    ASSERT_EQ(response.status, 200);
  }
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  double owner_forwards = 0.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string& id = fleet.node_id(i);
    double ok = fleet.router()
                    .meter()
                    .counter("ei_fleet_forwards_total",
                             {{"node", id}, {"outcome", "ok"}})
                    .value();
    bool is_owner =
        std::find(owners.begin(), owners.end(), id) != owners.end();
    if (is_owner) {
      // 32 distinct sessions must spread across both owners, not pile on
      // the primary.
      EXPECT_GE(ok, 1.0) << id;
      owner_forwards += ok;
    } else {
      EXPECT_EQ(ok, 0.0) << id << " served a request it does not own";
    }
  }
  EXPECT_GE(owner_forwards, 32.0);
}

// --- Failover / failback --------------------------------------------------

TEST(FleetTest, FailsOverToReplicaWhenPrimaryIsKilled) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  ASSERT_EQ(owners.size(), 2U);
  fleet.kill(fleet.index_of(owners[0]));

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  net::HttpResponse response = fleet.router().route("GET", target);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(predictions_of(response), (std::vector<std::size_t>{1, 1}));
  EXPECT_FALSE(fleet.router().node_up(owners[0]));
  EXPECT_EQ(fleet.router().up_nodes().size(), 3U);
  EXPECT_GE(
      fleet.router().meter().counter("ei_fleet_failovers_total").value(), 1.0);
  // Follow-up requests route straight to the new primary: no more failover
  // hops accumulate once the ring has rebalanced.
  double failovers =
      fleet.router().meter().counter("ei_fleet_failovers_total").value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(fleet.router().route("GET", target).status, 200);
  }
  EXPECT_EQ(
      fleet.router().meter().counter("ei_fleet_failovers_total").value(),
      failovers);
}

TEST(FleetTest, RepairsReplicationAfterLosingAnOwner) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  fleet.kill(fleet.index_of(owners[0]));
  // One failed request marks the node down and triggers the repair sweep.
  ASSERT_EQ(fleet.router()
                .route("GET",
                       std::string("/ei_algorithms/safety/detection") + kInput)
                .status,
            200);

  std::vector<std::string> new_owners =
      fleet.router().owners_of("safety/detection");
  ASSERT_EQ(new_owners.size(), 2U);
  for (const std::string& id : new_owners) {
    EXPECT_NE(id, owners[0]);
    net::HttpClient direct(fleet.port(fleet.index_of(id)));
    EXPECT_EQ(direct.get("/ei_models/det").status, 200)
        << id << " should have been re-replicated to";
  }
}

TEST(FleetTest, RetriesAReplicaMissOnThePeerOwners) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  ASSERT_EQ(owners.size(), 2U);

  // Simulate replication lag: the first-tried owner is healthy but does not
  // hold the model yet (the state a freshly promoted owner is in while a
  // re-replication sweep is still in flight).
  net::HttpClient primary(fleet.port(fleet.index_of(owners[0])));
  ASSERT_LT(primary.del("/ei_models/det").status, 300);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  net::HttpResponse response = fleet.router().route("GET", target);
  EXPECT_EQ(response.status, 200);  // peer owner still serves
  EXPECT_GE(fleet.router()
                .meter()
                .counter("ei_fleet_forwards_total",
                         {{"node", owners[0]}, {"outcome", "miss"}})
                .value(),
            1.0);

  // When every owner misses, the 404 is the answer — not a 503.
  net::HttpClient replica(fleet.port(fleet.index_of(owners[1])));
  ASSERT_LT(replica.del("/ei_models/det").status, 300);
  EXPECT_EQ(fleet.router().route("GET", target).status, 404);
}

TEST(FleetTest, ProbeFailsARevivedNodeBackIntoTheRing) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::vector<std::string> before = fleet.router().up_nodes();
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  std::size_t victim = fleet.index_of(owners[0]);

  fleet.kill(victim);
  ASSERT_EQ(fleet.router()
                .route("GET",
                       std::string("/ei_algorithms/safety/detection") + kInput)
                .status,
            200);
  ASSERT_FALSE(fleet.router().node_up(owners[0]));

  // While down, probing revives nothing.
  EXPECT_EQ(fleet.router().probe_down_nodes(), 0U);
  ASSERT_FALSE(fleet.router().node_up(owners[0]));

  fleet.revive(victim);
  EXPECT_EQ(fleet.router().probe_down_nodes(), 1U);
  EXPECT_TRUE(fleet.router().node_up(owners[0]));
  // Failback restores the ring — and with it the exact original placement.
  EXPECT_EQ(fleet.router().up_nodes(), before);
  EXPECT_EQ(fleet.router().owners_of("safety/detection"), owners);
  EXPECT_GE(
      fleet.router().meter().counter("ei_fleet_failbacks_total").value(), 1.0);
  EXPECT_EQ(predictions_of(fleet.router().route(
                "GET",
                std::string("/ei_algorithms/safety/detection") + kInput)),
            (std::vector<std::size_t>{1, 1}));
}

TEST(FleetTest, RoutedTrafficAloneTriggersFailbackProbes) {
  FleetOptions options = small_fleet(3, 2);
  options.router.probe_every = 4;
  Fleet fleet(options);
  fleet.deploy("safety", "detection", make_constant_model("det", 0), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  std::size_t victim = fleet.index_of(owners[0]);
  fleet.kill(victim);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  ASSERT_EQ(fleet.router().route("GET", target).status, 200);  // marks down
  fleet.revive(victim);
  // No explicit probe call: the count-gated probe on the route path must
  // notice the revived node within probe_every requests.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fleet.router().route("GET", target).status, 200);
  }
  EXPECT_TRUE(fleet.router().node_up(owners[0]));
  EXPECT_EQ(fleet.router().up_nodes().size(), 3U);
}

TEST(FleetTest, FaultInjectedOutageFailsOverWithZeroFailedRequests) {
  FleetOptions options = small_fleet(3, 2);
  options.router.probe_every = 4;
  Fleet fleet(options);
  fleet.deploy("safety", "detection", make_constant_model("det", 2), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  // The primary refuses its next 6 connections (a deterministic outage
  // window), then recovers on its own — no kill/revive involved.
  fleet.faults(fleet.index_of(owners[0]))
      ->add(net::FaultRule{"", net::FaultKind::kRefuseConnection, 1.0, 0, 6});

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  for (int i = 0; i < 24; ++i) {
    net::HttpResponse response = fleet.router().route("GET", target);
    ASSERT_EQ(response.status, 200) << "request " << i;
    ASSERT_EQ(predictions_of(response), (std::vector<std::size_t>{2, 2}));
  }
  // The outage window has long passed and probes ran: the fleet is whole.
  EXPECT_EQ(fleet.router().up_nodes().size(), 3U);
  EXPECT_GE(
      fleet.router().meter().counter("ei_fleet_failovers_total").value(), 1.0);
}

// --- Observability surfaces ------------------------------------------------

TEST(FleetTest, FrontDoorServesFleetStatusAndMetrics) {
  Fleet fleet(small_fleet(4, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::uint16_t port = fleet.router().start_server();
  net::HttpClient client(port);

  // Inference through the front door: a plain HTTP caller needs no
  // knowledge of the fleet behind the router.
  net::HttpResponse response =
      client.get(std::string("/ei_algorithms/safety/detection") + kInput);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(predictions_of(response), (std::vector<std::size_t>{1, 1}));

  net::HttpResponse status = client.get("/ei_fleet");
  ASSERT_EQ(status.status, 200);
  Json doc = Json::parse(status.body);
  EXPECT_EQ(doc.at("replication").as_int(), 2);
  EXPECT_EQ(doc.at("up_nodes").as_int(), 4);
  EXPECT_EQ(doc.at("total_nodes").as_int(), 4);
  double total_share = 0.0;
  for (const Json& node : doc.at("nodes").as_array()) {
    EXPECT_TRUE(node.at("up").as_bool());
    EXPECT_EQ(node.at("breaker").at("state").as_string(), "closed");
    total_share += node.at("ring_fraction").as_number();
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  ASSERT_EQ(doc.at("placements").as_array().size(), 1U);
  const Json& placement = doc.at("placements").as_array()[0];
  EXPECT_EQ(placement.at("model").as_string(), "det");
  EXPECT_EQ(placement.at("key").as_string(), "safety/detection");
  EXPECT_EQ(placement.at("owners").as_array().size(), 2U);
  EXPECT_TRUE(doc.at("resilience").contains("breakers"));

  net::HttpResponse metrics = client.get("/ei_metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ei_fleet_requests_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("ei_fleet_forwards_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("ei_fleet_up_nodes 4"), std::string::npos);
  EXPECT_NE(metrics.body.find("ei_fleet_route_latency_seconds_bucket"),
            std::string::npos);
}

TEST(FleetTest, FleetStatusReportsDownNodeAndOpenBreaker) {
  Fleet fleet(small_fleet(3, 2));
  fleet.deploy("safety", "detection", make_constant_model("det", 0), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  fleet.kill(fleet.index_of(owners[0]));
  ASSERT_EQ(fleet.router()
                .route("GET",
                       std::string("/ei_algorithms/safety/detection") + kInput)
                .status,
            200);

  Json doc = fleet.router().fleet_status();
  EXPECT_EQ(doc.at("up_nodes").as_int(), 2);
  bool saw_down = false;
  for (const Json& node : doc.at("nodes").as_array()) {
    if (node.at("id").as_string() != owners[0]) continue;
    saw_down = true;
    EXPECT_FALSE(node.at("up").as_bool());
    EXPECT_EQ(node.at("ring_fraction").as_number(), 0.0);
    // The dead node's endpoint accumulated transport failures; once they
    // cross the breaker threshold its state leaves "closed" and the
    // transition is timestamped.
    EXPECT_GE(node.at("breaker").at("consecutive_failures").as_number(), 1.0);
  }
  EXPECT_TRUE(saw_down);
}

// --- Model management through the router ----------------------------------

TEST(FleetTest, FrontDoorDeployAndUndeployManageTheOwnerSet) {
  Fleet fleet(small_fleet(4, 2));
  std::uint16_t port = fleet.router().start_server();
  net::HttpClient client(port);

  std::string body = nn::model_to_json(make_constant_model("det", 1)).dump();
  net::HttpResponse deployed = client.post(
      "/ei_models?scenario=safety&algorithm=detection&accuracy=0.9", body);
  ASSERT_EQ(deployed.status, 201);
  EXPECT_EQ(Json::parse(deployed.body).at("replicas").as_int(), 2);

  // Addressed model reads route to the placement, not the raw path hash.
  EXPECT_EQ(client.get("/ei_models/det").status, 200);

  net::HttpResponse missing_key = client.post("/ei_models", body);
  EXPECT_EQ(missing_key.status, 400);

  net::HttpResponse undeployed = client.del("/ei_models/det");
  ASSERT_LT(undeployed.status, 300);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    net::HttpClient direct(fleet.port(i));
    EXPECT_EQ(direct.get("/ei_models/det").status, 404) << fleet.node_id(i);
  }
  EXPECT_EQ(client.del("/ei_models/det").status, 404);  // no longer tracked
}

// --- Concurrency ----------------------------------------------------------

TEST(FleetTest, ServesEveryRequestThroughAKillReviveCycleUnderLoad) {
  FleetOptions options = small_fleet(4, 2);
  options.router.probe_every = 4;
  Fleet fleet(options);
  fleet.deploy("safety", "detection", make_constant_model("det", 1), 0.9);
  std::vector<std::string> owners =
      fleet.router().owners_of("safety/detection");
  std::size_t victim = fleet.index_of(owners[0]);

  const std::string target =
      std::string("/ei_algorithms/safety/detection") + kInput;
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> served{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 40 && !stop.load(); ++i) {
        net::HttpResponse response = fleet.router().route(
            "GET", target + "&session=w" + std::to_string(t));
        if (response.status == 200) {
          ++served;
        } else {
          ++failed;
        }
      }
    });
  }
  // One full outage + recovery while the workers hammer the fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fleet.kill(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  fleet.revive(victim);
  for (std::thread& worker : workers) worker.join();

  // Replication 2 means the kill costs failover hops, never failures.
  EXPECT_EQ(failed.load(), 0U);
  EXPECT_GE(served.load(), 160U);
  // Drive the probe path to convergence: the fleet ends whole.
  for (int i = 0; i < 8; ++i) fleet.router().route("GET", target);
  fleet.router().probe_down_nodes();
  EXPECT_EQ(fleet.router().up_nodes().size(), 4U);
}

}  // namespace
}  // namespace openei::fleet
