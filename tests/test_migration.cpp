// Tests for computation migration (Sec. IV-C), sensor statistics, and model
// file persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "core/edge_node.h"
#include "datastore/timeseries.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "runtime/migration.h"

namespace openei {
namespace {

using common::Rng;

std::vector<runtime::MigratableTask> heavy_queue(std::size_t count) {
  std::vector<runtime::MigratableTask> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back({"job" + std::to_string(i), /*flops=*/5e8,
                     /*payload_bytes=*/50'000});
  }
  return tasks;
}

TEST(MigrationTest, OffloadsToFastHelperOnGoodLink) {
  auto plan = runtime::plan_migration(heavy_queue(10), hwsim::raspberry_pi_3(),
                                      hwsim::edge_server(), hwsim::wifi());
  EXPECT_FALSE(plan.migrate.empty());
  EXPECT_LT(plan.makespan_s, plan.local_only_s);
  EXPECT_GT(plan.speedup(), 1.5);
  EXPECT_EQ(plan.stay.size() + plan.migrate.size(), 10U);
}

TEST(MigrationTest, KeepsEverythingLocalOnTerribleLink) {
  // LoRaWAN: shipping 50 kB takes ~15 s — never worth it.
  auto plan = runtime::plan_migration(heavy_queue(10), hwsim::raspberry_pi_3(),
                                      hwsim::edge_server(), hwsim::lorawan());
  EXPECT_TRUE(plan.migrate.empty());
  EXPECT_DOUBLE_EQ(plan.makespan_s, plan.local_only_s);
}

TEST(MigrationTest, NoMigrationToSlowerHelper) {
  auto plan = runtime::plan_migration(heavy_queue(6), hwsim::edge_server(),
                                      hwsim::arduino_class(), hwsim::wifi());
  EXPECT_TRUE(plan.migrate.empty());
}

TEST(MigrationTest, MakespanNeverWorseThanLocalOnly) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<runtime::MigratableTask> tasks;
    std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 20));
    for (std::size_t i = 0; i < count; ++i) {
      tasks.push_back({"t" + std::to_string(i), rng.uniform(1e6, 1e9),
                       static_cast<std::size_t>(rng.uniform_int(100, 1000000))});
    }
    for (const auto& link : hwsim::default_links()) {
      auto plan = runtime::plan_migration(tasks, hwsim::raspberry_pi_4(),
                                          hwsim::jetson_tx2(), link);
      EXPECT_LE(plan.makespan_s, plan.local_only_s + 1e-12) << link.name;
    }
  }
}

TEST(MigrationTest, RejectsZeroComputeTask) {
  std::vector<runtime::MigratableTask> tasks = {{"empty", 0.0, 10}};
  EXPECT_THROW(runtime::plan_migration(tasks, hwsim::raspberry_pi_3(),
                                       hwsim::edge_server(), hwsim::wifi()),
               openei::InvalidArgument);
}

TEST(SensorStatsTest, ComputesAggregatesAndRate) {
  datastore::SensorStore store;
  for (double t : {0.0, 1.0, 2.0, 3.0}) {
    store.append("meter", {t, common::Json(t * 10.0)});
  }
  auto stats = store.stats("meter", 0.0, 3.0);
  EXPECT_EQ(stats.count, 4U);
  EXPECT_DOUBLE_EQ(stats.mean, 15.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 30.0);
  EXPECT_DOUBLE_EQ(stats.rate_hz, 1.0);

  auto partial = store.stats("meter", 1.0, 2.0);
  EXPECT_EQ(partial.count, 2U);
  EXPECT_DOUBLE_EQ(partial.mean, 15.0);

  auto empty = store.stats("meter", 10.0, 20.0);
  EXPECT_EQ(empty.count, 0U);
  EXPECT_DOUBLE_EQ(empty.rate_hz, 0.0);
}

TEST(SensorStatsTest, NonNumericPayloadThrows) {
  datastore::SensorStore store;
  store.append("cam", {1.0, common::Json("frame")});
  EXPECT_THROW(store.stats("cam", 0.0, 2.0), openei::InvalidArgument);
}

TEST(SensorStatsTest, StatsRouteServesJson) {
  core::EdgeNode node(core::EdgeNodeConfig{hwsim::raspberry_pi_4(),
                                           hwsim::openei_package(), 32});
  for (double t : {0.0, 0.5, 1.0}) {
    node.ingest("meter1", t, common::Json(100.0 + t));
  }
  auto response = node.call("GET", "/ei_data/stats/meter1?start=0&end=2");
  ASSERT_EQ(response.status, 200);
  common::Json doc = common::Json::parse(response.body);
  EXPECT_EQ(doc.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("mean").as_number(), 100.5);
  EXPECT_DOUBLE_EQ(doc.at("rate_hz").as_number(), 2.0);
  EXPECT_EQ(node.call("GET", "/ei_data/stats/ghost").status, 404);
}

TEST(ModelFileTest, SaveLoadRoundTrip) {
  Rng rng(2);
  nn::Model model = nn::zoo::make_mlp("persisted", 6, 2, {8}, rng);
  nn::Tensor probe = nn::Tensor::random_uniform(tensor::Shape{2, 6}, rng);
  nn::Tensor expected = model.forward(probe, false);

  std::string path = "/tmp/openei_model_test.json";
  nn::save_model_file(model, path);
  nn::Model loaded = nn::load_model_file(path);
  EXPECT_EQ(loaded.name(), "persisted");
  EXPECT_TRUE(loaded.forward(probe, false).all_close(expected, 1e-5F));
  std::remove(path.c_str());
}

TEST(ModelFileTest, MissingFileThrowsIoError) {
  EXPECT_THROW(nn::load_model_file("/tmp/definitely_missing_openei.json"),
               openei::IoError);
}

}  // namespace
}  // namespace openei
