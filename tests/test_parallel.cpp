// Tests for the parallel compute substrate: thread pool / parallel_for
// semantics, bit-identical parallel-vs-serial kernels (GEMM, conv, a full
// training step), batched inference, and the micro-batching queue.  These
// are the tests the CI TSan leg runs specifically to catch data races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/batcher.h"
#include "runtime/inference.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace openei {
namespace {

using common::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Restores the previous thread count when a test scope ends, so tests do
/// not leak their parallelism configuration into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : previous_(common::thread_count()) {
    common::set_thread_count(n);
  }
  ~ScopedThreads() { common::set_thread_count(previous_); }

 private:
  std::size_t previous_;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(10000);
  common::parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/16);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  ScopedThreads threads(4);
  int calls = 0;
  common::parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::size_t seen_lo = 99, seen_hi = 0;
  common::parallel_for(7, 8, [&](std::size_t lo, std::size_t hi) {
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(seen_lo, 7U);
  EXPECT_EQ(seen_hi, 8U);
}

TEST(ParallelForTest, PropagatesExceptionFromWorkerChunk) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      common::parallel_for(
          0, 10000,
          [](std::size_t lo, std::size_t) {
            if (lo > 0) throw InvalidArgument("boom in worker chunk");
          },
          /*grain=*/16),
      InvalidArgument);
  // The pool must stay usable after an exception.
  std::atomic<std::size_t> count{0};
  common::parallel_for(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) { count.fetch_add(hi - lo); },
      /*grain=*/16);
  EXPECT_EQ(count.load(), 1000U);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ScopedThreads threads(4);
  std::atomic<std::size_t> total{0};
  common::parallel_for(
      0, 64,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          common::parallel_for(
              0, 8,
              [&](std::size_t ilo, std::size_t ihi) {
                total.fetch_add(ihi - ilo);
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 64U * 8U);
}

TEST(ParallelForTest, ThreadCountKnobRoundTrips) {
  ScopedThreads scope(3);
  EXPECT_EQ(common::thread_count(), 3U);
  common::set_thread_count(1);
  EXPECT_EQ(common::thread_count(), 1U);
}

TEST(ParallelForTest, ParsesThreadEnvValues) {
  EXPECT_EQ(common::parse_thread_env("4", 8), 4U);
  EXPECT_EQ(common::parse_thread_env("1", 8), 1U);
  EXPECT_EQ(common::parse_thread_env(nullptr, 8), 8U);
  EXPECT_EQ(common::parse_thread_env("", 8), 8U);
  EXPECT_EQ(common::parse_thread_env("0", 8), 8U);
  EXPECT_EQ(common::parse_thread_env("banana", 8), 8U);
  EXPECT_EQ(common::parse_thread_env("4x", 8), 8U);
}

/// Reference naive i-k-j GEMM the exact scalar path must reproduce bitwise.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  std::size_t m = a.shape().dim(0);
  std::size_t k = a.shape().dim(1);
  std::size_t n = b.shape().dim(1);
  Tensor out(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      float a_ip = a.at2(i, p);
      if (a_ip == 0.0F) continue;
      for (std::size_t j = 0; j < n; ++j) {
        out.at2(i, j) += a_ip * b.at2(p, j);
      }
    }
  }
  return out;
}

TEST(GemmTest, ReferenceGemmMatchesNaiveBitwise) {
  Rng rng(11);
  // Odd sizes cross the k-block boundary and leave a tail row for the
  // two-row register kernel.
  Tensor a = Tensor::random_normal(Shape{37, 301}, rng);
  Tensor b = Tensor::random_normal(Shape{301, 53}, rng);
  ScopedThreads serial(1);
  Tensor ref(Shape{37, 53});
  tensor::gemm_ref(a.data().data(), b.data().data(), ref.data().data(), 37,
                   301, 53);
  EXPECT_EQ(ref, naive_matmul(a, b));
}

TEST(GemmTest, DispatchedGemmMatchesNaiveWithinTolerance) {
  Rng rng(11);
  Tensor a = Tensor::random_normal(Shape{37, 301}, rng);
  Tensor b = Tensor::random_normal(Shape{301, 53}, rng);
  ScopedThreads serial(1);
  Tensor naive = naive_matmul(a, b);
  Tensor fast = tensor::matmul(a, b);
  // FMA contraction reassociates nothing but fuses rounding steps: the
  // dispatched kernels agree with exact math to normal accumulation error.
  ASSERT_EQ(fast.shape(), naive.shape());
  for (std::size_t i = 0; i < fast.elements(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-3F) << "at flat index " << i;
  }
}

TEST(GemmTest, ParallelAndSerialGemmBitIdentical) {
  Rng rng(12);
  Tensor a = Tensor::random_normal(Shape{64, 96}, rng);
  Tensor b = Tensor::random_normal(Shape{96, 80}, rng);
  Tensor serial_result, parallel_result;
  {
    ScopedThreads threads(1);
    serial_result = tensor::matmul(a, b);
  }
  {
    ScopedThreads threads(4);
    parallel_result = tensor::matmul(a, b);
  }
  EXPECT_EQ(serial_result, parallel_result);
}

TEST(GemmTest, ParallelAndSerialConvBitIdentical) {
  Rng rng(13);
  tensor::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.padding = 1;
  Tensor input = Tensor::random_normal(Shape{6, 3, 12, 12}, rng);
  Tensor weights = Tensor::random_normal(Shape{8, 3, 3, 3}, rng);
  Tensor bias = Tensor::random_normal(Shape{8}, rng);

  Tensor serial_result, parallel_result;
  {
    ScopedThreads threads(1);
    serial_result = tensor::conv2d_im2col(input, weights, bias, spec);
  }
  {
    ScopedThreads threads(4);
    parallel_result = tensor::conv2d_im2col(input, weights, bias, spec);
  }
  EXPECT_EQ(serial_result, parallel_result);
  // And the im2col path still agrees with direct convolution numerically.
  EXPECT_TRUE(
      parallel_result.all_close(tensor::conv2d(input, weights, bias, spec), 1e-3F));
}

/// Trains the same conv+batchnorm model serially and in parallel; every
/// parameter must come out bit-identical for the determinism contract to
/// hold through a full forward+backward+update step.
TEST(GemmTest, ParallelAndSerialTrainStepBitIdentical) {
  auto train_once = [] {
    Rng rng(14);
    nn::zoo::ImageSpec spec;
    spec.channels = 3;
    spec.size = 8;
    spec.classes = 3;
    nn::Model model = nn::zoo::make_mini_vgg(spec, rng);
    Rng data_rng(15);
    auto dataset = data::make_images(60, spec.channels, spec.size,
                                     spec.classes, data_rng);
    nn::TrainOptions options;
    options.epochs = 1;
    options.batch_size = 16;
    nn::fit(model, dataset, options);
    return model;
  };

  nn::Model serial_model = [&] {
    ScopedThreads threads(1);
    return train_once();
  }();
  nn::Model parallel_model = [&] {
    ScopedThreads threads(4);
    return train_once();
  }();

  auto serial_params = serial_model.parameters();
  auto parallel_params = parallel_model.parameters();
  ASSERT_EQ(serial_params.size(), parallel_params.size());
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    EXPECT_EQ(*serial_params[i], *parallel_params[i]) << "parameter " << i;
  }
}

runtime::InferenceSession make_session(Rng& rng) {
  nn::Model model = nn::zoo::make_mlp("batch_test", 8, 3, {16}, rng);
  return runtime::InferenceSession(std::move(model), hwsim::openei_package(),
                                   hwsim::raspberry_pi_4());
}

TEST(PredictBatchTest, FusedBatchMatchesIndividualRuns) {
  Rng rng(20);
  runtime::InferenceSession session = make_session(rng);
  std::vector<Tensor> requests;
  for (std::size_t i = 0; i < 5; ++i) {
    requests.push_back(Tensor::random_normal(Shape{1 + i % 3, 8}, rng));
  }

  std::vector<runtime::InferenceResult> fused = session.predict_batch(requests);
  ASSERT_EQ(fused.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    runtime::InferenceResult solo = session.run(requests[i]);
    EXPECT_EQ(fused[i].predictions, solo.predictions) << "request " << i;
    EXPECT_DOUBLE_EQ(fused[i].batch_latency_s, solo.batch_latency_s);
    EXPECT_DOUBLE_EQ(fused[i].batch_energy_j, solo.batch_energy_j);
  }
}

TEST(PredictBatchTest, RejectsMismatchedSampleShape) {
  Rng rng(21);
  runtime::InferenceSession session = make_session(rng);
  EXPECT_THROW(session.predict_batch({Tensor(Shape{2, 7})}), InvalidArgument);
  EXPECT_THROW(session.predict_batch({}), InvalidArgument);
}

TEST(MicroBatcherTest, FlushesOnTimeoutWithoutFillingBatch) {
  Rng rng(22);
  auto session = std::make_shared<runtime::InferenceSession>(make_session(rng));
  runtime::MicroBatcher::Options options;
  options.max_batch_rows = 64;  // never filled by one request
  options.max_wait_s = 0.02;
  options.eager_when_idle = false;
  runtime::MicroBatcher batcher(session, options);

  Tensor request = Tensor::random_normal(Shape{2, 8}, rng);
  auto future = batcher.submit(request);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(future.get().predictions, session->run(request).predictions);
}

TEST(MicroBatcherTest, CoalescesConcurrentSubmissionsIntoOneFlush) {
  Rng rng(23);
  auto session = std::make_shared<runtime::InferenceSession>(make_session(rng));
  auto metrics = std::make_shared<runtime::BatcherMetrics>();
  runtime::MicroBatcher::Options options;
  options.max_batch_rows = 8;
  options.max_wait_s = 0.5;  // rely on the fill trigger, not the timeout
  options.eager_when_idle = false;
  runtime::MicroBatcher batcher(session, options, metrics);

  std::vector<Tensor> requests;
  for (std::size_t i = 0; i < 8; ++i) {
    requests.push_back(Tensor::random_normal(Shape{1, 8}, rng));
  }
  std::vector<std::future<runtime::InferenceResult>> futures;
  for (const Tensor& request : requests) {
    futures.push_back(batcher.submit(request));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    runtime::InferenceResult result = futures[i].get();
    EXPECT_EQ(result.predictions, session->run(requests[i]).predictions)
        << "request " << i;
  }
  EXPECT_GE(metrics->max_fused_rows.load(), 2U);
  EXPECT_GT(metrics->fused_requests.load(), 0U);
  EXPECT_LT(metrics->flushes.load(), 8U);
}

TEST(MicroBatcherTest, DrainsPendingRequestsOnDestruction) {
  Rng rng(24);
  auto session = std::make_shared<runtime::InferenceSession>(make_session(rng));
  runtime::MicroBatcher::Options options;
  options.max_batch_rows = 128;
  options.max_wait_s = 30.0;  // destructor, not the timeout, must flush
  options.eager_when_idle = false;

  std::vector<std::future<runtime::InferenceResult>> futures;
  {
    runtime::MicroBatcher batcher(session, options);
    for (std::size_t i = 0; i < 3; ++i) {
      futures.push_back(
          batcher.submit(Tensor::random_normal(Shape{1, 8}, rng)));
    }
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().predictions.size(), 1U);
  }
}

TEST(MicroBatcherTest, ShapeErrorReportedThroughFuture) {
  Rng rng(25);
  auto session = std::make_shared<runtime::InferenceSession>(make_session(rng));
  runtime::MicroBatcher batcher(session, runtime::MicroBatcher::Options{});
  auto future = batcher.submit(Tensor(Shape{2, 7}));  // model expects 8 wide
  EXPECT_THROW(future.get(), InvalidArgument);
}

TEST(MicroBatcherTest, ManyThreadsHammeringOneBatcher) {
  ScopedThreads pool(4);
  Rng rng(26);
  auto session = std::make_shared<runtime::InferenceSession>(make_session(rng));
  runtime::MicroBatcher::Options options;
  options.max_batch_rows = 4;
  options.max_wait_s = 0.001;
  runtime::MicroBatcher batcher(session, options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 16;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng local_rng(100 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Tensor request = Tensor::random_normal(Shape{1, 8}, local_rng);
        auto expected = session->run(request).predictions;
        if (batcher.submit(std::move(request)).get().predictions == expected) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace openei
