// Tests for cloud-edge and edge-edge collaboration: the three Fig. 3
// dataflows, federated averaging/rounds, power-proportional partitioning,
// and DDNN-style split inference.
#include <gtest/gtest.h>

#include "collab/cloud_edge.h"
#include "collab/edge_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"

namespace openei::collab {
namespace {

using common::Rng;

class CollabFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(51);
    auto dataset = data::make_blobs(500, 10, 3, rng, 2.0F, 1.2F);
    auto [train, test] = data::train_test_split(dataset, 0.8, rng);
    train_ = new data::Dataset(std::move(train));
    test_ = new data::Dataset(std::move(test));

    model_ = new nn::Model(nn::zoo::make_mlp("global", 10, 3, {24}, rng));
    nn::TrainOptions topt;
    topt.epochs = 20;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(*model_, *train_, topt);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete test_;
    delete train_;
    model_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
  }

  static data::Dataset* train_;
  static data::Dataset* test_;
  static nn::Model* model_;
};

data::Dataset* CollabFixture::train_ = nullptr;
data::Dataset* CollabFixture::test_ = nullptr;
nn::Model* CollabFixture::model_ = nullptr;

TEST_F(CollabFixture, EdgeInferenceBeatsCloudOnLatencyAndBandwidth) {
  // The paper's Fig. 1/Fig. 3 claim: on a constrained uplink, on-edge
  // inference wins end-to-end latency and slashes per-inference bandwidth.
  auto cloud = dataflow_cloud_inference(*model_, *test_, hwsim::cloud_gpu(),
                                        hwsim::full_framework(),
                                        hwsim::cellular_lte());
  auto edge = dataflow_edge_inference(*model_, *test_, hwsim::raspberry_pi_4(),
                                      hwsim::openei_package(),
                                      hwsim::cellular_lte());
  EXPECT_LT(edge.latency_per_inference_s, cloud.latency_per_inference_s);
  EXPECT_LT(edge.bytes_per_inference, cloud.bytes_per_inference);
  // Same model, same accuracy.
  EXPECT_NEAR(edge.accuracy, cloud.accuracy, 1e-9);
}

TEST_F(CollabFixture, CloudWinsOnFastLanWithSlowEdge)
{
  // Crossover: with a LAN link and a Pi-3-class edge, offloading a heavy
  // model can beat local execution (the cloud's compute advantage dominates
  // transfer costs) — the tradeoff is link-dependent, not absolute.
  Rng rng(52);
  nn::Model heavy = nn::zoo::make_mlp("heavy", 10, 3, {2048, 2048}, rng);
  auto cloud = dataflow_cloud_inference(heavy, *test_, hwsim::cloud_gpu(),
                                        hwsim::full_framework(),
                                        hwsim::ethernet_lan());
  auto edge = dataflow_edge_inference(heavy, *test_, hwsim::raspberry_pi_3(),
                                      hwsim::openei_package(),
                                      hwsim::ethernet_lan());
  EXPECT_LT(cloud.latency_per_inference_s, edge.latency_per_inference_s);
}

TEST_F(CollabFixture, PersonalizationBeatsGeneralModelOnDriftedData) {
  Rng drift_rng(53);
  auto local = data::apply_drift(*train_, drift_rng, 0.8F);
  Rng split_rng(54);
  auto [local_train, local_test] = data::train_test_split(local, 0.7, split_rng);

  auto general = dataflow_edge_inference(*model_, local_test,
                                         hwsim::raspberry_pi_4(),
                                         hwsim::openei_package(), hwsim::wifi());

  nn::TrainOptions retrain;
  retrain.epochs = 15;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;
  auto personalized = dataflow_edge_personalized(
      *model_, local_train, local_test, hwsim::raspberry_pi_4(),
      hwsim::openei_package(), hwsim::wifi(), retrain);

  EXPECT_GT(personalized.accuracy, general.accuracy + 0.1);
  // Personalization pays a one-time setup cost (the retraining).
  EXPECT_GT(personalized.setup_latency_s, general.setup_latency_s);
}

TEST_F(CollabFixture, FederatedAverageOfIdenticalModelsIsIdentity) {
  std::vector<nn::Model> copies;
  copies.push_back(model_->clone());
  copies.push_back(model_->clone());
  nn::Model average = federated_average(copies);
  nn::Tensor probe = test_->features;
  nn::Model original = model_->clone();
  EXPECT_TRUE(average.forward(probe, false)
                  .all_close(original.forward(probe, false), 1e-5F));
}

TEST_F(CollabFixture, FederatedAverageRejectsMismatchedArchitectures) {
  Rng rng(55);
  std::vector<nn::Model> mismatched;
  mismatched.push_back(model_->clone());
  mismatched.push_back(nn::zoo::make_mlp("other", 10, 3, {8}, rng));
  EXPECT_THROW(federated_average(mismatched), openei::InvalidArgument);
  EXPECT_THROW(federated_average(std::vector<nn::Model>{}),
               openei::InvalidArgument);
}

TEST_F(CollabFixture, FederatedRoundImprovesGlobalModelOnUnseenShards) {
  // Start from an untrained global model; two edges hold disjoint shards.
  Rng rng(56);
  nn::Model fresh = nn::zoo::make_mlp("global", 10, 3, {24}, rng);
  double before = nn::evaluate_accuracy(fresh, *test_);

  auto shard_split = data::train_test_split(*train_, 0.5, rng);
  std::vector<data::Dataset> shards{std::move(shard_split.first),
                                    std::move(shard_split.second)};
  std::vector<hwsim::DeviceProfile> edges{hwsim::raspberry_pi_4(),
                                          hwsim::jetson_tx2()};
  nn::TrainOptions retrain;
  retrain.epochs = 10;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;

  FederatedRoundResult round =
      federated_round(fresh, shards, edges, hwsim::openei_package(),
                      hwsim::wifi(), retrain);
  double after = nn::evaluate_accuracy(round.global_model, *test_);
  EXPECT_GT(after, before + 0.2);
  EXPECT_EQ(round.bytes_transferred, 2 * fresh.storage_bytes() * 2);
  EXPECT_GT(round.round_latency_s, 0.0);
}

TEST_F(CollabFixture, DataflowInvariantsHoldAcrossAllLinks) {
  // Structural properties that must hold for every link quality:
  // edge inference always moves fewer bytes per inference than cloud
  // offload, and its per-inference latency never depends on the link.
  double previous_edge_latency = -1.0;
  for (const auto& link : hwsim::default_links()) {
    auto cloud = dataflow_cloud_inference(*model_, *test_, hwsim::cloud_gpu(),
                                          hwsim::full_framework(), link);
    auto edge = dataflow_edge_inference(*model_, *test_, hwsim::raspberry_pi_4(),
                                        hwsim::openei_package(), link);
    EXPECT_LT(edge.bytes_per_inference, cloud.bytes_per_inference) << link.name;
    EXPECT_GT(cloud.latency_per_inference_s, link.rtt_s) << link.name;
    if (previous_edge_latency >= 0.0) {
      EXPECT_DOUBLE_EQ(edge.latency_per_inference_s, previous_edge_latency)
          << "edge compute latency must not depend on the link";
    }
    previous_edge_latency = edge.latency_per_inference_s;
    // Setup (model download) shrinks as the link improves — weak check:
    EXPECT_GT(edge.setup_latency_s, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Edge-edge.
// ---------------------------------------------------------------------------

TEST(PartitionTest, ProportionalSharesSumToTotal) {
  auto shares = partition_by_power(100, {1.0, 3.0});
  ASSERT_EQ(shares.size(), 2U);
  EXPECT_EQ(shares[0] + shares[1], 100U);
  EXPECT_EQ(shares[0], 25U);
  EXPECT_EQ(shares[1], 75U);
}

TEST(PartitionTest, RemainderGoesToMostPowerful) {
  auto shares = partition_by_power(10, {1.0, 1.0, 1.0});
  EXPECT_EQ(shares[0] + shares[1] + shares[2], 10U);
  // 3/3/3 floor + 1 remainder to the first-most-powerful (stable order).
  EXPECT_EQ(*std::max_element(shares.begin(), shares.end()), 4U);
}

TEST(PartitionTest, Validation) {
  EXPECT_THROW(partition_by_power(10, {}), openei::InvalidArgument);
  EXPECT_THROW(partition_by_power(10, {1.0, 0.0}), openei::InvalidArgument);
}

TEST(CollaborativeBatchTest, CollaborationBeatsBestSingleEdge) {
  Rng rng(57);
  nn::Model model = nn::zoo::make_mlp("job", 32, 4, {128, 64}, rng);
  std::vector<hwsim::DeviceProfile> edges{
      hwsim::raspberry_pi_3(), hwsim::raspberry_pi_4(), hwsim::jetson_tx2()};
  auto result =
      collaborative_batch(model, hwsim::openei_package(), edges, 1000);
  EXPECT_GT(result.speedup(), 1.0);
  std::size_t total = 0;
  for (std::size_t share : result.allocation) total += share;
  EXPECT_EQ(total, 1000U);
  // The Jetson (most powerful) takes the largest share.
  EXPECT_EQ(*std::max_element(result.allocation.begin(), result.allocation.end()),
            result.allocation[2]);
}

TEST(SplitInferenceTest, SplitForwardMatchesLocalForward) {
  Rng rng(58);
  nn::zoo::ImageSpec spec;
  spec.channels = 2;
  spec.size = 8;
  spec.classes = 3;
  nn::Model model = nn::zoo::make_mini_mobilenet(spec, rng);
  nn::Model front = model.clone();
  nn::Model back = model.clone();
  nn::Tensor batch = nn::Tensor::random_uniform(tensor::Shape{2, 2, 8, 8}, rng);
  nn::Model local = model.clone();
  nn::Tensor expected = local.forward(batch, false);
  for (std::size_t k = 0; k <= model.layer_count(); k += 3) {
    EXPECT_TRUE(split_forward(front, back, k, batch).all_close(expected, 1e-4F))
        << "split at " << k;
  }
}

TEST(SplitInferenceTest, BestSplitIsOptimalOverAllLayers) {
  Rng rng(59);
  nn::zoo::ImageSpec spec;
  nn::Model model = nn::zoo::make_mini_vgg(spec, rng);
  auto front = hwsim::raspberry_pi_3();
  auto back = hwsim::edge_server();
  auto link = hwsim::wifi();
  SplitPoint best = best_split(model, hwsim::openei_package(), front, back, link);
  for (std::size_t k = 0; k <= model.layer_count(); ++k) {
    SplitPoint candidate =
        evaluate_split(model, k, hwsim::openei_package(), front, back, link);
    EXPECT_GE(candidate.latency_s + 1e-12, best.latency_s) << "k=" << k;
  }
}

TEST(SplitInferenceTest, WeakFrontStrongBackPrefersEarlySplit) {
  // With a very weak front device and a fast link, the optimum ships work
  // to the strong back early (small k).
  Rng rng(60);
  nn::zoo::ImageSpec spec;
  nn::Model model = nn::zoo::make_mini_vgg(spec, rng);
  SplitPoint split = best_split(model, hwsim::openei_package(),
                                hwsim::raspberry_pi_3(), hwsim::cloud_gpu(),
                                hwsim::ethernet_lan());
  EXPECT_LT(split.layer, model.layer_count() / 2);
}

TEST(SplitInferenceTest, SplitBeyondDepthThrows) {
  Rng rng(61);
  nn::Model model = nn::zoo::make_mlp("m", 4, 2, {4}, rng);
  EXPECT_THROW(evaluate_split(model, model.layer_count() + 1,
                              hwsim::openei_package(), hwsim::raspberry_pi_3(),
                              hwsim::edge_server(), hwsim::wifi()),
               openei::InvalidArgument);
}

}  // namespace
}  // namespace openei::collab
