# Empty dependencies file for bench_fig4_package_manager.
# This may be replaced when dependencies are built.
