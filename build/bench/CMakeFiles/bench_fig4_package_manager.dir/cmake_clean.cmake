file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_package_manager.dir/bench_fig4_package_manager.cpp.o"
  "CMakeFiles/bench_fig4_package_manager.dir/bench_fig4_package_manager.cpp.o.d"
  "bench_fig4_package_manager"
  "bench_fig4_package_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_package_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
