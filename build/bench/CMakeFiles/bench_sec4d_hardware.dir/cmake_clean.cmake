file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4d_hardware.dir/bench_sec4d_hardware.cpp.o"
  "CMakeFiles/bench_sec4d_hardware.dir/bench_sec4d_hardware.cpp.o.d"
  "bench_sec4d_hardware"
  "bench_sec4d_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4d_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
