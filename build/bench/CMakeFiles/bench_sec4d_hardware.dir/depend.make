# Empty dependencies file for bench_sec4d_hardware.
# This may be replaced when dependencies are built.
