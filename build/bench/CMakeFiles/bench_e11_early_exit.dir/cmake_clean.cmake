file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_early_exit.dir/bench_e11_early_exit.cpp.o"
  "CMakeFiles/bench_e11_early_exit.dir/bench_e11_early_exit.cpp.o.d"
  "bench_e11_early_exit"
  "bench_e11_early_exit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_early_exit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
