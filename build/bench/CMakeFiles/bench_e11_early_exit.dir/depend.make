# Empty dependencies file for bench_e11_early_exit.
# This may be replaced when dependencies are built.
