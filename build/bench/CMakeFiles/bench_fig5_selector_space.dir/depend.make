# Empty dependencies file for bench_fig5_selector_space.
# This may be replaced when dependencies are built.
