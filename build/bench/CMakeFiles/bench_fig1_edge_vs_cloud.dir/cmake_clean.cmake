file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_edge_vs_cloud.dir/bench_fig1_edge_vs_cloud.cpp.o"
  "CMakeFiles/bench_fig1_edge_vs_cloud.dir/bench_fig1_edge_vs_cloud.cpp.o.d"
  "bench_fig1_edge_vs_cloud"
  "bench_fig1_edge_vs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_edge_vs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
