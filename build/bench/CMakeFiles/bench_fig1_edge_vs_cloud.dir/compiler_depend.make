# Empty compiler generated dependencies file for bench_fig1_edge_vs_cloud.
# This may be replaced when dependencies are built.
