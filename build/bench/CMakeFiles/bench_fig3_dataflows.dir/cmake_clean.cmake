file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dataflows.dir/bench_fig3_dataflows.cpp.o"
  "CMakeFiles/bench_fig3_dataflows.dir/bench_fig3_dataflows.cpp.o.d"
  "bench_fig3_dataflows"
  "bench_fig3_dataflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dataflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
