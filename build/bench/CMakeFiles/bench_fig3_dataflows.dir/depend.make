# Empty dependencies file for bench_fig3_dataflows.
# This may be replaced when dependencies are built.
