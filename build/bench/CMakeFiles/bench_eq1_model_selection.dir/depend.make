# Empty dependencies file for bench_eq1_model_selection.
# This may be replaced when dependencies are built.
