file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_ei_algorithms.dir/bench_sec4_ei_algorithms.cpp.o"
  "CMakeFiles/bench_sec4_ei_algorithms.dir/bench_sec4_ei_algorithms.cpp.o.d"
  "bench_sec4_ei_algorithms"
  "bench_sec4_ei_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_ei_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
