# Empty dependencies file for bench_sec4_ei_algorithms.
# This may be replaced when dependencies are built.
