file(REMOVE_RECURSE
  "CMakeFiles/bench_openei_ablation.dir/bench_openei_ablation.cpp.o"
  "CMakeFiles/bench_openei_ablation.dir/bench_openei_ablation.cpp.o.d"
  "bench_openei_ablation"
  "bench_openei_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_openei_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
