# Empty compiler generated dependencies file for bench_fig6_rest_api.
# This may be replaced when dependencies are built.
