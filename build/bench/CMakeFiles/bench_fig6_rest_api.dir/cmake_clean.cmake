file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rest_api.dir/bench_fig6_rest_api.cpp.o"
  "CMakeFiles/bench_fig6_rest_api.dir/bench_fig6_rest_api.cpp.o.d"
  "bench_fig6_rest_api"
  "bench_fig6_rest_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rest_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
