# Empty dependencies file for bench_fig2_collaboration.
# This may be replaced when dependencies are built.
