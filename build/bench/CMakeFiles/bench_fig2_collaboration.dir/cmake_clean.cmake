file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_collaboration.dir/bench_fig2_collaboration.cpp.o"
  "CMakeFiles/bench_fig2_collaboration.dir/bench_fig2_collaboration.cpp.o.d"
  "bench_fig2_collaboration"
  "bench_fig2_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
