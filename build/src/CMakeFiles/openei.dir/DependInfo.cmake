
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collab/cloud_edge.cpp" "src/CMakeFiles/openei.dir/collab/cloud_edge.cpp.o" "gcc" "src/CMakeFiles/openei.dir/collab/cloud_edge.cpp.o.d"
  "/root/repo/src/collab/cloud_trainer.cpp" "src/CMakeFiles/openei.dir/collab/cloud_trainer.cpp.o" "gcc" "src/CMakeFiles/openei.dir/collab/cloud_trainer.cpp.o.d"
  "/root/repo/src/collab/early_exit.cpp" "src/CMakeFiles/openei.dir/collab/early_exit.cpp.o" "gcc" "src/CMakeFiles/openei.dir/collab/early_exit.cpp.o.d"
  "/root/repo/src/collab/edge_edge.cpp" "src/CMakeFiles/openei.dir/collab/edge_edge.cpp.o" "gcc" "src/CMakeFiles/openei.dir/collab/edge_edge.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/openei.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/openei.dir/common/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/openei.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/openei.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/openei.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/openei.dir/common/strings.cpp.o.d"
  "/root/repo/src/compress/compressed_model.cpp" "src/CMakeFiles/openei.dir/compress/compressed_model.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/compressed_model.cpp.o.d"
  "/root/repo/src/compress/distill.cpp" "src/CMakeFiles/openei.dir/compress/distill.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/distill.cpp.o.d"
  "/root/repo/src/compress/lowrank.cpp" "src/CMakeFiles/openei.dir/compress/lowrank.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/lowrank.cpp.o.d"
  "/root/repo/src/compress/pruning.cpp" "src/CMakeFiles/openei.dir/compress/pruning.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/pruning.cpp.o.d"
  "/root/repo/src/compress/quantize_model.cpp" "src/CMakeFiles/openei.dir/compress/quantize_model.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/quantize_model.cpp.o.d"
  "/root/repo/src/compress/weight_sharing.cpp" "src/CMakeFiles/openei.dir/compress/weight_sharing.cpp.o" "gcc" "src/CMakeFiles/openei.dir/compress/weight_sharing.cpp.o.d"
  "/root/repo/src/core/edge_node.cpp" "src/CMakeFiles/openei.dir/core/edge_node.cpp.o" "gcc" "src/CMakeFiles/openei.dir/core/edge_node.cpp.o.d"
  "/root/repo/src/core/failover.cpp" "src/CMakeFiles/openei.dir/core/failover.cpp.o" "gcc" "src/CMakeFiles/openei.dir/core/failover.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/openei.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/openei.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/metrics.cpp" "src/CMakeFiles/openei.dir/data/metrics.cpp.o" "gcc" "src/CMakeFiles/openei.dir/data/metrics.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/openei.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/openei.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/datastore/timeseries.cpp" "src/CMakeFiles/openei.dir/datastore/timeseries.cpp.o" "gcc" "src/CMakeFiles/openei.dir/datastore/timeseries.cpp.o.d"
  "/root/repo/src/eialg/bonsai.cpp" "src/CMakeFiles/openei.dir/eialg/bonsai.cpp.o" "gcc" "src/CMakeFiles/openei.dir/eialg/bonsai.cpp.o.d"
  "/root/repo/src/eialg/classifier.cpp" "src/CMakeFiles/openei.dir/eialg/classifier.cpp.o" "gcc" "src/CMakeFiles/openei.dir/eialg/classifier.cpp.o.d"
  "/root/repo/src/eialg/fastgrnn.cpp" "src/CMakeFiles/openei.dir/eialg/fastgrnn.cpp.o" "gcc" "src/CMakeFiles/openei.dir/eialg/fastgrnn.cpp.o.d"
  "/root/repo/src/eialg/protonn.cpp" "src/CMakeFiles/openei.dir/eialg/protonn.cpp.o" "gcc" "src/CMakeFiles/openei.dir/eialg/protonn.cpp.o.d"
  "/root/repo/src/hwsim/cost_model.cpp" "src/CMakeFiles/openei.dir/hwsim/cost_model.cpp.o" "gcc" "src/CMakeFiles/openei.dir/hwsim/cost_model.cpp.o.d"
  "/root/repo/src/hwsim/device.cpp" "src/CMakeFiles/openei.dir/hwsim/device.cpp.o" "gcc" "src/CMakeFiles/openei.dir/hwsim/device.cpp.o.d"
  "/root/repo/src/hwsim/network.cpp" "src/CMakeFiles/openei.dir/hwsim/network.cpp.o" "gcc" "src/CMakeFiles/openei.dir/hwsim/network.cpp.o.d"
  "/root/repo/src/hwsim/package.cpp" "src/CMakeFiles/openei.dir/hwsim/package.cpp.o" "gcc" "src/CMakeFiles/openei.dir/hwsim/package.cpp.o.d"
  "/root/repo/src/libei/service.cpp" "src/CMakeFiles/openei.dir/libei/service.cpp.o" "gcc" "src/CMakeFiles/openei.dir/libei/service.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/CMakeFiles/openei.dir/net/http.cpp.o" "gcc" "src/CMakeFiles/openei.dir/net/http.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/CMakeFiles/openei.dir/net/socket.cpp.o" "gcc" "src/CMakeFiles/openei.dir/net/socket.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/openei.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/openei.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/openei.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/openei.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/factored_conv.cpp" "src/CMakeFiles/openei.dir/nn/factored_conv.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/factored_conv.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/openei.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/openei.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/openei.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/CMakeFiles/openei.dir/nn/residual.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/residual.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/openei.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/CMakeFiles/openei.dir/nn/train.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/train.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/CMakeFiles/openei.dir/nn/zoo.cpp.o" "gcc" "src/CMakeFiles/openei.dir/nn/zoo.cpp.o.d"
  "/root/repo/src/runtime/inference.cpp" "src/CMakeFiles/openei.dir/runtime/inference.cpp.o" "gcc" "src/CMakeFiles/openei.dir/runtime/inference.cpp.o.d"
  "/root/repo/src/runtime/migration.cpp" "src/CMakeFiles/openei.dir/runtime/migration.cpp.o" "gcc" "src/CMakeFiles/openei.dir/runtime/migration.cpp.o.d"
  "/root/repo/src/runtime/model_registry.cpp" "src/CMakeFiles/openei.dir/runtime/model_registry.cpp.o" "gcc" "src/CMakeFiles/openei.dir/runtime/model_registry.cpp.o.d"
  "/root/repo/src/runtime/pipeline.cpp" "src/CMakeFiles/openei.dir/runtime/pipeline.cpp.o" "gcc" "src/CMakeFiles/openei.dir/runtime/pipeline.cpp.o.d"
  "/root/repo/src/runtime/realtime.cpp" "src/CMakeFiles/openei.dir/runtime/realtime.cpp.o" "gcc" "src/CMakeFiles/openei.dir/runtime/realtime.cpp.o.d"
  "/root/repo/src/selector/alem.cpp" "src/CMakeFiles/openei.dir/selector/alem.cpp.o" "gcc" "src/CMakeFiles/openei.dir/selector/alem.cpp.o.d"
  "/root/repo/src/selector/capability_db.cpp" "src/CMakeFiles/openei.dir/selector/capability_db.cpp.o" "gcc" "src/CMakeFiles/openei.dir/selector/capability_db.cpp.o.d"
  "/root/repo/src/selector/rl_selector.cpp" "src/CMakeFiles/openei.dir/selector/rl_selector.cpp.o" "gcc" "src/CMakeFiles/openei.dir/selector/rl_selector.cpp.o.d"
  "/root/repo/src/selector/selecting_algorithm.cpp" "src/CMakeFiles/openei.dir/selector/selecting_algorithm.cpp.o" "gcc" "src/CMakeFiles/openei.dir/selector/selecting_algorithm.cpp.o.d"
  "/root/repo/src/tensor/linalg.cpp" "src/CMakeFiles/openei.dir/tensor/linalg.cpp.o" "gcc" "src/CMakeFiles/openei.dir/tensor/linalg.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/openei.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/openei.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/quantize.cpp" "src/CMakeFiles/openei.dir/tensor/quantize.cpp.o" "gcc" "src/CMakeFiles/openei.dir/tensor/quantize.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/openei.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/openei.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
