file(REMOVE_RECURSE
  "libopenei.a"
)
