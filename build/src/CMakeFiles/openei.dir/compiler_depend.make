# Empty compiler generated dependencies file for openei.
# This may be replaced when dependencies are built.
