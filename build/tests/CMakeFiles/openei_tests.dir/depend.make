# Empty dependencies file for openei_tests.
# This may be replaced when dependencies are built.
