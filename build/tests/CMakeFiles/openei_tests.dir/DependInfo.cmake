
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerators.cpp" "tests/CMakeFiles/openei_tests.dir/test_accelerators.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_accelerators.cpp.o.d"
  "/root/repo/tests/test_cloud_trainer.cpp" "tests/CMakeFiles/openei_tests.dir/test_cloud_trainer.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_cloud_trainer.cpp.o.d"
  "/root/repo/tests/test_collab.cpp" "tests/CMakeFiles/openei_tests.dir/test_collab.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_collab.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/openei_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compress.cpp" "tests/CMakeFiles/openei_tests.dir/test_compress.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_compress.cpp.o.d"
  "/root/repo/tests/test_compress_sweeps.cpp" "tests/CMakeFiles/openei_tests.dir/test_compress_sweeps.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_compress_sweeps.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/openei_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_datastore.cpp" "tests/CMakeFiles/openei_tests.dir/test_datastore.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_datastore.cpp.o.d"
  "/root/repo/tests/test_eialg.cpp" "tests/CMakeFiles/openei_tests.dir/test_eialg.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_eialg.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/openei_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failover.cpp" "tests/CMakeFiles/openei_tests.dir/test_failover.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_failover.cpp.o.d"
  "/root/repo/tests/test_hwsim.cpp" "tests/CMakeFiles/openei_tests.dir/test_hwsim.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_hwsim.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/openei_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_libei.cpp" "tests/CMakeFiles/openei_tests.dir/test_libei.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_libei.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/openei_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_lowrank_conv.cpp" "tests/CMakeFiles/openei_tests.dir/test_lowrank_conv.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_lowrank_conv.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/openei_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/openei_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/openei_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/openei_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/openei_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/openei_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_selector.cpp" "tests/CMakeFiles/openei_tests.dir/test_selector.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_selector.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/openei_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/openei_tests.dir/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/openei.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
