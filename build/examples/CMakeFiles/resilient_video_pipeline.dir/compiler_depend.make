# Empty compiler generated dependencies file for resilient_video_pipeline.
# This may be replaced when dependencies are built.
