file(REMOVE_RECURSE
  "CMakeFiles/resilient_video_pipeline.dir/resilient_video_pipeline.cpp.o"
  "CMakeFiles/resilient_video_pipeline.dir/resilient_video_pipeline.cpp.o.d"
  "resilient_video_pipeline"
  "resilient_video_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
