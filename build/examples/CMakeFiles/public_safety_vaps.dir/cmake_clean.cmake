file(REMOVE_RECURSE
  "CMakeFiles/public_safety_vaps.dir/public_safety_vaps.cpp.o"
  "CMakeFiles/public_safety_vaps.dir/public_safety_vaps.cpp.o.d"
  "public_safety_vaps"
  "public_safety_vaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_safety_vaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
