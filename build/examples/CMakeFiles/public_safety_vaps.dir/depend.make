# Empty dependencies file for public_safety_vaps.
# This may be replaced when dependencies are built.
