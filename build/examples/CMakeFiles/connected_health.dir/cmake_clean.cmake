file(REMOVE_RECURSE
  "CMakeFiles/connected_health.dir/connected_health.cpp.o"
  "CMakeFiles/connected_health.dir/connected_health.cpp.o.d"
  "connected_health"
  "connected_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
