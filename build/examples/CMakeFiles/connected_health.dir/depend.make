# Empty dependencies file for connected_health.
# This may be replaced when dependencies are built.
