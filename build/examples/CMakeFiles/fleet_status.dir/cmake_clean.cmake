file(REMOVE_RECURSE
  "CMakeFiles/fleet_status.dir/fleet_status.cpp.o"
  "CMakeFiles/fleet_status.dir/fleet_status.cpp.o.d"
  "fleet_status"
  "fleet_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
