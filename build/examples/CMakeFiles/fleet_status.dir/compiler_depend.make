# Empty compiler generated dependencies file for fleet_status.
# This may be replaced when dependencies are built.
